//! Facade crate for the reproduction of Michail's *Terminating Distributed Construction
//! of Shapes and Patterns in a Fair Solution of Automata* (2015).
//!
//! The implementation is split across focused crates, re-exported here:
//!
//! * [`geometry`] — grid geometry, shapes, labeled squares and shape languages.
//! * [`core`] — the geometric network-constructor model and its simulator.
//! * [`popproto`] — the population-protocol substrate and the terminating probabilistic
//!   counting protocols of Section 5.
//! * [`tm`] — the Turing-machine substrate and the library of shape-computing machines.
//! * [`protocols`] — every constructor of the paper (lines, squares, self-replicating
//!   lines, counting on a line, universal constructors, self-replication).
//!
//! # Quickstart
//!
//! Construct a spanning line with the Global Line protocol under a uniform random
//! scheduler and inspect the resulting shape:
//!
//! ```
//! use shape_constructors::core::{Simulation, SimulationConfig};
//! use shape_constructors::protocols::line::GlobalLine;
//!
//! let mut sim = Simulation::new(GlobalLine::new(), SimulationConfig::new(8).with_seed(7));
//! let report = sim.run_until_stable();
//! assert!(report.stabilized);
//! assert!(sim.output_shape().is_line(8));
//! ```

#![forbid(unsafe_code)]

pub use nc_core as core;
pub use nc_geometry as geometry;
pub use nc_popproto as popproto;
pub use nc_protocols as protocols;
pub use nc_tm as tm;
