//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements just the API the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`], [`criterion_group!`] and
//! [`criterion_main!`] — with a straightforward warm-up + timed-samples loop and
//! plain-text reporting (median / mean / min over the measured samples). It produces no
//! HTML reports and does no statistical outlier analysis; it exists so that
//! `cargo bench` runs at all in an environment without registry access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group: a function name and/or a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An identifier made of a function name and a parameter, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An identifier made of a parameter only.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> BenchmarkId {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> BenchmarkId {
        BenchmarkId { label }
    }
}

/// Drives the timing loop of a single benchmark.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, running it repeatedly for the configured warm-up and measurement
    /// windows. The routine's return value is passed through [`black_box`] so the
    /// optimizer cannot discard the computation.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_up_end = Instant::now() + self.warm_up;
        let mut iterations: u64 = 0;
        while Instant::now() < warm_up_end {
            black_box(routine());
            iterations += 1;
        }
        // Aim each sample at measurement/sample_size wall time, at least one iteration.
        let warm_up_secs = self.warm_up.as_secs_f64().max(1e-9);
        let per_iter = warm_up_secs / iterations.max(1) as f64;
        let sample_target = self.measurement.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = (sample_target / per_iter.max(1e-12)).ceil().max(1.0) as u64;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples
                .push(elapsed / u32::try_from(iters_per_sample).unwrap_or(u32::MAX));
        }
    }
}

fn render(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let mean = sorted.iter().sum::<Duration>() / u32::try_from(sorted.len()).unwrap_or(1);
    println!(
        "{label:<40} median {:>12?}   mean {:>12?}   min {:>12?}   ({} samples)",
        median,
        mean,
        min,
        sorted.len()
    );
}

/// A named group of related benchmarks sharing timing configuration.
pub struct BenchmarkGroup {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the warm-up duration for subsequent benchmarks in this group.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up = duration;
        self
    }

    /// Sets the measurement window for subsequent benchmarks in this group.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement = duration;
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs a benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        routine(&mut bencher, input);
        render(&format!("{}/{}", self.name, id.label), &bencher.samples);
        self
    }

    /// Runs a benchmark without an input parameter.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        routine(&mut bencher);
        render(&format!("{}/{}", self.name, id.label), &bencher.samples);
        self
    }

    /// Finishes the group (prints a trailing newline for readability).
    pub fn finish(self) {
        println!();
    }
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group with default timing configuration (0.5 s warm-up,
    /// 2 s measurement, 10 samples).
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("== bench group: {name} ==");
        BenchmarkGroup {
            name,
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            sample_size: 10,
        }
    }
}

/// Declares a benchmark group function list, mirroring criterion's macro of the same
/// name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` function, mirroring criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 16).label, "f/16");
        assert_eq!(BenchmarkId::from_parameter(32).label, "32");
    }

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.warm_up_time(Duration::from_millis(5));
        group.measurement_time(Duration::from_millis(20));
        group.sample_size(3);
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
