//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to a crates.io registry, so this crate vendors
//! the *minimal* subset of the `rayon 1.x` API that the workspace actually uses:
//! [`join`], [`scope`] (with [`Scope::spawn`]) and [`current_num_threads`]. The
//! signatures match the real crate, so swapping back to crates.io `rayon` is a one-line
//! change in the workspace `[workspace.dependencies]` table.
//!
//! Unlike the real crate there is no persistent work-stealing pool: every `join`/`scope`
//! call spawns OS threads through [`std::thread::scope`] and joins them before
//! returning. That keeps the implementation tiny and `forbid(unsafe_code)`-clean, at the
//! cost of a per-call spawn overhead of tens of microseconds — callers are expected to
//! gate parallel sections on a work-size threshold (the sharded world runtime in
//! `nc-core` does exactly that), which is good practice under the real crate too.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Number of threads the pool would use — with scoped ad-hoc threads this is the
/// machine's available parallelism (what the real crate defaults to).
#[must_use]
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs the two closures, potentially in parallel, and returns both results.
///
/// Same contract as `rayon::join`: `oper_a` runs on the calling thread while `oper_b`
/// is offered to a second thread; both have completed when the call returns, and a
/// panic in either is propagated.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let handle_b = s.spawn(oper_b);
        let ra = oper_a();
        let rb = match handle_b.join() {
            Ok(rb) => rb,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

/// A scope in which borrowing tasks can be spawned; all of them are guaranteed to have
/// completed before [`scope`] returns (the same structured-concurrency contract as
/// `rayon::scope`).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task into the scope. The closure receives the scope again so tasks can
    /// spawn sub-tasks, exactly like `rayon::Scope::spawn`.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || body(&Scope { inner }));
    }
}

/// Creates a scope for spawning borrowing tasks and blocks until every spawned task has
/// completed. Panics from tasks are propagated on join (std scoped-thread semantics).
pub fn scope<'env, F, R>(body: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R + Send,
    R: Send,
{
    std::thread::scope(|s| body(&Scope { inner: s }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn join_nests() {
        let ((a, b), c) = join(|| join(|| 1, || 2), || 3);
        assert_eq!((a, b, c), (1, 2, 3));
    }

    #[test]
    fn scope_runs_every_spawned_task_before_returning() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn scoped_tasks_can_borrow_and_write_disjoint_slices() {
        let mut data = vec![0u64; 64];
        let chunks: Vec<&mut [u64]> = data.chunks_mut(16).collect();
        scope(|s| {
            for (i, chunk) in chunks.into_iter().enumerate() {
                s.spawn(move |_| {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = (i * 16 + j) as u64;
                    }
                });
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64));
    }

    #[test]
    fn tasks_spawn_subtasks() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s| {
                counter.fetch_add(1, Ordering::Relaxed);
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn at_least_one_thread_is_reported() {
        assert!(current_num_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn join_propagates_panics() {
        join(|| 1, || panic!("boom"));
    }
}
