//! Offline stand-in for the `tiny_http` crate: a minimal HTTP/1.1 server.
//!
//! The build environment has no access to a crates.io registry, so this crate vendors
//! the small subset of an HTTP server that the `nc-service` tier needs — the same
//! pattern as `vendor/rand` and `vendor/rayon`. The shape of the API follows
//! `tiny_http` (a [`Server`] accepting connections, a [`Request`] with method, URL,
//! headers and body, answered by a [`Response`]), so swapping to the real crate later
//! is a thin-adapter change, with two documented simplifications: [`Server::recv`]
//! returns `Ok(None)` after [`ServerStopper::stop`] instead of blocking forever, and
//! every connection serves exactly one request (`Connection: close`).
//!
//! # Robustness contract
//!
//! The parser is **bounded and panic-free**: every malformed, truncated, oversized or
//! bit-flipped request is rejected with a typed [`HttpError`] that maps onto a 4xx/5xx
//! status code ([`HttpError::status`]), and the server answers it with that status
//! itself — the application layer only ever sees well-formed requests. All limits are
//! explicit in [`Limits`]: request-line length, header count and size, and body size
//! (checked against `Content-Length` *before* the body buffer is allocated, so a
//! crafted length cannot trigger an allocation bomb — the same discipline as the
//! snapshot decoder in `nc-core`). The fuzz suite in `crates/service` drives both the
//! pure parser ([`parse_request_bytes`]) and the socket path with truncations, bit
//! flips and oversize payloads and requires typed rejections, never panics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Hard bounds on what the parser accepts. Every field has a conservative default;
/// oversteps are typed errors, never panics or unbounded allocations.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Longest accepted request line (method + URL + version), in bytes.
    pub max_request_line: usize,
    /// Longest accepted single header line, in bytes.
    pub max_header_line: usize,
    /// Most headers accepted per request.
    pub max_headers: usize,
    /// Largest accepted request body, in bytes (checked against `Content-Length`
    /// before allocating).
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_request_line: 8 * 1024,
            max_header_line: 8 * 1024,
            max_headers: 64,
            max_body: 1024 * 1024,
        }
    }
}

/// Typed rejection of a malformed or over-limit request. Every variant maps to an
/// HTTP status code through [`HttpError::status`]; none of them is ever a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum HttpError {
    /// The stream ended before a complete request head (line + headers) arrived.
    TruncatedHead,
    /// The body was shorter than the declared `Content-Length`.
    TruncatedBody {
        /// Bytes the request declared.
        declared: usize,
        /// Bytes that actually arrived.
        received: usize,
    },
    /// The request line is not `METHOD SP URL SP VERSION` or is not valid UTF-8.
    MalformedRequestLine,
    /// The request line exceeded [`Limits::max_request_line`].
    RequestLineTooLong,
    /// The method is not one this server implements.
    UnsupportedMethod,
    /// The version is neither `HTTP/1.0` nor `HTTP/1.1`.
    UnsupportedVersion,
    /// A header line has no colon or is not valid UTF-8.
    MalformedHeader,
    /// A header line exceeded [`Limits::max_header_line`].
    HeaderLineTooLong,
    /// More headers than [`Limits::max_headers`].
    TooManyHeaders,
    /// `Content-Length` is present but not a decimal number.
    InvalidContentLength,
    /// The declared body length exceeds [`Limits::max_body`].
    BodyTooLarge {
        /// The declared length.
        declared: usize,
        /// The configured cap.
        limit: usize,
    },
}

impl HttpError {
    /// The HTTP status code this rejection is answered with.
    #[must_use]
    pub fn status(&self) -> u16 {
        match self {
            HttpError::TruncatedHead
            | HttpError::TruncatedBody { .. }
            | HttpError::MalformedRequestLine
            | HttpError::MalformedHeader
            | HttpError::InvalidContentLength => 400,
            HttpError::RequestLineTooLong => 414,
            HttpError::UnsupportedMethod => 501,
            HttpError::UnsupportedVersion => 505,
            HttpError::HeaderLineTooLong | HttpError::TooManyHeaders => 431,
            HttpError::BodyTooLarge { .. } => 413,
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::TruncatedHead => write!(f, "request head truncated"),
            HttpError::TruncatedBody { declared, received } => write!(
                f,
                "request body truncated: declared {declared} bytes, received {received}"
            ),
            HttpError::MalformedRequestLine => write!(f, "malformed request line"),
            HttpError::RequestLineTooLong => write!(f, "request line too long"),
            HttpError::UnsupportedMethod => write!(f, "unsupported method"),
            HttpError::UnsupportedVersion => write!(f, "unsupported HTTP version"),
            HttpError::MalformedHeader => write!(f, "malformed header line"),
            HttpError::InvalidContentLength => write!(f, "invalid Content-Length"),
            HttpError::HeaderLineTooLong => write!(f, "header line too long"),
            HttpError::TooManyHeaders => write!(f, "too many headers"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(
                    f,
                    "request body of {declared} bytes exceeds the {limit}-byte cap"
                )
            }
        }
    }
}

impl std::error::Error for HttpError {}

/// The standard reason phrase for a status code (a short fixed table; unknown codes
/// get an empty phrase, which is valid HTTP).
#[must_use]
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "",
    }
}

/// Request methods this server implements.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// `GET`
    Get,
    /// `POST`
    Post,
    /// `PUT`
    Put,
    /// `DELETE`
    Delete,
    /// `HEAD`
    Head,
}

impl Method {
    fn parse(token: &str) -> Result<Method, HttpError> {
        match token {
            "GET" => Ok(Method::Get),
            "POST" => Ok(Method::Post),
            "PUT" => Ok(Method::Put),
            "DELETE" => Ok(Method::Delete),
            "HEAD" => Ok(Method::Head),
            _ => Err(HttpError::UnsupportedMethod),
        }
    }

    /// The canonical token of the method.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
            Method::Head => "HEAD",
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A fully parsed request, detached from any connection — what [`parse_request_bytes`]
/// returns and what the fuzz suite drives directly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsedRequest {
    /// The request method.
    pub method: Method,
    /// The raw URL (path + optional query), exactly as sent.
    pub url: String,
    /// Header `(name, value)` pairs in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl ParsedRequest {
    /// The first value of a header, by case-insensitive name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let wanted = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == wanted)
            .map(|(_, v)| v.as_str())
    }
}

/// Parsed request head: method, URL, lower-cased header pairs.
type RequestHead = (Method, String, Vec<(String, String)>);

/// Splits `head` into lines at CRLF (tolerating bare LF, as most servers do) and
/// parses the request line and headers. `head` excludes the blank line.
fn parse_head(head: &[u8], limits: &Limits) -> Result<RequestHead, HttpError> {
    let mut lines = head.split(|&b| b == b'\n').map(|line| {
        if line.last() == Some(&b'\r') {
            &line[..line.len() - 1]
        } else {
            line
        }
    });
    let request_line = lines.next().ok_or(HttpError::MalformedRequestLine)?;
    if request_line.len() > limits.max_request_line {
        return Err(HttpError::RequestLineTooLong);
    }
    let request_line =
        std::str::from_utf8(request_line).map_err(|_| HttpError::MalformedRequestLine)?;
    let mut parts = request_line.split(' ');
    let (method, url, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(u), Some(v), None) if !m.is_empty() && !u.is_empty() => (m, u, v),
        _ => return Err(HttpError::MalformedRequestLine),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::UnsupportedVersion);
    }
    let method = Method::parse(method)?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue; // trailing empty segment after the final CRLF
        }
        if line.len() > limits.max_header_line {
            return Err(HttpError::HeaderLineTooLong);
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::TooManyHeaders);
        }
        let line = std::str::from_utf8(line).map_err(|_| HttpError::MalformedHeader)?;
        let (name, value) = line.split_once(':').ok_or(HttpError::MalformedHeader)?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::MalformedHeader);
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok((method, url.to_string(), headers))
}

/// The declared body length of a parsed header set: 0 when absent, a typed error
/// when unparsable or over the cap. Checked **before** any body allocation.
fn content_length(headers: &[(String, String)], limits: &Limits) -> Result<usize, HttpError> {
    let Some((_, value)) = headers.iter().find(|(n, _)| n == "content-length") else {
        return Ok(0);
    };
    let declared: usize = value.parse().map_err(|_| HttpError::InvalidContentLength)?;
    if declared > limits.max_body {
        return Err(HttpError::BodyTooLarge {
            declared,
            limit: limits.max_body,
        });
    }
    Ok(declared)
}

/// Parses one complete in-memory request (head, blank line, body). This is the pure
/// entry point the fuzz suite drives: any byte soup in, typed result out, no panics,
/// no allocation proportional to claimed-but-absent payload.
pub fn parse_request_bytes(bytes: &[u8], limits: &Limits) -> Result<ParsedRequest, HttpError> {
    // Find the end of the head without scanning past the caps: the head cannot be
    // longer than the request line plus every header line plus framing.
    let head_cap = limits.max_request_line + limits.max_headers * (limits.max_header_line + 2) + 4;
    let boundary = find_head_end(bytes, head_cap)?;
    let (method, url, headers) = parse_head(&bytes[..boundary.head_len], limits)?;
    let declared = content_length(&headers, limits)?;
    let body_bytes = &bytes[boundary.body_start.min(bytes.len())..];
    if body_bytes.len() < declared {
        return Err(HttpError::TruncatedBody {
            declared,
            received: body_bytes.len(),
        });
    }
    Ok(ParsedRequest {
        method,
        url,
        headers,
        body: body_bytes[..declared].to_vec(),
    })
}

struct HeadBoundary {
    head_len: usize,
    body_start: usize,
}

/// Locates the head/body boundary (`\r\n\r\n`, tolerating `\n\n`), bounded by
/// `head_cap` so an endless header stream cannot buffer unboundedly.
fn find_head_end(bytes: &[u8], head_cap: usize) -> Result<HeadBoundary, HttpError> {
    let scan = &bytes[..bytes.len().min(head_cap)];
    for i in 0..scan.len() {
        if scan[i] == b'\n' {
            if i + 1 < scan.len() && scan[i + 1] == b'\n' {
                return Ok(HeadBoundary {
                    head_len: i + 1,
                    body_start: i + 2,
                });
            }
            if i + 2 < scan.len() && scan[i + 1] == b'\r' && scan[i + 2] == b'\n' {
                return Ok(HeadBoundary {
                    head_len: i + 1,
                    body_start: i + 3,
                });
            }
        }
    }
    if bytes.len() > head_cap {
        // No blank line within the cap: some line is necessarily over its limit.
        return Err(HttpError::HeaderLineTooLong);
    }
    Err(HttpError::TruncatedHead)
}

/// An accepted, fully parsed request, holding its connection for the response.
pub struct Request {
    parsed: ParsedRequest,
    remote_addr: SocketAddr,
    stream: TcpStream,
}

impl Request {
    /// The request method.
    #[must_use]
    pub fn method(&self) -> Method {
        self.parsed.method
    }

    /// The raw URL (path + optional query).
    #[must_use]
    pub fn url(&self) -> &str {
        &self.parsed.url
    }

    /// The request body.
    #[must_use]
    pub fn content(&self) -> &[u8] {
        &self.parsed.body
    }

    /// The first value of a header, by case-insensitive name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.parsed.header(name)
    }

    /// The peer address of the connection.
    #[must_use]
    pub fn remote_addr(&self) -> SocketAddr {
        self.remote_addr
    }

    /// Sends `response` and closes the connection.
    ///
    /// # Errors
    /// Propagates socket write errors (the peer may already have hung up).
    pub fn respond(mut self, response: Response) -> io::Result<()> {
        response.write_to(&mut self.stream)
    }
}

/// A response: status code, content type and body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    status: u16,
    content_type: String,
    body: Vec<u8>,
}

impl Response {
    /// A `200 OK` text response.
    #[must_use]
    pub fn from_string(body: impl Into<String>) -> Response {
        Response {
            status: 200,
            content_type: "text/plain; charset=utf-8".to_string(),
            body: body.into().into_bytes(),
        }
    }

    /// A `200 OK` binary response.
    #[must_use]
    pub fn from_data(body: Vec<u8>) -> Response {
        Response {
            status: 200,
            content_type: "application/octet-stream".to_string(),
            body,
        }
    }

    /// Sets the status code.
    #[must_use]
    pub fn with_status_code(mut self, status: u16) -> Response {
        self.status = status;
        self
    }

    /// Sets the `Content-Type` header.
    #[must_use]
    pub fn with_content_type(mut self, content_type: &str) -> Response {
        self.content_type = content_type.to_string();
        self
    }

    /// The status code.
    #[must_use]
    pub fn status_code(&self) -> u16 {
        self.status
    }

    /// The body bytes.
    #[must_use]
    pub fn data(&self) -> &[u8] {
        &self.body
    }

    fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Length: {}\r\nContent-Type: {}\r\nConnection: close\r\n\r\n",
            self.status,
            reason_phrase(self.status),
            self.body.len(),
            self.content_type,
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Cooperative stop signal for a [`Server`] owned by another thread.
#[derive(Clone)]
pub struct ServerStopper {
    stop: Arc<AtomicBool>,
}

impl ServerStopper {
    /// Makes the server's [`Server::recv`] return `Ok(None)` at its next poll.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

/// A listening HTTP/1.1 server.
pub struct Server {
    listener: TcpListener,
    limits: Limits,
    stop: Arc<AtomicBool>,
    poll_interval: Duration,
    io_timeout: Duration,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port; read it back with
    /// [`Server::server_addr`]).
    ///
    /// # Errors
    /// Propagates bind errors.
    pub fn http(addr: impl ToSocketAddrs) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            limits: Limits::default(),
            stop: Arc::new(AtomicBool::new(false)),
            poll_interval: Duration::from_millis(2),
            io_timeout: Duration::from_secs(5),
        })
    }

    /// Replaces the parser limits.
    #[must_use]
    pub fn with_limits(mut self, limits: Limits) -> Server {
        self.limits = limits;
        self
    }

    /// The bound address.
    ///
    /// # Errors
    /// Propagates `local_addr` errors.
    pub fn server_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop this server from another thread.
    #[must_use]
    pub fn stopper(&self) -> ServerStopper {
        ServerStopper {
            stop: Arc::clone(&self.stop),
        }
    }

    /// Waits for the next **well-formed** request, or `Ok(None)` once
    /// [`ServerStopper::stop`] was called. Malformed traffic is answered with its
    /// [`HttpError::status`] and never surfaces here, so the application layer only
    /// handles parsed requests. Individual connection I/O errors are skipped (the
    /// peer hung up; there is nobody to answer).
    ///
    /// # Errors
    /// Propagates accept errors other than `WouldBlock`.
    pub fn recv(&self) -> io::Result<Option<Request>> {
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return Ok(None);
            }
            match self.listener.accept() {
                Ok((stream, remote_addr)) => {
                    // Ok(None)/Err mean we answered 4xx/5xx or the peer vanished.
                    if let Ok(Some(request)) = self.read_one(stream, remote_addr) {
                        return Ok(Some(request));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(self.poll_interval);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Reads one request from a fresh connection: `Ok(Some)` for a well-formed
    /// request, `Ok(None)` when the request was malformed and answered in place.
    fn read_one(
        &self,
        mut stream: TcpStream,
        remote_addr: SocketAddr,
    ) -> io::Result<Option<Request>> {
        stream.set_nonblocking(false)?;
        stream.set_read_timeout(Some(self.io_timeout))?;
        stream.set_write_timeout(Some(self.io_timeout))?;
        match read_request(&mut stream, &self.limits) {
            Ok(parsed) => Ok(Some(Request {
                parsed,
                remote_addr,
                stream,
            })),
            Err(error) => {
                let response =
                    Response::from_string(format!("{error}\n")).with_status_code(error.status());
                let _ = response.write_to(&mut stream);
                Ok(None)
            }
        }
    }
}

/// Reads one request from a stream: buffers the head up to the cap, then the body up
/// to the declared (and capped) length. The in-memory fuzz path
/// ([`parse_request_bytes`]) and this socket path share the same head/body parsing.
fn read_request(stream: &mut impl Read, limits: &Limits) -> Result<ParsedRequest, HttpError> {
    let head_cap = limits.max_request_line + limits.max_headers * (limits.max_header_line + 2) + 4;
    let mut buffer = Vec::new();
    let mut chunk = [0u8; 1024];
    let boundary = loop {
        match find_head_end(&buffer, head_cap) {
            Ok(boundary) => break boundary,
            Err(HttpError::TruncatedHead) => {
                if buffer.len() > head_cap {
                    return Err(HttpError::HeaderLineTooLong);
                }
                let read = stream
                    .read(&mut chunk)
                    .map_err(|_| HttpError::TruncatedHead)?;
                if read == 0 {
                    return Err(HttpError::TruncatedHead);
                }
                buffer.extend_from_slice(&chunk[..read]);
            }
            Err(other) => return Err(other),
        }
    };
    let (method, url, headers) = parse_head(&buffer[..boundary.head_len], limits)?;
    let declared = content_length(&headers, limits)?;
    let mut body = buffer[boundary.body_start.min(buffer.len())..].to_vec();
    while body.len() < declared {
        let read = stream
            .read(&mut chunk)
            .map_err(|_| HttpError::TruncatedBody {
                declared,
                received: body.len(),
            })?;
        if read == 0 {
            return Err(HttpError::TruncatedBody {
                declared,
                received: body.len(),
            });
        }
        let needed = declared - body.len();
        body.extend_from_slice(&chunk[..read.min(needed)]);
    }
    body.truncate(declared);
    Ok(ParsedRequest {
        method,
        url,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> Limits {
        Limits::default()
    }

    #[test]
    fn parses_a_get_without_body() {
        let parsed = parse_request_bytes(b"GET /jobs/3 HTTP/1.1\r\nHost: x\r\n\r\n", &limits())
            .expect("valid request");
        assert_eq!(parsed.method, Method::Get);
        assert_eq!(parsed.url, "/jobs/3");
        assert_eq!(parsed.header("host"), Some("x"));
        assert_eq!(parsed.header("HOST"), Some("x"));
        assert!(parsed.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_content_length_body() {
        let parsed = parse_request_bytes(
            b"POST /jobs HTTP/1.1\r\nContent-Length: 5\r\n\r\nn=9&x",
            &limits(),
        )
        .expect("valid request");
        assert_eq!(parsed.method, Method::Post);
        assert_eq!(parsed.body, b"n=9&x");
    }

    #[test]
    fn tolerates_bare_lf_framing() {
        let parsed =
            parse_request_bytes(b"GET / HTTP/1.1\nHost: y\n\n", &limits()).expect("bare LF");
        assert_eq!(parsed.header("host"), Some("y"));
    }

    #[test]
    fn truncations_are_typed() {
        let full = b"POST /jobs HTTP/1.1\r\nContent-Length: 5\r\n\r\nn=9&x";
        for cut in 0..full.len() {
            let err = parse_request_bytes(&full[..cut], &limits())
                .expect_err("every strict prefix is incomplete");
            assert!(
                matches!(
                    err,
                    HttpError::TruncatedHead
                        | HttpError::TruncatedBody { .. }
                        | HttpError::MalformedRequestLine
                ),
                "prefix of {cut} bytes: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn oversize_fields_are_typed() {
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(9000));
        assert_eq!(
            parse_request_bytes(long_line.as_bytes(), &limits()).unwrap_err(),
            HttpError::RequestLineTooLong
        );

        let mut many_headers = String::from("GET / HTTP/1.1\r\n");
        for i in 0..100 {
            many_headers.push_str(&format!("h{i}: v\r\n"));
        }
        many_headers.push_str("\r\n");
        assert_eq!(
            parse_request_bytes(many_headers.as_bytes(), &limits()).unwrap_err(),
            HttpError::TooManyHeaders
        );

        let huge_body = b"POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n";
        assert_eq!(
            parse_request_bytes(huge_body, &limits()).unwrap_err(),
            HttpError::BodyTooLarge {
                declared: 99_999_999,
                limit: limits().max_body
            }
        );
    }

    #[test]
    fn bad_method_version_and_headers_are_typed() {
        assert_eq!(
            parse_request_bytes(b"BREW / HTTP/1.1\r\n\r\n", &limits()).unwrap_err(),
            HttpError::UnsupportedMethod
        );
        assert_eq!(
            parse_request_bytes(b"GET / HTTP/3.0\r\n\r\n", &limits()).unwrap_err(),
            HttpError::UnsupportedVersion
        );
        assert_eq!(
            parse_request_bytes(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n", &limits()).unwrap_err(),
            HttpError::MalformedHeader
        );
        assert_eq!(
            parse_request_bytes(b"GET / HTTP/1.1\r\nContent-Length: pony\r\n\r\n", &limits())
                .unwrap_err(),
            HttpError::InvalidContentLength
        );
    }

    #[test]
    fn every_error_maps_to_a_4xx_or_5xx_status() {
        let errors = [
            HttpError::TruncatedHead,
            HttpError::TruncatedBody {
                declared: 5,
                received: 2,
            },
            HttpError::MalformedRequestLine,
            HttpError::RequestLineTooLong,
            HttpError::UnsupportedMethod,
            HttpError::UnsupportedVersion,
            HttpError::MalformedHeader,
            HttpError::HeaderLineTooLong,
            HttpError::TooManyHeaders,
            HttpError::BodyTooLarge {
                declared: 10,
                limit: 1,
            },
        ];
        for error in errors {
            let status = error.status();
            assert!((400..=599).contains(&status), "{error:?} -> {status}");
            assert!(!error.to_string().is_empty());
        }
    }

    #[test]
    fn server_round_trip_and_stop() {
        let server = Server::http("127.0.0.1:0").expect("bind");
        let addr = server.server_addr().expect("addr");
        let stopper = server.stopper();
        let handle = std::thread::spawn(move || {
            let mut served = 0;
            while let Some(request) = server.recv().expect("recv") {
                let body = format!("{} {}", request.method(), request.url());
                request
                    .respond(Response::from_string(body))
                    .expect("respond");
                served += 1;
            }
            served
        });

        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .expect("write");
        let mut reply = String::new();
        stream.read_to_string(&mut reply).expect("read");
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "got: {reply}");
        assert!(reply.ends_with("GET /healthz"), "got: {reply}");

        // Malformed traffic is answered 4xx by the server itself and never reaches
        // the application loop.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(b"BREW / HTTP/1.1\r\n\r\n").expect("write");
        let mut reply = String::new();
        stream.read_to_string(&mut reply).expect("read");
        assert!(reply.starts_with("HTTP/1.1 501 "), "got: {reply}");

        stopper.stop();
        assert_eq!(handle.join().expect("join"), 1);
    }
}
