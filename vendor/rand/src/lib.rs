//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so this crate vendors the
//! *minimal* subset of the `rand 0.8` API that the workspace actually uses: the
//! [`RngCore`] / [`SeedableRng`] / [`Rng`] traits and a deterministic [`rngs::StdRng`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64 — a
//! small, well-studied, portable PRNG. It is **not** the ChaCha12 generator of the real
//! `rand` crate, so seeded streams differ from upstream `rand`; within this workspace that
//! is irrelevant because every reproducibility guarantee is stated against this crate.
//! Statistical quality is more than sufficient for scheduler sampling and Monte-Carlo
//! experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// The core of a random number generator: raw random words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (the only seeding entry point the
    /// workspace uses; fixed seeds make executions reproducible).
    fn seed_from_u64(seed: u64) -> Self;

    /// Creates a generator from operating-system-ish entropy (wall clock mixed with an
    /// in-process counter). Prefer an explicit seed for anything that should be
    /// reproducible.
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

/// Produces a best-effort non-deterministic 64-bit seed (wall clock mixed with a
/// process-wide counter, diffused through SplitMix64).
#[must_use]
pub fn entropy_seed() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED_5EED_5EED_5EED);
    let salt = COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
    splitmix64(nanos ^ salt.rotate_left(17))
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Types that can be drawn uniformly from a half-open range by [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Draws a value uniformly from `[low, high)` using rejection sampling (unbiased).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with an empty range");
                let span = (high as u64).wrapping_sub(low as u64);
                // Largest multiple of `span` that fits in a u64: values at or above it
                // are rejected so that the modulo below is exactly uniform.
                let zone = (u64::MAX / span) * span;
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return low.wrapping_add((v % span) as $t);
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from the half-open range `low..high`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must be in [0, 1]"
        );
        // 53 uniform mantissa bits, the standard float-in-[0,1) construction.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for checkpointing a generator mid-stream.
        /// Restoring via [`StdRng::from_state`] continues the stream exactly where
        /// [`StdRng::state`] captured it.
        #[must_use]
        pub fn state(&self) -> [u64; 4] {
            self.state
        }

        /// Reconstructs a generator from a captured [`StdRng::state`]. An all-zero
        /// state is invalid for xoshiro256++ (the stream would be constant zero), so
        /// it is mapped to the `seed_from_u64(0)` state instead of being accepted.
        #[must_use]
        pub fn from_state(state: [u64; 4]) -> StdRng {
            if state == [0; 4] {
                return StdRng::seed_from_u64(0);
            }
            StdRng { state }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, the seeding procedure recommended by the xoshiro
            // authors; guards against the all-zero state by construction.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                splitmix64(x)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_everything() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all residues should appear in 1000 draws"
        );
        for _ in 0..100 {
            let v = rng.gen_range(5u64..7);
            assert!((5..7).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn state_round_trip_continues_the_stream() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..17 {
            rng.next_u64();
        }
        let mut resumed = StdRng::from_state(rng.state());
        for _ in 0..100 {
            assert_eq!(resumed.next_u64(), rng.next_u64());
        }
        // The degenerate all-zero state is rejected rather than producing zeros.
        assert_ne!(StdRng::from_state([0; 4]).next_u64(), 0);
    }

    #[test]
    fn entropy_seeds_differ() {
        assert_ne!(super::entropy_seed(), super::entropy_seed());
    }
}
