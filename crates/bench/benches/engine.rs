//! Simulator-throughput benchmark: raw scheduler steps per second of the geometric
//! network-constructor engine under the Global Line and Square protocols.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nc_core::{Simulation, SimulationConfig};
use nc_protocols::line::GlobalLine;
use nc_protocols::square::Square;
use std::time::Duration;

fn engine_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/steps");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &n in &[16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("global-line", n), &n, |b, &n| {
            b.iter(|| {
                let mut sim =
                    Simulation::new(GlobalLine::new(), SimulationConfig::new(n).with_seed(1));
                sim.run_steps(5_000);
                sim.stats().steps
            });
        });
        group.bench_with_input(BenchmarkId::new("square", n), &n, |b, &n| {
            b.iter(|| {
                let mut sim = Simulation::new(Square::new(), SimulationConfig::new(n).with_seed(1));
                sim.run_steps(5_000);
                sim.stats().steps
            });
        });
    }
    group.finish();
}

/// Head-to-head: legacy rejection sampling vs the adaptive indexed sampler on full
/// runs to stability (the regime where the index pays off).
fn sampling_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/stabilize");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);
    for &n in &[64usize, 128] {
        group.bench_with_input(BenchmarkId::new("legacy", n), &n, |b, &n| {
            b.iter(|| {
                let config = SimulationConfig::new(n).with_seed(1).with_legacy_sampling();
                let mut sim = Simulation::new(GlobalLine::new(), config);
                sim.run_until_stable()
            });
        });
        group.bench_with_input(BenchmarkId::new("indexed", n), &n, |b, &n| {
            b.iter(|| {
                let mut sim =
                    Simulation::new(GlobalLine::new(), SimulationConfig::new(n).with_seed(1));
                sim.run_until_stable()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, engine_steps, sampling_modes);
criterion_main!(benches);
