//! Simulator-throughput benchmark: raw scheduler steps per second of the geometric
//! network-constructor engine under the Global Line and Square protocols.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use nc_core::{Simulation, SimulationConfig};
use nc_protocols::line::GlobalLine;
use nc_protocols::square::Square;

fn engine_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/steps");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &n in &[16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("global-line", n), &n, |b, &n| {
            b.iter(|| {
                let mut sim = Simulation::new(GlobalLine::new(), SimulationConfig::new(n).with_seed(1));
                sim.run_steps(5_000);
                sim.stats().steps
            });
        });
        group.bench_with_input(BenchmarkId::new("square", n), &n, |b, &n| {
            b.iter(|| {
                let mut sim = Simulation::new(Square::new(), SimulationConfig::new(n).with_seed(1));
                sim.run_steps(5_000);
                sim.stats().steps
            });
        });
    }
    group.finish();
}

criterion_group!(benches, engine_steps);
criterion_main!(benches);
