//! E2 timing: wall-clock cost of the Counting-Upper-Bound protocol (Theorem 1, Remark 1)
//! and of the Counting-on-a-Line variant (Lemma 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nc_core::{Simulation, SimulationConfig};
use nc_popproto::counting::{run_counting, CountingUpperBound};
use nc_protocols::counting_line::CountingOnALine;
use std::time::Duration;

fn counting_upper_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("counting/upper-bound");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for &n in &[50usize, 100, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_counting(&CountingUpperBound::new(4), n, seed)
            });
        });
    }
    group.finish();
}

fn counting_on_a_line(c: &mut Criterion) {
    let mut group = c.benchmark_group("counting/on-a-line");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for &n in &[16usize, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut sim = Simulation::new(
                    CountingOnALine::new(4),
                    SimulationConfig::new(n).with_seed(seed),
                );
                sim.run_until_any_halted()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, counting_upper_bound, counting_on_a_line);
criterion_main!(benches);
