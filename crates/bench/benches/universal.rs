//! E9/E13 timing: the universal constructor of Theorem 4 and the pattern painter of
//! Remark 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nc_protocols::pattern::{checkerboard_pattern, paint};
use nc_protocols::universal::{construct, UniversalConstructor};
use nc_tm::library;
use std::sync::Arc;
use std::time::Duration;

fn universal_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("universal/shape");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for &n in &[16usize, 25] {
        group.bench_with_input(BenchmarkId::new("star", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                construct(
                    UniversalConstructor::shape(n as u64, Arc::from(library::star_computer())),
                    n,
                    seed,
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("square-only", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                construct(UniversalConstructor::square_only(n as u64), n, seed)
            });
        });
    }
    group.finish();
}

fn pattern_painting(c: &mut Criterion) {
    let mut group = c.benchmark_group("universal/pattern");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for &n in &[16usize, 25] {
        group.bench_with_input(BenchmarkId::new("checkerboard", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                paint(checkerboard_pattern(), n as u64, n, seed)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, universal_construction, pattern_painting);
criterion_main!(benches);
