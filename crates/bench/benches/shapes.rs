//! E6 timing: the stabilizing constructors of Section 4 (Global Line, Square, Square2)
//! and the self-replication of Section 7 (E11).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nc_core::{Simulation, SimulationConfig};
use nc_geometry::library;
use nc_protocols::line::GlobalLine;
use nc_protocols::self_replication::replicate;
use nc_protocols::square::Square;
use nc_protocols::square2::Square2;
use std::time::Duration;

fn basic_constructors(c: &mut Criterion) {
    let mut group = c.benchmark_group("shapes/stabilize");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for &n in &[9usize, 16, 25] {
        group.bench_with_input(BenchmarkId::new("global-line", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut sim =
                    Simulation::new(GlobalLine::new(), SimulationConfig::new(n).with_seed(seed));
                sim.run_until_stable()
            });
        });
        group.bench_with_input(BenchmarkId::new("square", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut sim =
                    Simulation::new(Square::new(), SimulationConfig::new(n).with_seed(seed));
                sim.run_until_stable()
            });
        });
        group.bench_with_input(BenchmarkId::new("square2", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut sim =
                    Simulation::new(Square2::new(), SimulationConfig::new(n).with_seed(seed));
                sim.run_until_stable()
            });
        });
    }
    group.finish();
}

fn self_replication(c: &mut Criterion) {
    let mut group = c.benchmark_group("shapes/self-replication");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    group.bench_function("rectangle-3x2", |b| {
        let shape = library::rectangle_shape(3, 2);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            replicate(&shape, 12, seed)
        });
    });
    group.bench_function("l-shape-3x3", |b| {
        let shape = library::l_shape(3, 3);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            replicate(&shape, 18, seed)
        });
    });
    group.finish();
}

criterion_group!(benches, basic_constructors, self_replication);
criterion_main!(benches);
