//! The scheduler n-sweep: `GlobalLine` runs to stability under the legacy rejection
//! sampler and under the adaptive indexed sampler, on the same seed, for
//! n = 64 … 1024. Emits `BENCH_scheduler.json` (steps/sec and speedup per size), the
//! perf baseline that later PRs compare against.
//!
//! ```text
//! cargo run -p nc-bench --release --bin scheduler_sweep            # writes BENCH_scheduler.json
//! cargo run -p nc-bench --release --bin scheduler_sweep -- --out /dev/stdout
//! ```

use nc_core::{SamplingMode, Simulation, SimulationConfig, StopReason};
use nc_protocols::line::GlobalLine;
use std::time::Instant;

struct Row {
    n: usize,
    mode: &'static str,
    seed: u64,
    seconds: f64,
    steps: u64,
    effective_steps: u64,
    steps_per_sec: f64,
    stabilized: bool,
}

impl Row {
    fn to_json(&self) -> String {
        format!(
            "    {{\"n\": {}, \"mode\": \"{}\", \"seed\": {}, \"seconds\": {:.6}, \"steps\": {}, \"effective_steps\": {}, \"steps_per_sec\": {:.1}, \"stabilized\": {}}}",
            self.n,
            self.mode,
            self.seed,
            self.seconds,
            self.steps,
            self.effective_steps,
            self.steps_per_sec,
            self.stabilized
        )
    }
}

fn run_one(n: usize, seed: u64, mode: SamplingMode) -> Row {
    let config = SimulationConfig::new(n)
        .with_seed(seed)
        .with_max_steps(2_000_000_000)
        .with_sampling(mode);
    let mut sim = Simulation::new(GlobalLine::new(), config);
    let started = Instant::now();
    let report = sim.run_until_stable();
    let seconds = started.elapsed().as_secs_f64();
    assert!(
        report.reason != StopReason::Stable || sim.output_shape().is_line(n),
        "a stable GlobalLine run must produce the spanning line"
    );
    Row {
        n,
        mode: match mode {
            SamplingMode::Legacy => "legacy",
            SamplingMode::Adaptive => "indexed",
        },
        seed,
        seconds,
        steps: report.steps,
        effective_steps: report.effective_steps,
        steps_per_sec: report.steps as f64 / seconds.max(1e-9),
        stabilized: report.reason == StopReason::Stable,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_scheduler.json".to_string());

    let sizes = [64usize, 128, 256, 512, 1024];
    let seed = 1u64;
    let mut rows: Vec<Row> = Vec::new();
    eprintln!("protocol = global-line, seed = {seed}, run_until_stable wall-clock");
    eprintln!(
        "{:>6}  {:>8}  {:>12}  {:>12}  {:>14}  {:>7}",
        "n", "mode", "seconds", "steps", "steps/sec", "stable"
    );
    for &n in &sizes {
        let mut seconds_per_mode = Vec::new();
        for mode in [SamplingMode::Legacy, SamplingMode::Adaptive] {
            let row = run_one(n, seed, mode);
            eprintln!(
                "{:>6}  {:>8}  {:>12.3}  {:>12}  {:>14.0}  {:>7}",
                row.n, row.mode, row.seconds, row.steps, row.steps_per_sec, row.stabilized
            );
            seconds_per_mode.push(row.seconds);
            rows.push(row);
        }
        eprintln!(
            "{n:>6}  speedup (legacy/indexed): {:.2}x",
            seconds_per_mode[0] / seconds_per_mode[1].max(1e-9)
        );
    }

    let body: Vec<String> = rows.iter().map(Row::to_json).collect();
    let json = format!(
        "{{\n  \"experiment\": \"scheduler-n-sweep\",\n  \"protocol\": \"global-line\",\n  \"metric\": \"run_until_stable wall-clock, same seed per size\",\n  \"rows\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write bench artifact");
    eprintln!("wrote {out_path}");
}
