//! The scheduler n-sweep: `GlobalLine`, `Square` and `CountingOnALine` run to
//! completion under the legacy rejection sampler, the adaptive indexed sampler, the
//! batched geometric-jump sampler, the sharded composed-jump sampler at 1, 2 and 4
//! shards, and the speculative engine (optimistic epochs with delta-log rollback) at
//! 2 and 4 shards, on the same seed, for n = 64 … 1024. Emits `BENCH_scheduler.json`
//! (steps/sec, speedup and per-row speculation rollback rates per size), the perf
//! baseline that later PRs compare against.
//!
//! "Steps" follow the paper's convention — every scheduler selection counts, and the
//! batched/sharded samplers' bulk-credited ineffective selections are included (they
//! have the same distribution as one-at-a-time draws; see the geometric-jump invariant
//! in `nc_core::scheduler`), so steps/sec across modes compares like for like. The
//! three sharded rows of one (protocol, n) cell run the same seed at 1, 2 and 4 shards
//! and must report **identical step counts** — the parallel-equivalence property the
//! sharded runtime guarantees (shard count is layout, not semantics).
//!
//! ```text
//! cargo run -p nc-bench --release --bin scheduler_sweep            # writes BENCH_scheduler.json
//! cargo run -p nc-bench --release --bin scheduler_sweep -- --out /dev/stdout
//! cargo run -p nc-bench --release --bin scheduler_sweep -- --smoke # CI gate, see below
//! cargo run -p nc-bench --release --bin scheduler_sweep -- --profile # per-phase columns
//! ```
//!
//! `--profile` attaches a telemetry handle to every benchmarked run and emits the
//! per-phase wall-clock breakdown (sample/resolve/apply/flush/rollback, plus the
//! delta-log record counter) both on stderr and as extra row columns
//! (`nc_bench::sweep::SweepProfile`). The smoke gates always run unprofiled — the
//! throughput comparisons stay free of instrumentation overhead.
//!
//! Each cell additionally runs the three deterministic adversarial-but-fair schedulers
//! (`nc_core::adversary`: round-robin, worst-case, eclipse) at n ≤ 128 — they must
//! still reach the guaranteed outcome, pinning fairness-despite-adversity in the
//! artifact alongside the throughput rows.
//!
//! `--smoke` asserts (a) every mode completes with the protocol's guaranteed outcome at
//! n = 256 — including the three adversaries at n = 64, which must also be
//! bit-deterministic across two runs — (b) batched achieves at least the indexed
//! steps/sec at n = 256, (c) the
//! sharded *and speculative* rows report step counts identical to each other across
//! shard counts and window sizes (speculation must be invisible in the trajectory),
//! and (d) on Square n = 512 the sharded sampler at 4 shards achieves at least the
//! batched steps/sec (best of three runs each, since both finish in milliseconds
//! there) — the sharded aggregate-count hot path regressing below the batched recount
//! path fails the build.
//!
//! Per-protocol caps keep the sweep finite: the legacy sampler's full-scan stability
//! checks cost `O(n²·ports²)` per probe, which at GlobalLine n = 1024 is ~13 minutes
//! (recorded once in PR 1) and far worse for Square, whose single productive port pair
//! drives the step count towards `Θ(n³)` — Square n = 512 already needs ~3·10⁸
//! selections and n = 1024 exceeds 2·10⁹, so Square is swept to 512 and its legacy
//! rows to 128. `--legacy-max` can lower (never raise) the legacy caps.

use nc_bench::sweep::{SweepProfile, SweepRow};
use nc_core::scheduler::Scheduler;
use nc_core::{
    EclipseScheduler, RoundRobinScheduler, RunReport, SamplingMode, Simulation, SimulationConfig,
    SnapshotProtocol, StopReason, Telemetry, WorstCaseScheduler,
};
use nc_protocols::counting_line::{final_count, CountingOnALine};
use nc_protocols::line::GlobalLine;
use nc_protocols::square::Square;
use std::time::Instant;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Proto {
    Line,
    Square,
    Counting,
}

impl Proto {
    fn name(self) -> &'static str {
        match self {
            Proto::Line => "global-line",
            Proto::Square => "square",
            Proto::Counting => "counting-on-a-line",
        }
    }

    /// Largest population the legacy rejection sampler is run at (see module docs).
    fn legacy_cap(self) -> usize {
        match self {
            Proto::Line => 512,
            Proto::Square => 128,
            Proto::Counting => 1024,
        }
    }

    /// Largest population swept at all (Square's step count explodes past 512).
    fn size_cap(self) -> usize {
        match self {
            Proto::Square => 512,
            Proto::Line | Proto::Counting => 1024,
        }
    }
}

/// One benchmarked execution: a sampling mode plus (for sharded/speculative rows) the
/// shard count and speculation window.
#[derive(Clone, Copy, PartialEq, Eq)]
struct ModeSpec {
    mode: SamplingMode,
    shards: usize,
    speculation: usize,
    label: &'static str,
}

const MODES: [ModeSpec; 8] = [
    ModeSpec {
        mode: SamplingMode::Legacy,
        shards: 1,
        speculation: 0,
        label: "legacy",
    },
    ModeSpec {
        mode: SamplingMode::Adaptive,
        shards: 1,
        speculation: 0,
        label: "indexed",
    },
    ModeSpec {
        mode: SamplingMode::Batched,
        shards: 1,
        speculation: 0,
        label: "batched",
    },
    ModeSpec {
        mode: SamplingMode::Sharded,
        shards: 1,
        speculation: 0,
        label: "sharded1",
    },
    ModeSpec {
        mode: SamplingMode::Sharded,
        shards: 2,
        speculation: 0,
        label: "sharded2",
    },
    ModeSpec {
        mode: SamplingMode::Sharded,
        shards: 4,
        speculation: 0,
        label: "sharded4",
    },
    ModeSpec {
        mode: SamplingMode::Speculative,
        shards: 2,
        speculation: 8,
        label: "speculative2",
    },
    ModeSpec {
        mode: SamplingMode::Speculative,
        shards: 4,
        speculation: 8,
        label: "speculative4",
    },
];

/// Row type shared with the `nc-service` stats tier (`nc_bench::sweep`): the sweep
/// binary and the serving tier emit the same JSON schema.
type Row = SweepRow;

/// Times one `checkpoint()` and one `resume()` of the finished run (milliseconds),
/// sanity-checking that the round trip reproduces the statistics — so the bench
/// artifact doubles as a coarse end-of-run snapshot-exactness probe on every cell.
fn snapshot_timings<P: SnapshotProtocol>(protocol: P, sim: &Simulation<P>) -> (f64, f64) {
    let started = Instant::now();
    let snapshot = sim.checkpoint().expect("checkpoint");
    let snapshot_ms = started.elapsed().as_secs_f64() * 1e3;
    let started = Instant::now();
    let resumed = Simulation::resume(protocol, &snapshot).expect("end-of-run snapshot resumes");
    let resume_ms = started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        resumed.stats(),
        sim.stats(),
        "a resumed end-of-run snapshot must carry the statistics verbatim"
    );
    (snapshot_ms, resume_ms)
}

/// Runs one protocol to its completion condition and checks the guaranteed outcome:
/// the spanning line, the ⌊√n⌋ square for perfect squares, or a halted counting leader.
fn run_one(proto: Proto, n: usize, seed: u64, spec: ModeSpec, profile: bool) -> Row {
    let config = SimulationConfig::new(n)
        .with_seed(seed)
        .with_max_steps(2_000_000_000)
        .with_sampling(spec.mode)
        .with_shards(spec.shards)
        .with_speculation(spec.speculation);
    let obs = if profile {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let started = Instant::now();
    let (report, stats, completed, timings, delta_records) = match proto {
        Proto::Line => {
            let mut sim = Simulation::new(GlobalLine::new(), config);
            sim.set_telemetry(obs.clone());
            let report = sim.run_until_stable();
            let ok = report.reason == StopReason::Stable;
            assert!(
                !ok || sim.output_shape().is_line(n),
                "a stable GlobalLine run must produce the spanning line"
            );
            let timings = snapshot_timings(GlobalLine::new(), &sim);
            (
                report,
                sim.stats(),
                ok,
                timings,
                sim.world().delta_records(),
            )
        }
        Proto::Square => {
            let mut sim = Simulation::new(Square::new(), config);
            sim.set_telemetry(obs.clone());
            let report = sim.run_until_stable();
            let ok = report.reason == StopReason::Stable;
            let d = (n as f64).sqrt() as u32;
            assert!(
                !ok || (d as usize * d as usize != n) || sim.output_shape().is_full_square(d),
                "a stable Square run on a perfect-square population must produce the square"
            );
            let timings = snapshot_timings(Square::new(), &sim);
            (
                report,
                sim.stats(),
                ok,
                timings,
                sim.world().delta_records(),
            )
        }
        Proto::Counting => {
            let mut sim = Simulation::new(CountingOnALine::new(2), config);
            sim.set_telemetry(obs.clone());
            let report = sim.run_until_any_halted();
            let ok = report.reason == StopReason::AllHalted;
            assert!(
                !ok || final_count(&sim).is_some(),
                "a halted counting run must leave a halted leader"
            );
            let timings = snapshot_timings(CountingOnALine::new(2), &sim);
            (
                report,
                sim.stats(),
                ok,
                timings,
                sim.world().delta_records(),
            )
        }
    };
    // The run's wall-clock is measured before the snapshot probe but the probe runs
    // inside the `match`, so subtract it from the elapsed time.
    let seconds = started.elapsed().as_secs_f64() - (timings.0 + timings.1) / 1e3;
    let speculation = report.speculation;
    Row {
        protocol: proto.name().to_string(),
        n,
        mode: spec.label.to_string(),
        shards: spec.shards,
        seed,
        seconds,
        steps: report.steps,
        effective_steps: report.effective_steps,
        skipped_steps: stats.skipped_steps,
        steps_per_sec: report.steps as f64 / seconds.max(1e-9),
        completed,
        speculated: speculation.speculated,
        spec_committed: speculation.committed,
        spec_rolled_back: speculation.rolled_back,
        spec_rollback_rate: speculation.rollback_rate(),
        snapshot_ms: timings.0,
        resume_ms: timings.1,
        profile: profile.then(|| SweepProfile::from_run(&report.phases, delta_records)),
    }
}

/// The adversarial-but-fair schedulers (see `nc_core::adversary`), run as extra rows
/// at small n: they are deterministic worst cases, not samplers, so they are compared
/// on completion and determinism rather than throughput. Population capped because
/// their pair views re-enumerate all permissible pairs on every world change.
const ADVERSARIES: [&str; 3] = ["round-robin", "worst-case", "eclipse"];
const ADVERSARY_CAP: usize = 128;
const ADVERSARY_PATIENCE: u64 = 8;

/// Runs one protocol to completion under a named adversarial scheduler and checks the
/// same guaranteed outcome as `run_one`. Snapshot timings are zero: checkpoints are
/// deliberately only offered for the uniform scheduler (PR 5), so adversary rows
/// carry no snapshot probe.
fn run_adversary(proto: Proto, n: usize, adversary: &'static str) -> Row {
    fn go<P: SnapshotProtocol, S: Scheduler>(
        protocol: P,
        n: usize,
        halt: bool,
        scheduler: S,
        check: impl FnOnce(&nc_core::World<P>) -> bool,
    ) -> (RunReport, nc_core::ExecutionStats, bool) {
        let config = SimulationConfig::new(n).with_max_steps(2_000_000_000);
        let mut sim = Simulation::with_scheduler(protocol, config, scheduler);
        let report = if halt {
            sim.run_until_any_halted()
        } else {
            sim.run_until_stable()
        };
        let wanted = if halt {
            report.reason == StopReason::AllHalted
        } else {
            report.reason == StopReason::Stable
        };
        let ok = wanted && check(sim.world());
        (report, sim.stats(), ok)
    }
    let started = Instant::now();
    macro_rules! go_proto {
        ($sched:expr) => {
            match proto {
                Proto::Line => go(GlobalLine::new(), n, false, $sched, |w| {
                    w.output_shape().is_line(n)
                }),
                Proto::Square => {
                    let d = (n as f64).sqrt() as u32;
                    go(Square::new(), n, false, $sched, move |w| {
                        d as usize * d as usize != n || w.output_shape().is_full_square(d)
                    })
                }
                Proto::Counting => go(CountingOnALine::new(2), n, true, $sched, |w| w.any_halted()),
            }
        };
    }
    let (report, stats, completed) = match adversary {
        "round-robin" => go_proto!(RoundRobinScheduler::new()),
        "worst-case" => go_proto!(WorstCaseScheduler::new(ADVERSARY_PATIENCE)),
        "eclipse" => go_proto!(EclipseScheduler::against_leader(ADVERSARY_PATIENCE)),
        other => panic!("unknown adversary {other}"),
    };
    let seconds = started.elapsed().as_secs_f64();
    Row {
        protocol: proto.name().to_string(),
        n,
        mode: adversary.to_string(),
        shards: 1,
        seed: 0,
        seconds,
        steps: report.steps,
        effective_steps: report.effective_steps,
        skipped_steps: stats.skipped_steps,
        steps_per_sec: report.steps as f64 / seconds.max(1e-9),
        completed,
        speculated: 0,
        spec_committed: 0,
        spec_rolled_back: 0,
        spec_rollback_rate: 0.0,
        snapshot_ms: 0.0,
        resume_ms: 0.0,
        profile: None,
    }
}

fn spec(label: &str) -> ModeSpec {
    *MODES
        .iter()
        .find(|m| m.label == label)
        .expect("known mode label")
}

/// Best steps/sec over `reps` runs of the same (protocol, n, seed, mode) — the smoke
/// gate compares millisecond-scale runs, so a best-of dampens scheduler noise.
fn best_of(proto: Proto, n: usize, seed: u64, spec: ModeSpec, reps: u32) -> Row {
    let mut best: Option<Row> = None;
    for _ in 0..reps {
        let row = run_one(proto, n, seed, spec, false);
        if best
            .as_ref()
            .is_none_or(|b| row.steps_per_sec > b.steps_per_sec)
        {
            best = Some(row);
        }
    }
    best.expect("at least one repetition")
}

/// Asserts the cross-mode equivalences the smoke gate guards: the stable output shape
/// of GlobalLine/Square is unique, so every mode must reach it (checked inside
/// `run_one`); counting's final tape length is schedule-dependent, so only the halting
/// guarantee is compared. On top of that, batched must not be slower than indexed at
/// n = 256, the sharded rows must agree on step counts across 1/2/4 shards, and on
/// Square n = 512 sharded@4 must not be slower than batched.
fn smoke(protos: &[Proto], seed: u64) {
    let n = 256;
    let mut failures = Vec::new();
    for &proto in protos {
        let mut per_mode = Vec::new();
        for mode in MODES {
            if mode.mode == SamplingMode::Legacy && n > proto.legacy_cap() {
                continue;
            }
            // The smoke gates compare throughput, so they always run unprofiled.
            let row = run_one(proto, n, seed, mode, false);
            eprintln!(
                "smoke {:>18} {:>8}: {:>12.3}s {:>12} steps {:>14.0} steps/s completed={}",
                row.protocol, row.mode, row.seconds, row.steps, row.steps_per_sec, row.completed
            );
            if !row.completed {
                failures.push(format!("{} {} did not complete", proto.name(), row.mode));
            }
            per_mode.push(row);
        }
        // A missing mode row (e.g. a future filtered run that skips a sampler) must
        // degrade this gate to "skipped with a note", not abort the whole sweep.
        let indexed = per_mode.iter().find(|r| r.mode == "indexed");
        let batched = per_mode.iter().find(|r| r.mode == "batched");
        match (indexed, batched) {
            (Some(indexed), Some(batched)) => {
                if batched.steps_per_sec < indexed.steps_per_sec {
                    failures.push(format!(
                        "{}: batched {:.0} steps/s slower than indexed {:.0} steps/s",
                        proto.name(),
                        batched.steps_per_sec,
                        indexed.steps_per_sec
                    ));
                }
            }
            _ => {
                eprintln!(
                "smoke note: {}: batched-vs-indexed gate skipped (indexed row {}, batched row {})",
                proto.name(),
                if indexed.is_some() { "present" } else { "missing" },
                if batched.is_some() { "present" } else { "missing" },
            )
            }
        }
        let sharded: Vec<&Row> = per_mode
            .iter()
            .filter(|r| r.mode.starts_with("sharded") || r.mode.starts_with("speculative"))
            .collect();
        if sharded
            .iter()
            .any(|r| (r.steps, r.effective_steps) != (sharded[0].steps, sharded[0].effective_steps))
        {
            failures.push(format!(
                "{}: sharded/speculative step counts differ across shard counts and windows \
                 (parallel-equivalence or speculation invariance broken)",
                proto.name()
            ));
        }
        for row in per_mode
            .iter()
            .filter(|r| r.mode.starts_with("speculative"))
        {
            if row.speculated == 0 {
                failures.push(format!(
                    "{} {}: the speculative row never speculated",
                    proto.name(),
                    row.mode
                ));
            }
        }
    }
    // Adversarial-but-fair schedulers: every protocol must still reach its guaranteed
    // outcome under each deterministic adversary, and two runs of the same adversary
    // must take the identical trajectory (they consume no randomness).
    let adv_n = 64;
    for &proto in protos {
        for adversary in ADVERSARIES {
            let row = run_adversary(proto, adv_n, adversary);
            let again = run_adversary(proto, adv_n, adversary);
            eprintln!(
                "smoke {:>18} {:>11}: {:>12.3}s {:>12} steps {:>14.0} steps/s completed={} (adversary, n={adv_n})",
                row.protocol, row.mode, row.seconds, row.steps, row.steps_per_sec, row.completed
            );
            if !row.completed {
                failures.push(format!(
                    "{} under the {} adversary did not complete",
                    proto.name(),
                    adversary
                ));
            }
            if (row.steps, row.effective_steps) != (again.steps, again.effective_steps) {
                failures.push(format!(
                    "{} under the {} adversary is not deterministic ({} vs {} steps)",
                    proto.name(),
                    adversary,
                    row.steps,
                    again.steps
                ));
            }
        }
    }
    // The headline gate: Square n = 512, sharded@4 vs batched, best of three.
    if protos.contains(&Proto::Square) {
        let batched = best_of(Proto::Square, 512, seed, spec("batched"), 3);
        let sharded4 = best_of(Proto::Square, 512, seed, spec("sharded4"), 3);
        for row in [&batched, &sharded4] {
            eprintln!(
                "smoke {:>18} {:>8}: {:>12.3}s {:>12} steps {:>14.0} steps/s completed={} (n=512 best-of-3)",
                row.protocol, row.mode, row.seconds, row.steps, row.steps_per_sec, row.completed
            );
            if !row.completed {
                failures.push(format!("square n=512 {} did not complete", row.mode));
            }
        }
        if sharded4.steps_per_sec < batched.steps_per_sec {
            failures.push(format!(
                "square n=512: sharded@4 {:.0} steps/s slower than batched {:.0} steps/s",
                sharded4.steps_per_sec, batched.steps_per_sec
            ));
        }
    }
    assert!(failures.is_empty(), "smoke failures: {failures:?}");
    eprintln!(
        "smoke ok: batched ≥ indexed at n = {n}, sharded/speculative step counts invariant \
         across layouts and windows, sharded@4 ≥ batched on square n = 512, all modes \
         completed, adversarial schedulers deterministic and fair at n = {adv_n}"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_scheduler.json".to_string());
    let protos: Vec<Proto> = flag_value("--protocols")
        .map(|list| {
            list.split(',')
                .map(|p| match p {
                    "line" => Proto::Line,
                    "square" => Proto::Square,
                    "counting" => Proto::Counting,
                    other => panic!("unknown protocol {other} (use line,square,counting)"),
                })
                .collect()
        })
        .unwrap_or_else(|| vec![Proto::Line, Proto::Square, Proto::Counting]);
    let sizes: Vec<usize> = flag_value("--sizes")
        .map(|list| {
            list.split(',')
                .map(|s| s.parse().expect("size must be an integer"))
                .collect()
        })
        .unwrap_or_else(|| vec![64, 128, 256, 512, 1024]);
    let legacy_max: usize = flag_value("--legacy-max")
        .map(|v| v.parse().expect("--legacy-max must be an integer"))
        .unwrap_or(usize::MAX);
    let profile = args.iter().any(|a| a == "--profile");
    let seed = 1u64;

    if args.iter().any(|a| a == "--smoke") {
        smoke(&protos, seed);
        return;
    }

    let mut rows: Vec<Row> = Vec::new();
    eprintln!("seed = {seed}, run-to-completion wall-clock (steps incl. batched credits)");
    eprintln!(
        "{:>18}  {:>6}  {:>8}  {:>12}  {:>12}  {:>14}  {:>9}",
        "protocol", "n", "mode", "seconds", "steps", "steps/sec", "completed"
    );
    for &proto in &protos {
        for &n in &sizes {
            if n > proto.size_cap() {
                continue;
            }
            let mut indexed_secs = f64::NAN;
            for mode in MODES {
                if mode.mode == SamplingMode::Legacy && n > legacy_max.min(proto.legacy_cap()) {
                    continue;
                }
                let row = run_one(proto, n, seed, mode, profile);
                eprintln!(
                    "{:>18}  {:>6}  {:>8}  {:>12.3}  {:>12}  {:>14.0}  {:>9}",
                    row.protocol,
                    row.n,
                    row.mode,
                    row.seconds,
                    row.steps,
                    row.steps_per_sec,
                    row.completed
                );
                if let Some(p) = &row.profile {
                    eprintln!(
                        "{:>18}  {n:>6}  {} phases: sample {:.1}ms, resolve {:.1}ms, apply {:.1}ms, flush {:.1}ms, rollback {:.1}ms, {} delta records",
                        proto.name(),
                        row.mode,
                        p.sample_ms,
                        p.resolve_ms,
                        p.apply_ms,
                        p.flush_ms,
                        p.rollback_ms,
                        p.delta_records
                    );
                }
                if mode.mode == SamplingMode::Adaptive {
                    indexed_secs = row.seconds;
                }
                if mode.mode == SamplingMode::Batched {
                    eprintln!(
                        "{:>18}  {n:>6}  speedup (indexed/batched): {:.2}x",
                        proto.name(),
                        indexed_secs / row.seconds.max(1e-9)
                    );
                }
                if mode.mode == SamplingMode::Speculative {
                    eprintln!(
                        "{:>18}  {n:>6}  {} speculation: {} speculated, {} committed, {} rolled back ({:.1}% rollback)",
                        proto.name(),
                        row.mode,
                        row.speculated,
                        row.spec_committed,
                        row.spec_rolled_back,
                        row.spec_rollback_rate * 100.0
                    );
                }
                rows.push(row);
            }
            // Adversary rows ride along at small n: deterministic worst cases that must
            // still reach the guaranteed outcome (fairness despite adversarial choice).
            if n <= ADVERSARY_CAP {
                for adversary in ADVERSARIES {
                    let row = run_adversary(proto, n, adversary);
                    eprintln!(
                        "{:>18}  {:>6}  {:>8}  {:>12.3}  {:>12}  {:>14.0}  {:>9}",
                        row.protocol,
                        row.n,
                        row.mode,
                        row.seconds,
                        row.steps,
                        row.steps_per_sec,
                        row.completed
                    );
                    assert!(
                        row.completed,
                        "{} n={n}: the {adversary} adversary must still complete",
                        proto.name()
                    );
                    rows.push(row);
                }
            }
            // Parallel-equivalence check rides along with every sweep: the sharded and
            // speculative rows of this cell must agree on step counts (shard count and
            // speculation window are layout/overlap knobs, never semantic ones).
            let cell: Vec<&Row> = rows
                .iter()
                .filter(|r| {
                    r.protocol == proto.name()
                        && r.n == n
                        && (r.mode.starts_with("sharded") || r.mode.starts_with("speculative"))
                })
                .collect();
            assert!(
                cell.iter().all(|r| r.steps == cell[0].steps),
                "{} n={n}: sharded/speculative step counts differ across layouts",
                proto.name()
            );
        }
    }

    let body: Vec<String> = rows.iter().map(Row::to_json).collect();
    let json = format!(
        "{{\n  \"experiment\": \"scheduler-n-sweep\",\n  \"metric\": \"run-to-completion wall-clock, same seed per size; steps include batched/sharded bulk credits; sharded rows at 1/2/4 shards and speculative rows (k=8) at 2/4 shards report identical steps (parallel equivalence + speculation invariance); spec_* columns count optimistic interactions and the Time-Warp rollback rate; snapshot_ms/resume_ms time one end-of-run checkpoint and its resume (round-trip verified against the run's statistics); legacy capped per protocol (line 512, square 128, counting 1024), square swept to 512\",\n  \"rows\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write bench artifact");
    eprintln!("wrote {out_path}");
}
