//! CLI for the experiment harness.
//!
//! ```text
//! cargo run -p nc-bench --release --bin experiments -- all          # every experiment, quick sizes
//! cargo run -p nc-bench --release --bin experiments -- all --full   # full sizes (EXPERIMENTS.md)
//! cargo run -p nc-bench --release --bin experiments -- e1 e9 e11    # a subset
//! ```

use nc_bench::experiments;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let quick = !full;
    let selected: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let run_all = selected.is_empty() || selected.iter().any(|a| a.as_str() == "all");
    let started = Instant::now();
    if run_all {
        for experiment in experiments::all(quick) {
            println!("{experiment}");
        }
    } else {
        for id in &selected {
            match experiments::by_id(id, quick) {
                Some(experiment) => println!("{experiment}"),
                None => {
                    eprintln!("unknown experiment id `{id}`; known: e1–e9, e10b, e11–e13, all");
                    std::process::exit(2);
                }
            }
        }
    }
    eprintln!(
        "({} mode, finished in {:.1} s)",
        if quick { "quick" } else { "full" },
        started.elapsed().as_secs_f64()
    );
}
