//! The deterministic replay oracle: re-executes a snapshot against a from-scratch
//! reference run of the same configuration and diffs `ExecutionStats` step by step.
//!
//! A snapshot embeds everything a run needs (configuration, statistics, world,
//! scheduler state), so an independent reference — constructed fresh from the
//! embedded configuration and driven to the snapshot's step count — must from then
//! on produce *exactly* the same per-step statistics and checkpoint bytes as the
//! resumed run. Any divergence is printed as a per-field diff and exits non-zero,
//! which makes the binary a CI-gateable oracle for the snapshot subsystem.
//!
//! ```text
//! cargo run -p nc-bench --release --bin replay -- <snapshot-file> [--steps N] [--progress N]
//! cargo run -p nc-bench --release --bin replay -- --smoke          # committed fixture
//! cargo run -p nc-bench --release --bin replay -- --write-fixture  # regenerate it
//! ```
//!
//! Long replays are silent until the verdict by default. `--progress N` prints a
//! stderr heartbeat every `N` lockstep steps — lockstep position, lifetime step
//! count and the statistics deltas since the previous heartbeat — without touching
//! stdout, so `--smoke` output (which never passes the flag) stays byte-stable.
//!
//! The protocol is dispatched on the snapshot's stored protocol name. Protocols
//! whose constructor takes run-scoped parameters use the experiment-suite defaults
//! (`CountingOnALine::new(2)`); a snapshot of a differently parameterised run would
//! diverge immediately and fail the oracle, which is the honest outcome.
//!
//! `--smoke` replays `tests/fixtures/square_25steps.ncss` — a Square run checkpointed
//! after 25 driver steps (each a scheduler selection batch, ~4.3k credited scheduler
//! steps), committed to the repository — for 200 lockstep steps with a
//! zero-diff requirement. Because the fixture bytes are fixed, the gate also proves
//! the *format* stays readable: an accidental encoding change breaks the smoke run
//! even if checkpoint/resume still round-trips in-process.

use nc_core::{ExecutionStats, SamplingMode, Simulation, SimulationConfig, Snapshot};
use nc_protocols::counting_line::CountingOnALine;
use nc_protocols::line::GlobalLine;
use nc_protocols::square::Square;
use std::process::ExitCode;

/// Path of the committed smoke fixture, relative to the workspace root.
const FIXTURE: &str = "tests/fixtures/square_25steps.ncss";

fn fixture_path() -> std::path::PathBuf {
    // CARGO_MANIFEST_DIR is crates/bench; the fixture lives at the workspace root.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(FIXTURE)
}

/// The configuration the committed fixture is generated from. Changing it requires
/// regenerating the fixture (`--write-fixture`) in the same commit.
fn fixture_config() -> SimulationConfig {
    SimulationConfig::new(16)
        .with_seed(42)
        .with_sampling(SamplingMode::Sharded)
        .with_shards(2)
}

fn write_fixture(path: &std::path::Path) -> Result<(), String> {
    let mut sim = Simulation::new(Square::new(), fixture_config());
    for _ in 0..25 {
        if !sim.step() {
            return Err("fixture run went dry before 25 steps".into());
        }
    }
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    }
    std::fs::write(path, sim.checkpoint().expect("checkpoint").as_bytes())
        .map_err(|e| format!("writing {}: {e}", path.display()))?;
    println!(
        "wrote {} ({} bytes, {} steps)",
        path.display(),
        sim.checkpoint().expect("checkpoint").len(),
        sim.stats().steps
    );
    Ok(())
}

/// Prints a per-field diff of two statistics blocks; returns whether they match.
fn diff_stats(step: u64, resumed: &ExecutionStats, reference: &ExecutionStats) -> bool {
    if resumed == reference {
        return true;
    }
    eprintln!("stats diverged at lockstep step {step}:");
    let fields: [(&str, u64, u64); 7] = [
        ("steps", resumed.steps, reference.steps),
        (
            "effective_steps",
            resumed.effective_steps,
            reference.effective_steps,
        ),
        (
            "skipped_steps",
            resumed.skipped_steps,
            reference.skipped_steps,
        ),
        (
            "bonds_activated",
            resumed.bonds_activated,
            reference.bonds_activated,
        ),
        (
            "bonds_deactivated",
            resumed.bonds_deactivated,
            reference.bonds_deactivated,
        ),
        ("merges", resumed.merges, reference.merges),
        ("splits", resumed.splits, reference.splits),
    ];
    for (name, got, want) in fields {
        let marker = if got == want { "  " } else { "!!" };
        eprintln!("  {marker} {name:18} resumed={got:<12} reference={want}");
    }
    false
}

/// Resumes the snapshot, rebuilds the reference run from the embedded
/// configuration, fast-forwards it to the snapshot's step count, then drives both
/// in lockstep for `steps` steps diffing statistics each step and checkpoint bytes
/// every 25 steps. Returns an error description on the first divergence.
fn replay<P: nc_core::SnapshotProtocol>(
    protocol_for_resume: P,
    protocol_for_reference: P,
    snapshot: &Snapshot,
    steps: u64,
    progress: u64,
) -> Result<(), String> {
    let mut resumed = Simulation::resume(protocol_for_resume, snapshot)
        .map_err(|e| format!("resume failed: {e}"))?;
    let config = resumed.config();
    let target = resumed.stats().steps;
    let mut reference = Simulation::new(protocol_for_reference, config);
    while reference.stats().steps < target {
        if !reference.step() {
            return Err(format!(
                "reference run went dry at step {} before reaching the snapshot's step {target}",
                reference.stats().steps
            ));
        }
    }
    if reference.stats().steps != target {
        // A batched jump can overshoot a mid-skip checkpoint's step count; the
        // snapshot was taken at a step boundary, so exact equality must be reachable.
        return Err(format!(
            "reference overshot the snapshot point: {} > {target}",
            reference.stats().steps
        ));
    }
    if !diff_stats(0, &resumed.stats(), &reference.stats()) {
        return Err("statistics differ at the snapshot point itself".into());
    }
    if resumed.checkpoint().expect("checkpoint").as_bytes()
        != reference.checkpoint().expect("checkpoint").as_bytes()
    {
        return Err("checkpoint bytes differ at the snapshot point itself".into());
    }
    let mut executed = 0u64;
    let mut last_reported = resumed.stats();
    for step in 1..=steps {
        let a = resumed.step();
        let b = reference.step();
        if a != b {
            return Err(format!(
                "step availability diverged at lockstep step {step}"
            ));
        }
        if !a {
            break; // both ran dry (stable configuration): a clean end, not a diff
        }
        executed += 1;
        if !diff_stats(step, &resumed.stats(), &reference.stats()) {
            return Err(format!("per-step statistics diverged at step {step}"));
        }
        if progress > 0 && step % progress == 0 {
            let now = resumed.stats();
            eprintln!(
                "progress: lockstep {step}/{steps} — lifetime steps {} (+{}), +{} effective, +{} skipped, +{} merges, +{} splits since last report",
                now.steps,
                now.steps - last_reported.steps,
                now.effective_steps - last_reported.effective_steps,
                now.skipped_steps - last_reported.skipped_steps,
                now.merges - last_reported.merges,
                now.splits - last_reported.splits
            );
            last_reported = now;
        }
        if step % 25 == 0
            && resumed.checkpoint().expect("checkpoint").as_bytes()
                != reference.checkpoint().expect("checkpoint").as_bytes()
        {
            return Err(format!("checkpoint bytes diverged at step {step}"));
        }
    }
    if resumed.checkpoint().expect("checkpoint").as_bytes()
        != reference.checkpoint().expect("checkpoint").as_bytes()
    {
        return Err("terminal checkpoints differ".into());
    }
    println!(
        "replay ok: protocol={} n={} sampling={:?} shards={} — {} lockstep steps, zero diff",
        snapshot.protocol_name(),
        config.n,
        config.sampling,
        config.shards,
        executed
    );
    Ok(())
}

/// Dispatches on the snapshot's stored protocol name.
fn replay_by_name(snapshot: &Snapshot, steps: u64, progress: u64) -> Result<(), String> {
    match snapshot.protocol_name() {
        "global-line" => replay(
            GlobalLine::new(),
            GlobalLine::new(),
            snapshot,
            steps,
            progress,
        ),
        "square" => replay(Square::new(), Square::new(), snapshot, steps, progress),
        "counting-on-a-line" => replay(
            CountingOnALine::new(2),
            CountingOnALine::new(2),
            snapshot,
            steps,
            progress,
        ),
        other => Err(format!("no replay dispatch for protocol {other:?}")),
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file: Option<std::path::PathBuf> = None;
    let mut steps = 200u64;
    let mut progress = 0u64;
    let mut smoke = false;
    let mut write = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--write-fixture" => write = true,
            "--steps" => {
                i += 1;
                let raw = args.get(i).ok_or("--steps needs a value")?;
                steps = raw
                    .parse()
                    .map_err(|_| format!("--steps: not a number: {raw:?}"))?;
            }
            "--progress" => {
                i += 1;
                let raw = args.get(i).ok_or("--progress needs a step interval")?;
                progress = raw
                    .parse()
                    .map_err(|_| format!("--progress: not a number: {raw:?}"))?;
            }
            other if !other.starts_with('-') => file = Some(other.into()),
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    if write {
        return write_fixture(&file.unwrap_or_else(fixture_path));
    }
    let path = match (smoke, file) {
        (true, None) => fixture_path(),
        (false, Some(path)) => path,
        (true, Some(_)) => return Err("--smoke takes no snapshot file".into()),
        (false, None) => return Err(
            "usage: replay <snapshot-file> [--steps N] [--progress N] | replay --smoke | replay --write-fixture"
                .into(),
        ),
    };
    let bytes = std::fs::read(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let snapshot = Snapshot::from_bytes(bytes)
        .map_err(|e| format!("{}: invalid snapshot: {e}", path.display()))?;
    replay_by_name(&snapshot, steps, progress)
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("replay: {message}");
            ExitCode::FAILURE
        }
    }
}
