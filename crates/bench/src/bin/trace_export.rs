//! Exports the step-indexed structured trace of a pinned run as a Chrome
//! trace-event JSON document (loadable in `about://tracing` / Perfetto's legacy
//! importer).
//!
//! Events are stamped `(lifetime_step, lane)` — never wall clock — and the lane
//! is a fixed partition of node ids independent of the runtime shard layout, so
//! the export of a pinned run is a *byte-reproducible* artifact: same protocol,
//! seed and step count ⇒ same bytes, at every `NC_SHARDS` setting. That turns
//! the exporter into a determinism oracle on top of a debugging aid.
//!
//! ```text
//! cargo run -p nc-bench --release --bin trace_export -- --out trace.json
//! cargo run -p nc-bench --release --bin trace_export -- --protocol line --n 32 --steps 500
//! cargo run -p nc-bench --release --bin trace_export -- --smoke   # CI determinism gate
//! ```
//!
//! `--smoke` runs the pinned configuration (Square, n = 16, seed 42, sharded
//! sampling, 200 driver steps plus one checkpoint) at 1 and at 4 shards,
//! requires the two exports to be **byte-identical**, and requires the trace to
//! contain every event family the simulator is expected to emit on that run
//! (selection, merge, index flush, class allocation, checkpoint). Nothing is
//! written to disk in smoke mode.

use nc_core::{
    SamplingMode, Simulation, SimulationConfig, SnapshotProtocol, Telemetry, TraceEvent,
};
use nc_obs::chrome_trace_json;
use nc_protocols::counting_line::CountingOnALine;
use nc_protocols::line::GlobalLine;
use nc_protocols::square::Square;
use std::process::ExitCode;

/// The pinned smoke configuration (mirrors the replay fixture's spirit: small,
/// fast, committed in code so the gate cannot drift silently).
const SMOKE_N: usize = 16;
const SMOKE_SEED: u64 = 42;
const SMOKE_STEPS: u64 = 200;

/// Runs `steps` driver steps of one protocol with telemetry attached and
/// returns the trace (plus how many events the bounded ring evicted).
fn traced_run<P: SnapshotProtocol>(
    protocol: P,
    n: usize,
    seed: u64,
    shards: usize,
    steps: u64,
) -> (Vec<TraceEvent>, u64) {
    let config = SimulationConfig::new(n)
        .with_seed(seed)
        .with_sampling(SamplingMode::Sharded)
        .with_shards(shards);
    let mut sim = Simulation::new(protocol, config);
    sim.set_telemetry(Telemetry::enabled());
    for _ in 0..steps {
        if !sim.step() {
            break;
        }
    }
    // One checkpoint so the export exercises the `checkpoint` event family too.
    sim.checkpoint().expect("end-of-run checkpoint");
    (
        sim.telemetry().trace_events(),
        sim.telemetry().trace_dropped(),
    )
}

fn traced_run_by_name(
    protocol: &str,
    n: usize,
    seed: u64,
    shards: usize,
    steps: u64,
) -> Result<(Vec<TraceEvent>, u64), String> {
    Ok(match protocol {
        "line" => traced_run(GlobalLine::new(), n, seed, shards, steps),
        "square" => traced_run(Square::new(), n, seed, shards, steps),
        "counting" => traced_run(CountingOnALine::new(2), n, seed, shards, steps),
        other => {
            return Err(format!(
                "unknown protocol {other:?} (use line,square,counting)"
            ))
        }
    })
}

/// The determinism gate: the pinned run's export must be byte-identical at 1
/// and 4 shards, and must contain every expected event family.
fn smoke() -> Result<(), String> {
    let (events_one, dropped_one) = traced_run(Square::new(), SMOKE_N, SMOKE_SEED, 1, SMOKE_STEPS);
    let (events_four, dropped_four) =
        traced_run(Square::new(), SMOKE_N, SMOKE_SEED, 4, SMOKE_STEPS);
    let one = chrome_trace_json(&events_one, "square-n16-seed42");
    let four = chrome_trace_json(&events_four, "square-n16-seed42");
    if dropped_one != 0 || dropped_four != 0 {
        return Err(format!(
            "smoke trace overflowed the ring ({dropped_one}/{dropped_four} dropped): raise the capacity or shrink the run"
        ));
    }
    if one != four {
        return Err(format!(
            "trace exports differ across shard counts ({} vs {} events, {} vs {} bytes) — \
             the step-indexed trace must be layout-invariant",
            events_one.len(),
            events_four.len(),
            one.len(),
            four.len()
        ));
    }
    for family in [
        "selection",
        "merge",
        "index_flush",
        "class_alloc",
        "checkpoint",
    ] {
        if !one.contains(&format!("\"name\":\"{family}\"")) {
            return Err(format!(
                "pinned run emitted no {family:?} event — an instrumentation hook went missing"
            ));
        }
    }
    println!(
        "trace_export smoke ok: {} events, byte-identical at 1 and 4 shards ({} bytes)",
        events_one.len(),
        one.len()
    );
    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        return smoke();
    }
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let parse = |name: &str, default: u64| -> Result<u64, String> {
        flag_value(name).map_or(Ok(default), |raw| {
            raw.parse()
                .map_err(|_| format!("{name}: not a number: {raw:?}"))
        })
    };
    let protocol = flag_value("--protocol").unwrap_or_else(|| "square".to_string());
    let n = parse("--n", SMOKE_N as u64)? as usize;
    let seed = parse("--seed", SMOKE_SEED)?;
    let shards = parse("--shards", default_shards() as u64)? as usize;
    let steps = parse("--steps", SMOKE_STEPS)?;
    let out_path = flag_value("--out").unwrap_or_else(|| "TRACE_export.json".to_string());

    let (events, dropped) = traced_run_by_name(&protocol, n, seed, shards, steps)?;
    let name = format!("{protocol}-n{n}-seed{seed}");
    let json = chrome_trace_json(&events, &name);
    std::fs::write(&out_path, &json).map_err(|e| format!("writing {out_path}: {e}"))?;
    eprintln!(
        "wrote {out_path}: {} events ({} dropped from the ring), {} bytes",
        events.len(),
        dropped,
        json.len()
    );
    Ok(())
}

/// The `NC_SHARDS` default, so a plain invocation matches the simulator's.
fn default_shards() -> usize {
    nc_core::shard::default_shard_count()
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("trace_export: {message}");
            ExitCode::FAILURE
        }
    }
}
