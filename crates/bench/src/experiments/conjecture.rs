//! E12: experimental evidence for Conjecture 1 (no leaderless terminating counting).

use super::{f1, f3, Experiment, Table};
use nc_popproto::conjecture::{evidence_for_conjecture, LeaderlessCounting};

/// E12 — Conjecture 1: in a leaderless terminating protocol, the probability that some
/// agent terminates after only a constant number of its own interactions does not vanish
/// as `n` grows — which is exactly why such a protocol cannot count `n` w.h.p.
#[must_use]
pub fn e12(quick: bool) -> Experiment {
    let (sizes, trials): (&[usize], u32) = if quick {
        (&[20, 50, 100], 30)
    } else {
        (&[20, 50, 100, 200, 500], 200)
    };
    let window = 3;
    let mut table = Table::new(&[
        "n",
        "window b",
        "trials",
        "P[some agent terminates after ≤ 2b own interactions]",
        "mean steps to first termination",
    ]);
    for &n in sizes {
        let evidence =
            evidence_for_conjecture(&LeaderlessCounting::new(2, window), n, trials, 0xE12);
        table.row(&[
            n.to_string(),
            window.to_string(),
            trials.to_string(),
            f3(evidence.early_termination_rate),
            f1(evidence.mean_steps_to_first_termination),
        ]);
    }
    Experiment {
        id: "E12",
        artefact: "Conjecture 1: constant probability of constant-interaction termination without a leader",
        table: table.render(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_renders_one_row_per_size() {
        let e = e12(true);
        assert_eq!(e.table.lines().count(), 2 + 3);
    }
}
