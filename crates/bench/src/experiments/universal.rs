//! E9 and E10b: the universal constructor of Theorem 4 and the oracle-vs-TM ablation.

use super::{f1, Experiment, Table};
use nc_protocols::universal::{construct, UniversalConstructor};
use nc_tm::{library, ShapeComputer};
use std::sync::Arc;

/// E9 — Theorem 4 / Figure 7: for every shape language of the library, the universal
/// constructor terminates with the correct shape and the waste bound `≤ (d−1)·d` (plus
/// the a-priori waste `n − d²`).
#[must_use]
pub fn e9(quick: bool) -> Experiment {
    let n: usize = if quick { 25 } else { 49 };
    let trials: u32 = if quick { 2 } else { 5 };
    let mut table = Table::new(&[
        "language",
        "n",
        "d",
        "terminated",
        "shape correct",
        "waste",
        "waste bound",
        "mean steps",
    ]);
    for computer in library::all_computers() {
        let name = computer.name().to_string();
        let shared: Arc<dyn ShapeComputer> = Arc::from(computer);
        let mut finished = 0u32;
        let mut correct = 0u32;
        let mut waste = 0usize;
        let mut steps = 0.0;
        let mut d = 0u64;
        for t in 0..trials {
            let protocol = UniversalConstructor::shape(n as u64, shared.clone());
            d = protocol.dimension();
            let expected = shared.labeled_square(d as u32).shape();
            let report = construct(protocol, n, 0xE9 + u64::from(t));
            finished += u32::from(report.finished);
            correct += u32::from(report.shape.congruent(&expected));
            waste += report.waste;
            steps += report.steps as f64;
        }
        let bound = (d - 1) * d + (n as u64 - d * d);
        table.row(&[
            name,
            n.to_string(),
            d.to_string(),
            format!("{}/{}", finished, trials),
            format!("{}/{}", correct, trials),
            f1(waste as f64 / f64::from(trials)),
            bound.to_string(),
            f1(steps / f64::from(trials)),
        ]);
    }
    Experiment {
        id: "E9",
        artefact: "Theorem 4 & Figure 7: universal construction of TM-computable shapes",
        table: table.render(),
    }
}

/// E10b — DESIGN.md §2 ablation: deciding pixels with the predicate oracle versus running
/// a genuine Turing machine for every pixel (Definition 3). Both must construct the same
/// shape; the TM path is the faithful (and slower, in machine steps) route.
#[must_use]
pub fn e10b(quick: bool) -> Experiment {
    let n: usize = if quick { 16 } else { 36 };
    let mut table = Table::new(&[
        "language",
        "decider",
        "n",
        "d",
        "terminated",
        "shape cells",
        "scheduler steps",
        "TM steps / pixel (mean)",
    ]);
    // Oracle (predicate) vs TM-backed deciders for the same languages.
    type ComputerPair = (Arc<dyn ShapeComputer>, Arc<dyn ShapeComputer>, &'static str);
    let pairs: Vec<ComputerPair> = vec![
        (
            Arc::from(library::full_square_computer()),
            Arc::new(library::full_square_tm_computer()),
            "full-square",
        ),
        (
            Arc::from(library::left_column_computer()),
            Arc::new(library::bottom_row_tm_computer()),
            "single row/column",
        ),
    ];
    for (oracle, tm, family) in pairs {
        for (kind, computer) in [("oracle", oracle), ("TM", tm.clone())] {
            let protocol = UniversalConstructor::shape(n as u64, computer.clone());
            let d = protocol.dimension();
            let report = construct(protocol, n, 0x10B);
            let tm_steps = if kind == "TM" {
                let runs: Vec<u64> = (0..d * d)
                    .map(|i| library::bottom_row_tm_computer().run_pixel(i, d).steps)
                    .collect();
                format!("{:.1}", runs.iter().sum::<u64>() as f64 / runs.len() as f64)
            } else {
                "0.0".to_string()
            };
            table.row(&[
                family.to_string(),
                kind.to_string(),
                n.to_string(),
                d.to_string(),
                report.finished.to_string(),
                report.shape.len().to_string(),
                report.steps.to_string(),
                tm_steps,
            ]);
        }
    }
    Experiment {
        id: "E10b",
        artefact: "DESIGN §2 ablation: per-pixel predicate oracle vs genuine TM simulation",
        table: table.render(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_covers_the_whole_library() {
        let e = e9(true);
        for name in ["full-square", "border", "cross", "star"] {
            assert!(e.table.contains(name), "missing language {name}");
        }
    }

    #[test]
    fn e10b_compares_oracle_and_tm() {
        let e = e10b(true);
        assert!(e.table.contains("oracle"));
        assert!(e.table.contains("TM"));
    }
}
