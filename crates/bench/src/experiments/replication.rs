//! E11: shape self-replication (Section 7, Figure 10).

use super::{f1, Experiment, Table};
use nc_geometry::{library, Shape};
use nc_protocols::self_replication::{replicate, ShapeReplication};

/// E11 — Section 7: replicating library shapes. A successful run produces two disjoint
/// congruent copies out of a population of `2·|R_G|` nodes, with waste `2·(|R_G| − |G|)`.
#[must_use]
pub fn e11(quick: bool) -> Experiment {
    let shapes: Vec<(&str, Shape)> = if quick {
        vec![
            ("rectangle 3×2", library::rectangle_shape(3, 2)),
            ("L 3×3", library::l_shape(3, 3)),
            ("line 4", library::line_shape(4)),
        ]
    } else {
        vec![
            ("rectangle 3×2", library::rectangle_shape(3, 2)),
            ("square 3×3", library::square_shape(3)),
            ("L 3×3", library::l_shape(3, 3)),
            ("L 4×3", library::l_shape(4, 3)),
            ("T 5/2", library::t_shape(5, 2)),
            ("plus arm 1", library::plus_shape(1)),
            ("U 3×3", library::u_shape(3, 3)),
            ("staircase 3", library::staircase_shape(3)),
            ("line 5", library::line_shape(5)),
        ]
    };
    let mut table = Table::new(&[
        "shape",
        "|G|",
        "|R_G|",
        "population 2·|R_G|",
        "copies",
        "waste",
        "expected waste",
        "steps",
    ]);
    for (idx, (name, shape)) in shapes.iter().enumerate() {
        let protocol = ShapeReplication::new(shape);
        let n = protocol.required_population();
        let report = replicate(shape, n, 0xE11 + idx as u64);
        table.row(&[
            (*name).to_string(),
            shape.len().to_string(),
            protocol.rectangle_size().to_string(),
            n.to_string(),
            report.copies.to_string(),
            report.waste.to_string(),
            (2 * (protocol.rectangle_size() - shape.len())).to_string(),
            f1(report.steps as f64),
        ]);
    }
    Experiment {
        id: "E11",
        artefact: "Section 7 & Figure 10: self-replication of arbitrary connected shapes",
        table: table.render(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_reports_expected_waste_column() {
        let e = e11(true);
        assert!(e.table.contains("expected waste"));
        assert!(e.table.contains("rectangle 3×2"));
    }
}
