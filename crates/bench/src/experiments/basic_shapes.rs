//! E6: the basic stabilizing constructors of Section 4 (Global Line, Square, Square2).

use super::{f1, Experiment, Table};
use nc_core::{Protocol, Simulation, SimulationConfig};
use nc_protocols::line::GlobalLine;
use nc_protocols::square::Square;
use nc_protocols::square2::Square2;

fn measure<P: Protocol + Clone>(protocol: P, n: usize, trials: u32, seed: u64) -> (f64, f64, f64) {
    let mut steps = 0.0;
    let mut effective = 0.0;
    let mut stabilized = 0u32;
    for t in 0..trials {
        let mut sim = Simulation::new(
            protocol.clone(),
            SimulationConfig::new(n)
                .with_seed(seed + u64::from(t))
                .with_max_steps(200_000_000),
        );
        let report = sim.run_until_stable();
        steps += report.steps as f64;
        effective += report.effective_steps as f64;
        stabilized += u32::from(report.stabilized);
    }
    (
        steps / f64::from(trials),
        effective / f64::from(trials),
        f64::from(stabilized) / f64::from(trials),
    )
}

/// E6 — Section 4 / Figure 2: interactions to stabilization of the basic constructors.
///
/// The Global Line and the two square protocols are stabilizing, not terminating; the
/// measurable quantity is how many scheduler steps (and how many effective interactions)
/// they need before the output shape stops changing, and how Protocol 2's turning marks
/// change the effective-interaction count relative to Protocol 1.
#[must_use]
pub fn e6(quick: bool) -> Experiment {
    let (sizes, trials): (&[usize], u32) = if quick {
        (&[9, 16, 25], 3)
    } else {
        (&[9, 16, 25, 36, 64], 10)
    };
    let mut table = Table::new(&[
        "protocol",
        "n",
        "trials",
        "stabilized",
        "mean steps",
        "mean effective",
    ]);
    for &n in sizes {
        let (s, e, r) = measure(GlobalLine::new(), n, trials, 0xE6);
        table.row(&[
            "global-line".into(),
            n.to_string(),
            trials.to_string(),
            format!("{r:.2}"),
            f1(s),
            f1(e),
        ]);
        let (s, e, r) = measure(Square::new(), n, trials, 0x1E6);
        table.row(&[
            "square (P1)".into(),
            n.to_string(),
            trials.to_string(),
            format!("{r:.2}"),
            f1(s),
            f1(e),
        ]);
        let (s, e, r) = measure(Square2::new(), n, trials, 0x2E6);
        table.row(&[
            "square2 (P2)".into(),
            n.to_string(),
            trials.to_string(),
            format!("{r:.2}"),
            f1(s),
            f1(e),
        ]);
    }
    Experiment {
        id: "E6",
        artefact: "Section 4 & Figure 2: Global Line / Square / Square2 stabilization cost",
        table: table.render(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_reports_all_three_protocols() {
        let e = e6(true);
        assert!(e.table.contains("global-line"));
        assert!(e.table.contains("square (P1)"));
        assert!(e.table.contains("square2 (P2)"));
    }
}
