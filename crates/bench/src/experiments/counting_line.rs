//! E7: Counting-on-a-Line (Section 6.1, Lemma 1).

use super::{f1, f3, Experiment, Table};
use nc_core::{Simulation, SimulationConfig};
use nc_protocols::counting_line::{final_count, CountingOnALine};
use nc_tm::arith::bit_width;

/// E7 — Lemma 1: the geometric counting protocol terminates with the count stored in
/// binary on an active line of length `⌊lg r0⌋ + 1`.
#[must_use]
pub fn e7(quick: bool) -> Experiment {
    let (sizes, trials): (&[usize], u32) = if quick {
        (&[16, 32], 3)
    } else {
        (&[16, 32, 64, 128], 8)
    };
    let b = 4;
    let mut table = Table::new(&[
        "n",
        "trials",
        "halted",
        "success (2·r0 ≥ n)",
        "mean r0/n",
        "tape length = ⌊lg r0⌋+1",
        "mean steps",
    ]);
    for &n in sizes {
        let mut halted = 0u32;
        let mut success = 0u32;
        let mut tape_ok = 0u32;
        let mut rel = 0.0;
        let mut steps = 0.0;
        for t in 0..trials {
            let mut sim = Simulation::new(
                CountingOnALine::new(b),
                SimulationConfig::new(n)
                    .with_seed(0xE7 + u64::from(t))
                    .with_max_steps(500_000_000),
            );
            let report = sim.run_until_any_halted();
            steps += report.steps as f64;
            if let Some(counters) = final_count(&sim) {
                halted += 1;
                success += u32::from(2 * counters.r0 >= n as u64);
                rel += counters.r0 as f64 / n as f64;
                tape_ok += u32::from(counters.capacity() == bit_width(counters.r0) as u32);
            }
        }
        table.row(&[
            n.to_string(),
            trials.to_string(),
            f3(f64::from(halted) / f64::from(trials)),
            f3(f64::from(success) / f64::from(trials)),
            f3(rel / f64::from(trials.max(1))),
            f3(f64::from(tape_ok) / f64::from(trials)),
            f1(steps / f64::from(trials)),
        ]);
    }
    Experiment {
        id: "E7",
        artefact: "Lemma 1: Counting-on-a-Line — termination, log-length tape, stored count",
        table: table.render(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_renders() {
        let e = e7(true);
        assert!(e.table.contains("tape length"));
    }
}
