//! One module per experiment family; every experiment returns a plain-text table.
//!
//! Each experiment accepts a `quick` flag: `true` uses reduced population sizes and trial
//! counts (seconds of runtime, used by `cargo test` and default CLI invocations), `false`
//! the full parameters recorded in `EXPERIMENTS.md`.

pub mod basic_shapes;
pub mod conjecture;
pub mod counting;
pub mod counting_line;
pub mod pattern;
pub mod replication;
pub mod square_knowing_n;
pub mod uid;
pub mod universal;
pub mod walk;

/// A rendered experiment: identifier, paper artefact, and the measured table.
#[derive(Clone, Debug)]
pub struct Experiment {
    /// Experiment identifier (`"E1"`, `"E2"`, …).
    pub id: &'static str,
    /// The paper artefact the experiment reproduces.
    pub artefact: &'static str,
    /// The rendered table.
    pub table: String,
}

impl std::fmt::Display for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.artefact)?;
        write!(f, "{}", self.table)
    }
}

/// A minimal fixed-width table builder used by all experiments.
#[derive(Clone, Debug, Default)]
pub struct Table {
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(columns: &[&str]) -> Table {
        Table {
            columns: columns.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have as many entries as there are columns).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{cell:>w$}  ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.columns, &widths));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with three decimals.
#[must_use]
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with one decimal.
#[must_use]
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// All experiments in order, with the `quick` flag applied to each.
#[must_use]
pub fn all(quick: bool) -> Vec<Experiment> {
    vec![
        counting::e1(quick),
        counting::e2(quick),
        walk::e3(quick),
        uid::e4(quick),
        uid::e5(quick),
        basic_shapes::e6(quick),
        counting_line::e7(quick),
        square_knowing_n::e8(quick),
        universal::e9(quick),
        universal::e10b(quick),
        replication::e11(quick),
        conjecture::e12(quick),
        pattern::e13(quick),
    ]
}

/// Looks up an experiment by its identifier (case-insensitive).
#[must_use]
pub fn by_id(id: &str, quick: bool) -> Option<Experiment> {
    let id = id.to_ascii_lowercase();
    let run: Option<fn(bool) -> Experiment> = match id.as_str() {
        "e1" => Some(counting::e1),
        "e2" => Some(counting::e2),
        "e3" => Some(walk::e3),
        "e4" => Some(uid::e4),
        "e5" => Some(uid::e5),
        "e6" => Some(basic_shapes::e6),
        "e7" => Some(counting_line::e7),
        "e8" => Some(square_knowing_n::e8),
        "e9" => Some(universal::e9),
        "e10b" => Some(universal::e10b),
        "e11" => Some(replication::e11),
        "e12" => Some(conjecture::e12),
        "e13" => Some(pattern::e13),
        _ => None,
    };
    run.map(|f| f(quick))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(&["n", "rate"]);
        t.row(&["10".into(), "0.5".into()]);
        t.row(&["1000".into(), "0.999".into()]);
        let rendered = t.render();
        assert!(rendered.contains("   n"));
        assert!(rendered.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1".into()]);
    }

    #[test]
    fn by_id_is_case_insensitive_and_total() {
        assert!(by_id("nonexistent", true).is_none());
        // Do not actually run an experiment here (that is covered by the per-module
        // tests); just check that the dispatch table knows all identifiers.
        for id in [
            "E1", "e2", "E3", "e4", "e5", "e6", "e7", "e8", "e9", "e10b", "e11", "e12", "e13",
        ] {
            assert!(
                matches!(
                    id.to_ascii_lowercase().as_str(),
                    "e1" | "e2"
                        | "e3"
                        | "e4"
                        | "e5"
                        | "e6"
                        | "e7"
                        | "e8"
                        | "e9"
                        | "e10b"
                        | "e11"
                        | "e12"
                        | "e13"
                ),
                "{id} missing from dispatch"
            );
        }
    }
}
