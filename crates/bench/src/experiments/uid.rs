//! E4 and E5: counting with unique identifiers (Theorems 2 and 3).

use super::{f1, f3, Experiment, Table};
use nc_popproto::uid_counting::{
    run_improved_uid, run_simple_uid, ImprovedUidCounting, SimpleUidCounting,
};

/// E4 — Theorem 2: the simple UID protocol terminates with an exact count w.h.p. but pays
/// an expected termination time of `Θ(n^b)` interactions.
#[must_use]
pub fn e4(quick: bool) -> Experiment {
    let (sizes, trials): (&[usize], u32) = if quick {
        (&[6, 8, 10], 10)
    } else {
        (&[6, 8, 10, 12, 16], 40)
    };
    let b = 2;
    let mut table = Table::new(&[
        "n",
        "b",
        "trials",
        "terminated",
        "exact count",
        "mean steps",
        "n^b",
    ]);
    for &n in sizes {
        let mut terminated = 0u32;
        let mut exact = 0u32;
        let mut steps = 0.0;
        for t in 0..trials {
            let outcome = run_simple_uid(
                &SimpleUidCounting::new(b),
                n,
                0xE4 + u64::from(t),
                200_000_000,
            );
            terminated += u32::from(outcome.terminated);
            exact += u32::from(outcome.exact);
            steps += outcome.steps as f64;
        }
        table.row(&[
            n.to_string(),
            b.to_string(),
            trials.to_string(),
            f3(f64::from(terminated) / f64::from(trials)),
            f3(f64::from(exact) / f64::from(trials)),
            f1(steps / f64::from(trials)),
            (n.pow(b as u32)).to_string(),
        ]);
    }
    Experiment {
        id: "E4",
        artefact: "Theorem 2: simple UID counting — exact w.h.p., Θ(n^b) termination time",
        table: table.render(),
    }
}

/// E5 — Theorem 3 / Protocol 3: the improved UID protocol; only the maximum id halts and
/// its output `2·count1` is an upper bound on `n` w.h.p., within `O(n² log n)` steps.
#[must_use]
pub fn e5(quick: bool) -> Experiment {
    let (sizes, trials): (&[usize], u32) = if quick {
        (&[20, 50, 100], 20)
    } else {
        (&[20, 50, 100, 200, 400], 100)
    };
    let b = 4;
    let mut table = Table::new(&[
        "n",
        "b",
        "trials",
        "halted",
        "halter is max id",
        "2·count1 ≥ n",
        "mean steps",
    ]);
    for &n in sizes {
        let mut halted = 0u32;
        let mut is_max = 0u32;
        let mut success = 0u32;
        let mut steps = 0.0;
        let budget = 256 * (n as u64) * (n as u64);
        for t in 0..trials {
            let outcome =
                run_improved_uid(&ImprovedUidCounting::new(b), n, 0xE5 + u64::from(t), budget);
            halted += u32::from(outcome.halted);
            is_max += u32::from(outcome.halter_is_max);
            success += u32::from(outcome.success);
            steps += outcome.steps as f64;
        }
        table.row(&[
            n.to_string(),
            b.to_string(),
            trials.to_string(),
            f3(f64::from(halted) / f64::from(trials)),
            f3(f64::from(is_max) / f64::from(trials)),
            f3(f64::from(success) / f64::from(trials)),
            f1(steps / f64::from(trials)),
        ]);
    }
    Experiment {
        id: "E5",
        artefact:
            "Theorem 3 / Protocol 3: improved UID counting — max id halts with an upper bound",
        table: table.render(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_and_e5_render() {
        assert!(e4(true).table.contains("n^b"));
        assert!(e5(true).table.contains("halter is max id"));
    }
}
