//! E3: the random-walk failure analysis behind Theorem 1 (Figure 4).

use super::{Experiment, Table};
use nc_popproto::walk::{
    per_visit_failure_probability, simulate_counting_walk, simulate_ehrenfest_walk,
    theorem1_failure_bound,
};

/// E3 — Theorem 1 proof / Figure 4: empirical failure probability of the counting walk
/// versus the head start `b`, compared with the gambler's-ruin per-visit closed form and
/// the `1/n^(b−2)` bound the theorem uses.
#[must_use]
pub fn e3(quick: bool) -> Experiment {
    let (sizes, trials): (&[u64], u32) = if quick {
        (&[100, 400], 4_000)
    } else {
        (&[100, 400, 1600], 100_000)
    };
    let head_starts: &[u64] = &[3, 4, 5, 6];
    let mut table = Table::new(&[
        "n",
        "b",
        "empirical fail (exact walk)",
        "empirical fail (Ehrenfest)",
        "per-visit ruin bound",
        "Theorem 1 bound 1/n^(b-2)",
    ]);
    for &n in sizes {
        for &b in head_starts {
            let exact = simulate_counting_walk(n, b, trials, 0xE3);
            let ehrenfest = simulate_ehrenfest_walk(n, b, trials, 0xE3 + 1);
            table.row(&[
                n.to_string(),
                b.to_string(),
                format!("{:.6}", exact.failure_rate),
                format!("{:.6}", ehrenfest.failure_rate),
                format!("{:.2e}", per_visit_failure_probability(n, b)),
                format!("{:.2e}", theorem1_failure_bound(n, b)),
            ]);
        }
    }
    Experiment {
        id: "E3",
        artefact: "Theorem 1 proof & Figure 4: failure probability vs head start b",
        table: table.render(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_failure_decreases_with_b() {
        let exact_b3 = simulate_counting_walk(200, 3, 4_000, 7).failure_rate;
        let exact_b5 = simulate_counting_walk(200, 5, 4_000, 7).failure_rate;
        assert!(
            exact_b5 <= exact_b3,
            "larger head start must not fail more often"
        );
        let e = e3(true);
        assert!(e.table.contains("Theorem 1 bound"));
    }
}
