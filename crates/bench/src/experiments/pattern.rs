//! E13: pattern construction (Remark 4).

use super::{Experiment, Table};
use nc_protocols::pattern::{
    checkerboard_pattern, paint, quadrants_pattern, rings_pattern, stripes_pattern,
};

/// E13 — Remark 4: instead of releasing off pixels, the constructor paints the square
/// with a finite palette; the painted square must match the pattern computer exactly.
#[must_use]
pub fn e13(quick: bool) -> Experiment {
    let n: usize = if quick { 16 } else { 49 };
    let mut table = Table::new(&[
        "pattern",
        "palette",
        "n",
        "d",
        "terminated",
        "painted pixels",
        "mismatches",
        "steps",
    ]);
    for (idx, pattern) in [
        checkerboard_pattern(),
        stripes_pattern(3),
        rings_pattern(4),
        quadrants_pattern(),
    ]
    .into_iter()
    .enumerate()
    {
        let name = pattern.name().to_string();
        let palette = pattern.palette_size();
        let report = paint(pattern, n as u64, n, 0xE13 + idx as u64);
        table.row(&[
            name,
            palette.to_string(),
            n.to_string(),
            report.d.to_string(),
            report.terminated.to_string(),
            report.painted.painted_count().to_string(),
            report.mismatches.to_string(),
            report.steps.to_string(),
        ]);
    }
    Experiment {
        id: "E13",
        artefact: "Remark 4: multi-color pattern painting on the √n×√n square",
        table: table.render(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e13_paints_all_stock_patterns() {
        let e = e13(true);
        assert!(e.table.contains("checkerboard"));
        assert!(e.table.contains("quadrants"));
    }
}
