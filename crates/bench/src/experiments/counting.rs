//! E1 and E2: the Counting-Upper-Bound protocol (Theorem 1, Remarks 1–2).

use super::{f1, f3, Experiment, Table};
use nc_popproto::counting::{aggregate_counting, CountingUpperBound};

/// E1 — Remark 2 / Theorem 1: success rate and relative estimate of the counting
/// protocol over repeated trials.
///
/// The paper reports that the protocol always terminates, w.h.p. counts at least `n/2`,
/// and that in simulations up to 1000 nodes the estimate is usually around `0.9·n`.
#[must_use]
pub fn e1(quick: bool) -> Experiment {
    let (sizes, trials): (&[usize], u32) = if quick {
        (&[50, 100, 200], 20)
    } else {
        (&[50, 100, 200, 500, 1000], 200)
    };
    let head_starts: &[u64] = if quick { &[3, 4] } else { &[3, 4, 5] };
    let mut table = Table::new(&[
        "n",
        "b",
        "trials",
        "halt_rate",
        "success_rate",
        "mean r0/n",
        "mean steps",
    ]);
    for &n in sizes {
        let trials = if n >= 1000 { trials.min(25) } else { trials };
        for &b in head_starts {
            let agg = aggregate_counting(&CountingUpperBound::new(b), n, trials, 0xE1 + b);
            table.row(&[
                n.to_string(),
                b.to_string(),
                trials.to_string(),
                f3(agg.halt_rate),
                f3(agg.success_rate),
                f3(agg.mean_relative_estimate),
                f1(agg.mean_steps),
            ]);
        }
    }
    Experiment {
        id: "E1",
        artefact: "Theorem 1 & Remark 2: terminating counting, success w.h.p., estimate ≈ 0.9·n",
        table: table.render(),
    }
}

/// E2 — Remark 1: interactions to termination versus `n`, compared against the
/// `c·n²·ln n` shape the paper predicts.
#[must_use]
pub fn e2(quick: bool) -> Experiment {
    let (sizes, trials): (&[usize], u32) = if quick {
        (&[32, 64, 128], 10)
    } else {
        (&[32, 64, 128, 256, 512], 40)
    };
    let b = 4;
    let mut table = Table::new(&["n", "trials", "mean steps", "n²·ln n", "ratio"]);
    for &n in sizes {
        let agg = aggregate_counting(&CountingUpperBound::new(b), n, trials, 0xE2);
        let model = (n * n) as f64 * (n as f64).ln();
        table.row(&[
            n.to_string(),
            trials.to_string(),
            f1(agg.mean_steps),
            f1(model),
            f3(agg.mean_steps / model),
        ]);
    }
    Experiment {
        id: "E2",
        artefact: "Remark 1: expected running time O(n² log n) interactions",
        table: table.render(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_reports_every_combination() {
        let e = e1(true);
        assert_eq!(e.id, "E1");
        // 3 sizes × 2 head starts data rows + header + separator.
        assert_eq!(e.table.lines().count(), 2 + 6);
    }

    #[test]
    fn e2_ratio_is_moderate() {
        let e = e2(true);
        assert!(e.table.contains("n²·ln n"));
    }
}
