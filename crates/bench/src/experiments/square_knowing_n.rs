//! E8: the terminating Square-Knowing-n constructor (Section 6.2, Lemma 2).

use super::{f1, f3, Experiment, Table};
use nc_core::{NodeId, Simulation, SimulationConfig};
use nc_geometry::Dir;
use nc_protocols::replication_line::{count_free_lines, LineReplication};
use nc_protocols::universal::{construct, UniversalConstructor};

/// E8 — Lemma 2 / Figures 5–6: knowing `n`, the constructor terminates having built the
/// `√n × √n` square; the companion line-replication machinery (Protocol 5) mass-produces
/// rows of the right length.
#[must_use]
pub fn e8(quick: bool) -> Experiment {
    let (sizes, trials): (&[usize], u32) = if quick {
        (&[16, 25], 3)
    } else {
        (&[16, 25, 36, 64, 100], 8)
    };
    let mut table = Table::new(&[
        "n",
        "d",
        "trials",
        "terminated",
        "is d×d square",
        "waste",
        "mean steps",
    ]);
    for &n in sizes {
        let mut finished = 0u32;
        let mut correct = 0u32;
        let mut waste = 0usize;
        let mut steps = 0.0;
        let mut dim = 0u64;
        for t in 0..trials {
            let protocol = UniversalConstructor::square_only(n as u64);
            dim = protocol.dimension();
            let report = construct(protocol, n, 0xE8 + u64::from(t));
            finished += u32::from(report.finished);
            correct += u32::from(report.shape.is_full_square(report.d as u32));
            waste += report.waste;
            steps += report.steps as f64;
        }
        table.row(&[
            n.to_string(),
            dim.to_string(),
            trials.to_string(),
            f3(f64::from(finished) / f64::from(trials)),
            f3(f64::from(correct) / f64::from(trials)),
            f1(waste as f64 / f64::from(trials)),
            f1(steps / f64::from(trials)),
        ]);
    }
    // Companion measurement: how many full-length replicas Protocol 5 produces from one
    // seed line within a fixed step budget (the replication machinery of Figures 5–6).
    let mut rep = Table::new(&["seed length", "n", "steps", "free full-length replicas"]);
    let (len, n, budget) = if quick {
        (4usize, 16usize, 200_000u64)
    } else {
        (6, 36, 2_000_000)
    };
    let mut sim = Simulation::new(
        LineReplication::new(len),
        SimulationConfig::new(n).with_seed(0x8E8),
    );
    for k in 1..len {
        sim.world_mut()
            .setup_bond(
                NodeId::new((k - 1) as u32),
                Dir::Right,
                NodeId::new(k as u32),
                Dir::Left,
            )
            .expect("seed line placement");
    }
    sim.run_steps(budget);
    rep.row(&[
        len.to_string(),
        n.to_string(),
        budget.to_string(),
        count_free_lines(&sim, len).to_string(),
    ]);
    Experiment {
        id: "E8",
        artefact: "Lemma 2 & Figures 5–6: terminating √n×√n square; Protocol 5 line replication",
        table: format!("{}\n{}", table.render(), rep.render()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_renders_both_tables() {
        let e = e8(true);
        assert!(e.table.contains("is d×d square"));
        assert!(e.table.contains("free full-length replicas"));
    }
}
