//! The shared row format of scheduler-sweep artifacts (`BENCH_scheduler.json`).
//!
//! One [`SweepRow`] describes one benchmarked execution: protocol, population size,
//! sampling-mode label, shard count, seed, wall-clock, step accounting, speculation
//! counters and the end-of-run snapshot/resume timings. The `scheduler_sweep` binary
//! emits these rows as the perf baseline, and the `nc-service` results/stats
//! component serves the same shape over HTTP for completed jobs — one schema, two
//! producers, so downstream tooling reads both with the same parser.
//!
//! Serialization is a hand-rolled JSON emitter (the build environment is offline, so
//! no serde), field order fixed and stable across producers.

use nc_core::{Phase, PhaseProfile};

/// Optional per-phase profiling columns of one row, attached when the producer
/// ran with telemetry enabled (`scheduler_sweep --profile`). Absent by default,
/// so plain artifacts keep the original schema byte for byte.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepProfile {
    /// Milliseconds inside scheduler sampling (`Phase::Sample`).
    pub sample_ms: f64,
    /// Milliseconds resolving speculated predictions (`Phase::Resolve`).
    pub resolve_ms: f64,
    /// Milliseconds applying interactions (`Phase::Apply`).
    pub apply_ms: f64,
    /// Milliseconds flushing the pair index (`Phase::Flush`).
    pub flush_ms: f64,
    /// Milliseconds rolling back delta epochs (`Phase::Rollback`).
    pub rollback_ms: f64,
    /// Lifetime undo records appended to the delta log — the rollback-churn
    /// observable (speculation that re-logs the same slots is invisible in the
    /// committed trajectory; this counter is where it shows).
    pub delta_records: u64,
}

impl SweepProfile {
    /// Builds the columns from a run's phase profile and delta-log counter.
    #[must_use]
    pub fn from_run(phases: &PhaseProfile, delta_records: u64) -> SweepProfile {
        SweepProfile {
            sample_ms: phases.get(Phase::Sample).millis(),
            resolve_ms: phases.get(Phase::Resolve).millis(),
            apply_ms: phases.get(Phase::Apply).millis(),
            flush_ms: phases.get(Phase::Flush).millis(),
            rollback_ms: phases.get(Phase::Rollback).millis(),
            delta_records,
        }
    }
}

/// One benchmarked or served execution row of a `BENCH_scheduler.json`-style
/// document.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepRow {
    /// Protocol name (`global-line`, `square`, `counting-on-a-line`, …).
    pub protocol: String,
    /// Population size.
    pub n: usize,
    /// Sampling-mode label (`legacy`, `indexed`, `batched`, `sharded4`,
    /// `speculative2`, an adversary name, …).
    pub mode: String,
    /// Shard count of the run's world layout.
    pub shards: usize,
    /// Scheduler seed.
    pub seed: u64,
    /// Wall-clock seconds of the run.
    pub seconds: f64,
    /// Scheduler steps (including batched/sharded bulk credits).
    pub steps: u64,
    /// Effective steps.
    pub effective_steps: u64,
    /// Bulk-credited ineffective selections.
    pub skipped_steps: u64,
    /// Steps per wall-clock second.
    pub steps_per_sec: f64,
    /// Whether the run reached its protocol's guaranteed outcome.
    pub completed: bool,
    /// Optimistically executed interactions (speculative mode only).
    pub speculated: u64,
    /// Speculated interactions confirmed by the canonical draw.
    pub spec_committed: u64,
    /// Speculated interactions rolled back.
    pub spec_rolled_back: u64,
    /// `spec_rolled_back / speculated` (0 when nothing was speculated).
    pub spec_rollback_rate: f64,
    /// Milliseconds to take one end-of-run checkpoint.
    pub snapshot_ms: f64,
    /// Milliseconds to resume that checkpoint.
    pub resume_ms: f64,
    /// Per-phase profiling columns; `None` unless the producer profiled.
    pub profile: Option<SweepProfile>,
}

impl SweepRow {
    /// The row as one JSON object (fixed field order, four-space indent to sit
    /// inside the sweep document's `rows` array).
    #[must_use]
    pub fn to_json(&self) -> String {
        let profile = self.profile.as_ref().map_or_else(String::new, |p| {
            format!(
                ", \"sample_ms\": {:.4}, \"resolve_ms\": {:.4}, \"apply_ms\": {:.4}, \"flush_ms\": {:.4}, \"rollback_ms\": {:.4}, \"delta_records\": {}",
                p.sample_ms, p.resolve_ms, p.apply_ms, p.flush_ms, p.rollback_ms, p.delta_records
            )
        });
        format!(
            "    {{\"protocol\": \"{}\", \"n\": {}, \"mode\": \"{}\", \"shards\": {}, \"seed\": {}, \"seconds\": {:.6}, \"steps\": {}, \"effective_steps\": {}, \"skipped_steps\": {}, \"steps_per_sec\": {:.1}, \"completed\": {}, \"speculated\": {}, \"spec_committed\": {}, \"spec_rolled_back\": {}, \"spec_rollback_rate\": {:.4}, \"snapshot_ms\": {:.4}, \"resume_ms\": {:.4}{}}}",
            self.protocol,
            self.n,
            self.mode,
            self.shards,
            self.seed,
            self.seconds,
            self.steps,
            self.effective_steps,
            self.skipped_steps,
            self.steps_per_sec,
            self.completed,
            self.speculated,
            self.spec_committed,
            self.spec_rolled_back,
            self.spec_rollback_rate,
            self.snapshot_ms,
            self.resume_ms,
            profile
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SweepRow {
        SweepRow {
            protocol: "square".to_string(),
            n: 256,
            mode: "sharded4".to_string(),
            shards: 4,
            seed: 1,
            seconds: 0.25,
            steps: 1000,
            effective_steps: 400,
            skipped_steps: 600,
            steps_per_sec: 4000.0,
            completed: true,
            speculated: 0,
            spec_committed: 0,
            spec_rolled_back: 0,
            spec_rollback_rate: 0.0,
            snapshot_ms: 0.5,
            resume_ms: 0.75,
            profile: None,
        }
    }

    #[test]
    fn json_contains_every_field_in_order() {
        let json = sample().to_json();
        let keys = [
            "protocol",
            "n",
            "mode",
            "shards",
            "seed",
            "seconds",
            "steps",
            "effective_steps",
            "skipped_steps",
            "steps_per_sec",
            "completed",
            "speculated",
            "spec_committed",
            "spec_rolled_back",
            "spec_rollback_rate",
            "snapshot_ms",
            "resume_ms",
        ];
        let mut last = 0;
        for key in keys {
            let needle = format!("\"{key}\":");
            let at = json[last..]
                .find(&needle)
                .unwrap_or_else(|| panic!("{key} missing or out of order in {json}"));
            last += at;
        }
        assert!(json.contains("\"protocol\": \"square\""));
        assert!(json.contains("\"completed\": true"));
    }

    #[test]
    fn profile_columns_appear_only_when_attached() {
        let plain = sample().to_json();
        assert!(!plain.contains("sample_ms"));
        let mut row = sample();
        row.profile = Some(SweepProfile {
            sample_ms: 1.5,
            resolve_ms: 0.25,
            apply_ms: 2.0,
            flush_ms: 0.5,
            rollback_ms: 0.0,
            delta_records: 123,
        });
        let json = row.to_json();
        for key in [
            "sample_ms",
            "resolve_ms",
            "apply_ms",
            "flush_ms",
            "rollback_ms",
            "delta_records",
        ] {
            assert!(json.contains(&format!("\"{key}\":")), "{key} missing");
        }
        assert!(json.contains("\"delta_records\": 123"));
        assert!(json.ends_with("}"));
    }
}
