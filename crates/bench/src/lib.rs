//! Experiment harness and benchmarks for the reproduction of Michail (2015).
//!
//! The paper is a theory paper without numeric result tables; its "evaluation" consists
//! of theorems, remarks and figures. Every theorem/remark/figure with measurable content
//! is turned into an experiment (E1–E13, see `DESIGN.md` §4 and `EXPERIMENTS.md`), and
//! this crate regenerates each of them:
//!
//! * the [`experiments`] module contains one function per experiment, each returning a
//!   plain-text table;
//! * the `experiments` binary (`cargo run -p nc-bench --release --bin experiments`)
//!   runs any subset of them from the command line;
//! * the `scheduler_sweep` binary regenerates `BENCH_scheduler.json`, the
//!   legacy-vs-indexed scheduler perf baseline (GlobalLine, n = 64 … 1024);
//! * the Criterion benches (`benches/`) time the underlying machinery (simulator
//!   throughput, sampling modes head-to-head, counting, basic shape constructors,
//!   universal construction).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod sweep;
