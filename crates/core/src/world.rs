//! The configuration of the system: node states, bonds, and rigid component embeddings.
//!
//! Since the interaction-index refactor the world also maintains incremental metadata:
//! a per-node halted cache, a monotone configuration [`World::version`], and the dirty
//! frontier of [`crate::index`] that makes [`World::is_stable`] and
//! [`World::find_effective_interaction`] amortised `O(active)` instead of a full
//! `O(n² · ports²)` rescan.
//!
//! # Sharded interior state
//!
//! The population is partitioned into contiguous node-id **shards**
//! ([`crate::shard::ShardMap`]; count from [`crate::SimulationConfig::shards`] /
//! `NC_SHARDS`). Each shard owns its slice of the dirty frontier, its sub-index of the
//! permissible-pair index, and its **pending queue** — the cross-shard routing queue
//! through which merges and splits hand re-derivation work to the shards of the touched
//! nodes (a merge moving nodes of shard A next to cells owned by shard B queues B's
//! neighbours on B's queue, under B's lock only — components migrate between shards
//! without a world-wide lock). All interior mutability is `Mutex`/atomic based, so
//! `World: Sync` holds and read-side queries (`is_stable`, sampling) may run
//! concurrently; large maintenance batches fan out per shard on the vendored `rayon`
//! pool. The sampled *trajectory* is byte-identical across shard counts — see the
//! invariance notes in [`crate::index`].

use crate::delta::{DeltaLog, Epoch, EpochFrame, WorldRecord};
use crate::index::{BaseCounts, GeomView, IndexStats, InteractionIndex, PairIndex};
use crate::lock::relock;
use crate::shard::{trace_lane, ShardMap, PARALLEL_CROSS_MIN};
use crate::stats::{ShardStats, SpeculationStats};
use crate::{Component, CoreError, NodeId, Placement, Protocol};
use nc_geometry::{Coord, Dim, Dir, Rotation, Shape};
use nc_obs::{Phase, Telemetry, TraceEventKind};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Budget for cross-component enumeration work, in node pairs, as a multiple of the
/// population size. One constant shared by the adaptive sampler's enumeration refusal,
/// the batched sampler's multi×multi enumeration, and the stability fast path, so they
/// all agree on when cross-component enumeration is affordable.
pub(crate) const CROSS_BUDGET_PER_NODE: usize = 64;

/// Whether applying the pair `(sa, pa) – (sb, pb)` (in either order, as the simulator
/// does) would change a state or the bond. Shared between
/// [`World::effective_interaction_at`] and the permissible-pair index so both agree on
/// one definition of effectiveness. Halted-participant filtering is the caller's job.
pub(crate) fn transition_effective<P: Protocol>(
    protocol: &P,
    sa: &P::State,
    pa: Dir,
    sb: &P::State,
    pb: Dir,
    bonded: bool,
) -> bool {
    let attempt = protocol
        .transition(sa, pa, sb, pb, bonded)
        .map(|t| (t, false))
        .or_else(|| {
            protocol
                .transition(sb, pb, sa, pa, bonded)
                .map(|t| (t, true))
        });
    attempt.is_some_and(|(t, swapped)| {
        let (new_a, new_b) = if swapped { (&t.b, &t.a) } else { (&t.a, &t.b) };
        t.bond != bonded || new_a != sa || new_b != sb
    })
}

/// Lifecycle of the permissible-pair index: built lazily on first use (so executions
/// that never sample in batched mode pay nothing), abandoned permanently when the
/// protocol's live state diversity overflows the class table. The mode only ever
/// advances (`Disabled → Active → Overflowed`), which is what lets a rollback infer
/// what happened mid-epoch from the (checkpointed, current) mode pair alone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum PairMode {
    Disabled,
    Active,
    Overflowed,
}

struct PairCell<S> {
    mode: PairMode,
    index: PairIndex<S>,
    /// Base counts memoised per configuration version (the index itself is always
    /// current; only the `O(classes²·ports²)` count aggregation is worth caching).
    counts_cache: Option<(u64, BaseCounts)>,
}

/// Exact pair counts of a frozen configuration, as reported by
/// [`World::pair_counts`]: the base classes are maintained incrementally; multi×multi
/// cross-component pairs (if any) must be added by the caller via
/// [`World::enumerate_cross_multi`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct PairSummary {
    /// Permissible pairs excluding multi×multi cross pairs.
    pub(crate) permissible_base: u64,
    /// Effective pairs excluding multi×multi cross pairs.
    pub(crate) effective_base: u64,
    /// Number of components with at least two nodes.
    pub(crate) multi_components: usize,
}

/// Why a pair of node-ports is allowed to interact at the current configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Permissibility {
    /// The two ports are already joined by an active bond.
    Bonded,
    /// The two nodes belong to the same component and the two ports face each other at
    /// unit distance (so activating the bond keeps the component a valid shape).
    SameComponentAdjacent,
    /// The two nodes belong to different components which can be rigidly placed so that
    /// the two ports face each other at unit distance without any two nodes overlapping.
    /// The transform maps the second node's component frame into the first node's frame.
    Merge {
        /// Rotation applied to the second component.
        rotation: Rotation,
        /// Translation applied after the rotation.
        translation: Coord,
    },
}

/// A scheduled interaction: an unordered pair of node-ports plus the geometric reason it
/// is permissible. Produced by [`World::permissibility`] or a scheduler and consumed by
/// [`World::apply`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interaction {
    /// First participant.
    pub a: NodeId,
    /// Port of the first participant.
    pub pa: Dir,
    /// Second participant.
    pub b: NodeId,
    /// Port of the second participant.
    pub pb: Dir,
    /// Why the pair may interact.
    pub permissibility: Permissibility,
}

/// The effect an applied interaction had on the configuration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InteractionOutcome {
    /// Whether the interaction was effective (changed a state or the bond).
    pub effective: bool,
    /// Whether a bond was activated.
    pub bond_activated: bool,
    /// Whether a bond was deactivated.
    pub bond_deactivated: bool,
    /// Whether two components merged.
    pub merged: bool,
    /// Whether a component split in two.
    pub split: bool,
}

/// A configuration `(C_V, C_E)` of the model together with the rigid embedding of every
/// connected component, for a fixed protocol.
///
/// `World<P>` is `Sync`: all interior mutability (the dirty frontier, the sharded
/// permissible-pair index and its pending queues) is `Mutex`/atomic based, so read-side
/// queries may run from several threads concurrently.
pub struct World<P: Protocol> {
    protocol: P,
    dim: Dim,
    states: Vec<P::State>,
    placements: Vec<Placement>,
    comp_of: Vec<usize>,
    components: Vec<Option<Component>>,
    links: Vec<[Option<(NodeId, Dir)>; 6]>,
    bond_count: usize,
    rotations: Vec<Rotation>,
    /// Cached `protocol.is_halted(state)` per node, kept in sync with every state write.
    halted: Vec<bool>,
    /// The partition of node ids into contiguous shards (see [`crate::shard`]).
    shard_map: ShardMap,
    /// The incremental interaction index (per-shard dirty frontier + configuration
    /// version).
    index: InteractionIndex,
    /// The sharded incremental permissible-pair index (exact pair counts for the
    /// batched and sharded samplers). Lazily activated.
    pairs: Mutex<PairCell<P::State>>,
    /// Per-shard pending queues of nodes to re-derive: the cross-shard merge/split
    /// routing queues. A mutation only takes the locks of the shards it actually
    /// touches, never a world-wide one.
    pair_pending: Vec<Mutex<Vec<NodeId>>>,
    /// Mirror of `pairs.mode == Active`, readable without a lock on the mutation hot
    /// path.
    pairs_active: AtomicBool,
    /// Merges/splits whose two participants lived in different shards — the events the
    /// cross-shard queues exist for. Reported through [`World::shard_stats`].
    cross_shard_events: AtomicU64,
    /// `Σ |component|²` over live components, maintained O(1) per merge/split; gives
    /// the cross-component node-pair universe `(n² − Σsz²)/2` without enumeration.
    sum_sq_sizes: u64,
    /// Number of live components, maintained O(1) per merge/split.
    live_components: usize,
    /// Epoch-stamped scratch buffer for the split-detection BFS (avoids an O(n)
    /// allocation per bond deactivation).
    scratch_stamp: Vec<u64>,
    scratch_epoch: u64,
    /// The per-epoch undo log behind [`World::checkpoint`] / [`World::rollback`]
    /// (see [`crate::delta`]). Inert (a cheap branch per mutation) while no
    /// checkpoint is open.
    delta: DeltaLog<P::State>,
    /// The telemetry handle (disabled by default — every hook is an early return).
    /// Muted while a delta epoch is open: speculative scratch applies are invisible
    /// in the committed trajectory and must be invisible in the trace.
    obs: Telemetry,
}

impl<P: Protocol> World<P> {
    /// Creates the initial configuration on `n` nodes: every node free (a singleton
    /// component), in its protocol-defined initial state, with all bonds inactive.
    /// The shard count comes from the `NC_SHARDS` environment default
    /// ([`crate::shard::default_shard_count`]); use [`World::with_shards`] to pick it
    /// explicitly.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(protocol: P, n: usize) -> World<P> {
        World::with_shards(protocol, n, crate::shard::default_shard_count())
    }

    /// Creates the initial configuration on `n` nodes partitioned into `shards`
    /// contiguous id ranges (clamped to `1..=n`). The shard count only shapes the
    /// runtime layout — executions are byte-identical across shard counts.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_shards(protocol: P, n: usize, shards: usize) -> World<P> {
        assert!(n > 0, "the population must contain at least one node");
        let dim = protocol.dim();
        let states: Vec<P::State> = (0..n)
            .map(|i| protocol.initial_state(NodeId::new(i as u32), n))
            .collect();
        let halted = states.iter().map(|s| protocol.is_halted(s)).collect();
        let components = (0..n)
            .map(|i| Some(Component::singleton(NodeId::new(i as u32))))
            .collect();
        let shard_map = ShardMap::new(n, shards);
        World {
            rotations: Rotation::all(dim),
            protocol,
            dim,
            states,
            placements: vec![Placement::origin(); n],
            comp_of: (0..n).collect(),
            components,
            links: vec![[None; 6]; n],
            bond_count: 0,
            halted,
            shard_map,
            index: InteractionIndex::new(shard_map),
            pairs: Mutex::new(PairCell {
                mode: PairMode::Disabled,
                index: PairIndex::new(shard_map),
                counts_cache: None,
            }),
            pair_pending: (0..shard_map.count())
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
            pairs_active: AtomicBool::new(false),
            cross_shard_events: AtomicU64::new(0),
            sum_sq_sizes: n as u64,
            live_components: n,
            scratch_stamp: vec![0; n],
            scratch_epoch: 0,
            delta: DeltaLog::new(),
            obs: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle: subsequent merges/splits, index flushes and
    /// class-table changes emit step-indexed trace events into it, and the flush /
    /// rollback phases are timed. Pass [`Telemetry::disabled`] (the construction
    /// default) to turn all hooks back into early returns. Telemetry never touches
    /// the trajectory and is not persisted in snapshots.
    pub fn set_telemetry(&mut self, obs: Telemetry) {
        relock(&self.pairs).index.set_telemetry(obs.clone());
        self.obs = obs;
    }

    /// The attached telemetry handle (disabled unless [`World::set_telemetry`] was
    /// called).
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.obs
    }

    /// Lifetime number of undo records the delta log has appended (monotone, never
    /// rewound): the observable of rollback churn under speculative execution.
    #[must_use]
    pub fn delta_records(&self) -> u64 {
        self.delta.lifetime_records()
    }

    /// The number of shards the runtime structures are partitioned into.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shard_map.count()
    }

    /// Marks `node` dirty in its shard's frontier queue.
    fn mark_dirty(&self, node: NodeId) {
        self.index.mark_dirty(self.shard_map, node);
    }

    /// Records the pre-write state *and* halted flag of `node` (the two are always
    /// overwritten together). No-op while no checkpoint is open.
    #[inline]
    fn record_state(&mut self, node: usize) {
        if self.delta.recording() {
            let old = self.states[node].clone();
            self.delta.record(move || WorldRecord::State { node, old });
            let old = self.halted[node];
            self.delta.record(move || WorldRecord::Halted { node, old });
        }
    }

    /// Records the pre-write value of `links[node][port]`.
    #[inline]
    fn record_link(&mut self, node: usize, port: usize) {
        if self.delta.recording() {
            let old = self.links[node][port];
            self.delta
                .record(move || WorldRecord::Link { node, port, old });
        }
    }

    fn lock_pairs(&self) -> MutexGuard<'_, PairCell<P::State>> {
        relock(&self.pairs)
    }

    /// A monotone configuration version: bumped on every observable change (state write,
    /// bond flip, merge, split). Samplers use it to cache derived structures — e.g. the
    /// enumerated permissible set — and invalidate them precisely.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.index.version()
    }

    /// Work counters of the interaction index (scans performed, candidate reuse, …).
    #[must_use]
    pub fn index_stats(&self) -> IndexStats {
        self.index.stats()
    }

    /// The population size `n`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the population is empty (never true: constructors require `n ≥ 1`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The dimensionality of the model.
    #[must_use]
    pub fn dim(&self) -> Dim {
        self.dim
    }

    /// The protocol driving this world.
    #[must_use]
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// The current state of `node`.
    ///
    /// # Panics
    /// Panics if `node` is outside the population.
    #[must_use]
    pub fn state(&self, node: NodeId) -> &P::State {
        &self.states[node.index()]
    }

    /// Overrides the state of `node`. Intended for test setups and for composing phased
    /// protocols that hand over a configuration.
    ///
    /// # Panics
    /// Panics if `node` is outside the population.
    pub fn set_state(&mut self, node: NodeId, state: P::State) {
        self.record_state(node.index());
        self.states[node.index()] = state;
        self.halted[node.index()] = self.protocol.is_halted(&self.states[node.index()]);
        self.index.bump_version();
        self.mark_dirty(node);
        self.pair_touch(node);
        self.flush_pairs();
    }

    /// Iterates over all node states in node order.
    pub fn states(&self) -> impl Iterator<Item = &P::State> {
        self.states.iter()
    }

    /// All node states as a slice, in node order (used by the population-protocol
    /// wrapper, whose predicates are written against the state vector).
    #[must_use]
    pub fn state_slice(&self) -> &[P::State] {
        &self.states
    }

    /// All node identifiers.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.len() as u32).map(NodeId::new)
    }

    /// Number of active bonds in the configuration.
    #[must_use]
    pub fn bond_count(&self) -> usize {
        self.bond_count
    }

    /// The peer currently bonded to `node`'s port `port`, if any.
    #[must_use]
    pub fn bonded_peer(&self, node: NodeId, port: Dir) -> Option<(NodeId, Dir)> {
        self.links[node.index()][port.index()]
    }

    /// The placement of `node` within its component's frame.
    #[must_use]
    pub fn placement(&self, node: NodeId) -> Placement {
        self.placements[node.index()]
    }

    /// The identifier of the component containing `node`.
    #[must_use]
    pub fn component_id(&self, node: NodeId) -> usize {
        self.comp_of[node.index()]
    }

    /// The component containing `node`.
    #[must_use]
    pub fn component(&self, node: NodeId) -> &Component {
        self.components[self.comp_of[node.index()]]
            .as_ref()
            .expect("component slot of a live node must be occupied")
    }

    /// Number of connected components (free nodes count as singleton components).
    /// O(1): the count is maintained across merges and splits.
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.live_components
    }

    /// The number of unordered node pairs spanning two different components — the
    /// candidate universe of cross-component interactions. O(1): derived from the
    /// maintained `Σ |component|²`.
    #[must_use]
    pub fn cross_component_universe(&self) -> u64 {
        let n = self.len() as u64;
        (n * n - self.sum_sq_sizes) / 2
    }

    /// Decides whether the unordered pair of node-ports may interact in the current
    /// configuration and, if so, why.
    ///
    /// Returns `None` when the pair is not permissible (same node, port outside the
    /// dimension, non-aligned ports of one component, or unavoidable overlap between the
    /// two components).
    #[must_use]
    pub fn permissibility(&self, a: NodeId, pa: Dir, b: NodeId, pb: Dir) -> Option<Permissibility> {
        if a == b || !self.dim.contains(pa) || !self.dim.contains(pb) {
            return None;
        }
        if a.index() >= self.len() || b.index() >= self.len() {
            return None;
        }
        if self.links[a.index()][pa.index()] == Some((b, pb)) {
            return Some(Permissibility::Bonded);
        }
        let pl_a = self.placements[a.index()];
        let pl_b = self.placements[b.index()];
        let ga = pl_a.rot.apply_dir(pa);
        if self.comp_of[a.index()] == self.comp_of[b.index()] {
            // Same component: the ports must already face each other at unit distance.
            let aligned =
                pl_b.pos == pl_a.pos + ga.unit() && pl_b.rot.apply_dir(pb) == ga.opposite();
            return aligned.then_some(Permissibility::SameComponentAdjacent);
        }
        // Different components: try to place b's component so the ports face each other.
        let comp_a = self.component(a);
        let comp_b = self.component(b);
        let target = pl_a.pos + ga.unit();
        if comp_a.is_occupied(target) {
            return None;
        }
        let from = pl_b.rot.apply_dir(pb);
        let to = ga.opposite();
        for &rotation in &self.rotations {
            if rotation.apply_dir(from) != to {
                continue;
            }
            let translation = target - rotation.apply_coord(pl_b.pos);
            // Overlap is symmetric, so scan the cells of the *smaller* component against
            // the occupancy map of the larger one: a cell `c` of `a`'s component collides
            // iff `b`'s component occupies `R⁻¹(c − t)`. This turns the hot
            // free-node-against-big-component checks into O(1).
            let collision = if comp_b.len() <= comp_a.len() {
                comp_b
                    .iter()
                    .any(|(_, pos)| comp_a.is_occupied(rotation.apply_coord(pos) + translation))
            } else {
                let inverse = rotation.inverse();
                comp_a
                    .iter()
                    .any(|(_, pos)| comp_b.is_occupied(inverse.apply_coord(pos - translation)))
            };
            if !collision {
                return Some(Permissibility::Merge {
                    rotation,
                    translation,
                });
            }
        }
        None
    }

    /// Convenience wrapper building an [`Interaction`] when the pair is permissible.
    #[must_use]
    pub fn interaction(&self, a: NodeId, pa: Dir, b: NodeId, pb: Dir) -> Option<Interaction> {
        self.permissibility(a, pa, b, pb)
            .map(|permissibility| Interaction {
                a,
                pa,
                b,
                pb,
                permissibility,
            })
    }

    /// Applies a (currently permissible) interaction: consults the protocol's transition
    /// function — in both orders, since pairs are unordered — and updates states, bonds
    /// and component embeddings accordingly.
    ///
    /// Interactions involving a halted participant are ineffective by definition.
    pub fn apply(&mut self, interaction: &Interaction) -> InteractionOutcome {
        let Interaction {
            a,
            pa,
            b,
            pb,
            permissibility,
        } = *interaction;
        let mut outcome = InteractionOutcome::default();
        if self.halted[a.index()] || self.halted[b.index()] {
            return outcome;
        }
        let bonded = matches!(permissibility, Permissibility::Bonded);
        let sa = &self.states[a.index()];
        let sb = &self.states[b.index()];
        let attempt = self
            .protocol
            .transition(sa, pa, sb, pb, bonded)
            .map(|t| (t, false))
            .or_else(|| {
                self.protocol
                    .transition(sb, pb, sa, pa, bonded)
                    .map(|t| (t, true))
            });
        let Some((transition, swapped)) = attempt else {
            return outcome;
        };
        let (new_a, new_b) = if swapped {
            (transition.b, transition.a)
        } else {
            (transition.a, transition.b)
        };
        outcome.effective = new_a != self.states[a.index()]
            || new_b != self.states[b.index()]
            || transition.bond != bonded;
        self.record_state(a.index());
        self.record_state(b.index());
        self.states[a.index()] = new_a;
        self.states[b.index()] = new_b;
        match (bonded, transition.bond) {
            (true, true) | (false, false) => {}
            (true, false) => {
                self.deactivate_bond(a, pa, b, pb, &mut outcome);
            }
            (false, true) => {
                if let Permissibility::Merge {
                    rotation,
                    translation,
                } = permissibility
                {
                    self.merge_components(a, b, rotation, translation);
                    outcome.merged = true;
                }
                self.record_link(a.index(), pa.index());
                self.record_link(b.index(), pb.index());
                self.links[a.index()][pa.index()] = Some((b, pb));
                self.links[b.index()][pb.index()] = Some((a, pa));
                self.bond_count += 1;
                outcome.bond_activated = true;
            }
        }
        if outcome.merged || outcome.split {
            // Stamped with the smaller participant's canonical lane (not its runtime
            // shard — see `shard::trace_lane`); muted inside speculative epochs.
            let lane = trace_lane(a.min(b), self.len());
            if outcome.merged {
                self.obs.trace(lane, TraceEventKind::Merge);
            }
            if outcome.split {
                self.obs.trace(lane, TraceEventKind::Split);
            }
        }
        if outcome.effective {
            self.halted[a.index()] = self.protocol.is_halted(&self.states[a.index()]);
            self.halted[b.index()] = self.protocol.is_halted(&self.states[b.index()]);
            self.index.bump_version();
            self.mark_dirty(a);
            self.mark_dirty(b);
            self.pair_touch(a);
            self.pair_touch(b);
            self.flush_pairs();
        }
        outcome
    }

    /// Merges the components of `a` and `b`, where `(rotation, translation)` maps `b`'s
    /// component frame into `a`'s. The *smaller* component is the one physically moved
    /// (re-embedded), which bounds the total re-embedding work of an execution by
    /// `O(n log n)` node moves; frames are arbitrary (the solution is well mixed), so
    /// permissibility and transitions are unaffected by which frame survives.
    fn merge_components(&mut self, a: NodeId, b: NodeId, rotation: Rotation, translation: Coord) {
        let comp_a_id = self.comp_of[a.index()];
        let comp_b_id = self.comp_of[b.index()];
        debug_assert_ne!(comp_a_id, comp_b_id);
        if self.shard_map.shard_of(a) != self.shard_map.shard_of(b) {
            self.cross_shard_events.fetch_add(1, Ordering::Relaxed);
        }
        let len = |c: &Option<Component>| c.as_ref().map_or(0, Component::len);
        let (absorbed_id, surviving_id, rotation, translation) =
            if len(&self.components[comp_b_id]) <= len(&self.components[comp_a_id]) {
                (comp_b_id, comp_a_id, rotation, translation)
            } else {
                // Move `a`'s side instead, through the inverse rigid motion:
                // x_B = R⁻¹·x_A − R⁻¹·t.
                let inverse = rotation.inverse();
                let translation = Coord::ORIGIN - inverse.apply_coord(translation);
                (comp_a_id, comp_b_id, inverse, translation)
            };
        if self.delta.recording() {
            let old = self.components[absorbed_id].clone();
            self.delta.record(move || WorldRecord::CompSlot {
                idx: absorbed_id,
                old,
            });
            let old = self.components[surviving_id].clone();
            self.delta.record(move || WorldRecord::CompSlot {
                idx: surviving_id,
                old,
            });
        }
        let absorbed = self.components[absorbed_id]
            .take()
            .expect("component slot of a live node must be occupied");
        let surviving = self.components[surviving_id]
            .as_mut()
            .expect("component slot of a live node must be occupied");
        let absorbed_len = absorbed.len() as u64;
        let surviving_len = surviving.len() as u64;
        let mut moved: Vec<(NodeId, Coord)> = Vec::with_capacity(absorbed.len());
        // Walk the absorbed members in their membership-vector order, not the
        // occupancy map's hash order: the surviving `members` push order (and the
        // pending-queue touch order below) is sampler-visible through cross-pair
        // enumeration and class allocation, and the membership vector — unlike the
        // hash map — is part of the serialized configuration, so a resumed run
        // reproduces this walk exactly.
        for &node in absorbed.members() {
            let pos = self.placements[node.index()].pos;
            let new_pos = rotation.apply_coord(pos) + translation;
            {
                let idx = node.index();
                let old = self.placements[idx];
                self.delta
                    .record(move || WorldRecord::PlacementOf { node: idx, old });
                let old = self.comp_of[idx];
                self.delta
                    .record(move || WorldRecord::CompOf { node: idx, old });
            }
            let placement = &mut self.placements[node.index()];
            placement.pos = new_pos;
            placement.rot = rotation.compose(placement.rot);
            self.comp_of[node.index()] = surviving_id;
            surviving.insert(node, new_pos);
            // Moved nodes sit in a grown component with fresh relative geometry: pairs
            // involving them may have become effective.
            self.index.mark_dirty(self.shard_map, node);
            moved.push((node, new_pos));
        }
        // Component-size bookkeeping: (a+b)² replaces a² + b².
        self.sum_sq_sizes += 2 * absorbed_len * surviving_len;
        self.live_components -= 1;
        if self.pairs_active.load(Ordering::Relaxed) {
            // The moved nodes must be re-derived (new component, new adjacency, new
            // free-port flags), and so must the *unmoved* neighbours of every inserted
            // cell — their ports just got blocked, which is exactly the non-local
            // removal a grown component can cause in the singleton cross classes.
            // Each touch is routed to the pending queue of the touched node's shard:
            // this is the cross-shard migration path — a merge in one shard hands work
            // to neighbouring shards under their queue locks only.
            let surviving = self.components[surviving_id]
                .as_ref()
                .expect("component slot of a live node must be occupied");
            for &(node, new_pos) in &moved {
                self.pair_touch(node);
                for &d in self.dim.dirs() {
                    if let Some(neighbour) = surviving.node_at(new_pos + d.unit()) {
                        self.pair_touch(neighbour);
                    }
                }
            }
        }
    }

    fn deactivate_bond(
        &mut self,
        a: NodeId,
        pa: Dir,
        b: NodeId,
        pb: Dir,
        outcome: &mut InteractionOutcome,
    ) {
        debug_assert_eq!(self.links[a.index()][pa.index()], Some((b, pb)));
        self.record_link(a.index(), pa.index());
        self.record_link(b.index(), pb.index());
        self.links[a.index()][pa.index()] = None;
        self.links[b.index()][pb.index()] = None;
        self.bond_count -= 1;
        outcome.bond_deactivated = true;
        // The component may have split: collect everything still reachable from `a`.
        // The visited marks live in an epoch-stamped scratch buffer on the world, so a
        // bond flip costs O(component traversed), not an O(n) allocation.
        let comp_id = self.comp_of[a.index()];
        self.scratch_epoch += 1;
        let epoch = self.scratch_epoch;
        let reached = |scratch: &[u64], node: NodeId| scratch[node.index()] == epoch;
        self.scratch_stamp[a.index()] = epoch;
        let mut queue = VecDeque::from([a]);
        let mut reached_b = false;
        while let Some(node) = queue.pop_front() {
            if node == b {
                reached_b = true;
                break;
            }
            for (peer, _) in self.links[node.index()].iter().flatten() {
                if !reached(&self.scratch_stamp, *peer) {
                    self.scratch_stamp[peer.index()] = epoch;
                    queue.push_back(*peer);
                }
            }
        }
        if reached_b {
            return;
        }
        // Split: the stamped nodes are exactly `a`'s side; move everything else (i.e.
        // `b`'s side) of the old component into a new component. Only an actual split
        // counts as a cross-shard event (cycle-bond deactivations route no
        // re-derivation work between shards), mirroring the merge path.
        outcome.split = true;
        if self.shard_map.shard_of(a) != self.shard_map.shard_of(b) {
            self.cross_shard_events.fetch_add(1, Ordering::Relaxed);
        }
        let old_members: Vec<NodeId> = self.components[comp_id]
            .as_ref()
            .expect("component slot of a live node must be occupied")
            .members()
            .to_vec();
        let old_len = old_members.len() as u64;
        if self.delta.recording() {
            // One wholesale record of the pre-split slot covers every `remove` the
            // loop below performs on it.
            let old = self.components[comp_id].clone();
            self.delta
                .record(move || WorldRecord::CompSlot { idx: comp_id, old });
        }
        let new_comp_id = self.allocate_component_slot();
        let mut new_comp = Component::empty();
        for node in old_members {
            // Both halves shrank, which can unlock merge placements for every old
            // member: mark them all dirty (each touch routed to the member's shard).
            self.mark_dirty(node);
            self.pair_touch(node);
            if self.comp_of[node.index()] == comp_id && !reached(&self.scratch_stamp, node) {
                let pos = self.placements[node.index()].pos;
                self.components[comp_id]
                    .as_mut()
                    .expect("component slot of a live node must be occupied")
                    .remove(node, pos);
                new_comp.insert(node, pos);
                let idx = node.index();
                self.delta.record(move || WorldRecord::CompOf {
                    node: idx,
                    old: comp_id,
                });
                self.comp_of[node.index()] = new_comp_id;
            }
        }
        debug_assert!(!new_comp.is_empty());
        // Component-size bookkeeping: a² + b² replaces (a+b)².
        let split_len = new_comp.len() as u64;
        self.sum_sq_sizes -= 2 * split_len * (old_len - split_len);
        self.live_components += 1;
        self.components[new_comp_id] = Some(new_comp);
    }

    fn allocate_component_slot(&mut self) -> usize {
        if let Some(idx) = self.components.iter().position(Option::is_none) {
            // The record also covers the caller's later assignment into the slot.
            self.delta
                .record(move || WorldRecord::CompSlot { idx, old: None });
            idx
        } else {
            self.components.push(None);
            self.delta.record(|| WorldRecord::CompPush);
            self.components.len() - 1
        }
    }

    /// Activates the bond between two node-ports *without consulting the protocol*,
    /// merging components as needed. Intended for setting up initial configurations
    /// (pre-built seed lines, the input shape of the self-replication protocols) and for
    /// handing configurations between sequentially composed phases.
    ///
    /// # Errors
    /// Returns [`crate::CoreError::PopulationTooSmall`] never; returns
    /// [`crate::CoreError::UnknownNode`] if a node is out of range and
    /// [`crate::CoreError::InvalidPort`] if the pair is not geometrically permissible or
    /// is already bonded.
    pub fn setup_bond(&mut self, a: NodeId, pa: Dir, b: NodeId, pb: Dir) -> crate::Result<()> {
        if a.index() >= self.len() {
            return Err(crate::CoreError::UnknownNode(a));
        }
        if b.index() >= self.len() {
            return Err(crate::CoreError::UnknownNode(b));
        }
        match self.permissibility(a, pa, b, pb) {
            Some(Permissibility::Merge {
                rotation,
                translation,
            }) => {
                self.merge_components(a, b, rotation, translation);
            }
            Some(Permissibility::SameComponentAdjacent) => {}
            Some(Permissibility::Bonded) | None => {
                return Err(crate::CoreError::InvalidPort {
                    node: a,
                    port: pa.short_name(),
                });
            }
        }
        self.record_link(a.index(), pa.index());
        self.record_link(b.index(), pb.index());
        self.links[a.index()][pa.index()] = Some((b, pb));
        self.links[b.index()][pb.index()] = Some((a, pa));
        self.bond_count += 1;
        self.index.bump_version();
        self.mark_dirty(a);
        self.mark_dirty(b);
        self.pair_touch(a);
        self.pair_touch(b);
        self.flush_pairs();
        Ok(())
    }

    /// Decides whether the (unordered) node-port pair is both permissible and
    /// *effective* — applying it would change a state or the bond — and returns the
    /// ready-to-apply [`Interaction`] if so. Identity transitions count as ineffective.
    #[must_use]
    pub fn effective_interaction_at(
        &self,
        a: NodeId,
        pa: Dir,
        b: NodeId,
        pb: Dir,
    ) -> Option<Interaction> {
        if self.halted[a.index()] || self.halted[b.index()] {
            return None;
        }
        let permissibility = self.permissibility(a, pa, b, pb)?;
        let bonded = matches!(permissibility, Permissibility::Bonded);
        let sa = &self.states[a.index()];
        let sb = &self.states[b.index()];
        let effective = transition_effective(&self.protocol, sa, pa, sb, pb, bonded);
        effective.then_some(Interaction {
            a,
            pa,
            b,
            pb,
            permissibility,
        })
    }

    /// Scans one node against the whole population for an effective interaction.
    fn scan_node_for_effective(&self, x: NodeId) -> Option<Interaction> {
        if self.halted[x.index()] {
            return None;
        }
        let ports = self.dim.dirs();
        for yi in 0..self.len() {
            if yi == x.index() || self.halted[yi] {
                continue;
            }
            let y = NodeId::new(yi as u32);
            for &pa in ports {
                for &pb in ports {
                    if let Some(found) = self.effective_interaction_at(x, pa, y, pb) {
                        return Some(found);
                    }
                }
            }
        }
        None
    }

    /// Finds an effective permissible interaction, using the incremental index.
    ///
    /// Amortised cost: each node dirtied by an [`World::apply`] delta is scanned at most
    /// once (against the whole population) across *all* queries, so a query sequence
    /// interleaved with applies costs `O(Σ dirtied · n · ports²)` in total instead of
    /// `O(n² · ports²)` per query. Queries on an unchanged configuration are `O(1)`
    /// (cached candidate revalidation, or the quiescent flag once stability is proven).
    ///
    /// The per-shard queues are drained in shard order (deterministic for a given
    /// configuration history); with one shard this is the historical single-queue
    /// behaviour.
    #[must_use]
    pub fn find_effective_interaction(&self) -> Option<Interaction> {
        let mut index = self.index.lock();
        if let Some(candidate) = index.candidate {
            if let Some(fresh) =
                self.effective_interaction_at(candidate.a, candidate.pa, candidate.b, candidate.pb)
            {
                index.stats.candidate_hits += 1;
                index.candidate = Some(fresh);
                return Some(fresh);
            }
            index.candidate = None;
        }
        if index.quiescent {
            index.stats.quiescent_hits += 1;
            return None;
        }
        for shard in 0..index.queues.len() {
            while let Some(&x) = index.queues[shard].last() {
                index.stats.node_scans += 1;
                if let Some(found) = self.scan_node_for_effective(x) {
                    // `x` stays dirty: the found interaction will usually be applied,
                    // and `x` may have further effective pairs to report afterwards.
                    index.candidate = Some(found);
                    return Some(found);
                }
                index.queues[shard].pop();
                index.dirty[x.index()] = false;
            }
        }
        index.quiescent = true;
        None
    }

    /// The pre-index full scan, kept as the reference implementation: `O(n² · ports²)`.
    /// Used by the equivalence and property suites to validate the indexed path.
    #[must_use]
    pub fn find_effective_interaction_scan(&self) -> Option<Interaction> {
        let ports = self.dim.dirs();
        for ai in 0..self.len() {
            let a = NodeId::new(ai as u32);
            for bi in (ai + 1)..self.len() {
                let b = NodeId::new(bi as u32);
                for &pa in ports {
                    for &pb in ports {
                        if let Some(found) = self.effective_interaction_at(a, pa, b, pb) {
                            return Some(found);
                        }
                    }
                }
            }
        }
        None
    }

    /// Enumerates **exactly** the permissible node-port pairs of the configuration, one
    /// entry per unordered pair, or `None` when the cross-component part would exceed
    /// `cross_budget` node-pair checks (the caller then falls back to rejection
    /// sampling, which is cheap precisely when the permissible set is large).
    ///
    /// Cost: `O(n · ports)` for the bonded and same-component-adjacent parts plus
    /// `O(Σ_{A≠B} |A|·|B| · ports²)` for the cross-component part (bounded by
    /// `cross_budget · ports²` permissibility checks).
    #[must_use]
    pub fn enumerate_permissible(&self, cross_budget: usize) -> Option<Vec<Interaction>> {
        let ports = self.dim.dirs();
        let mut out = Vec::new();
        // Bonded pairs and same-component facing adjacencies: O(n · ports).
        for ai in 0..self.len() {
            let a = NodeId::new(ai as u32);
            let pl_a = self.placements[ai];
            for &pa in ports {
                if let Some((b, pb)) = self.links[ai][pa.index()] {
                    if (ai, pa.index()) < (b.index(), pb.index()) {
                        out.push(Interaction {
                            a,
                            pa,
                            b,
                            pb,
                            permissibility: Permissibility::Bonded,
                        });
                    }
                    continue;
                }
                let facing = pl_a.rot.apply_dir(pa);
                let target = pl_a.pos + facing.unit();
                if let Some(b) = self.component(a).node_at(target) {
                    let pb = self.placements[b.index()]
                        .rot
                        .inverse()
                        .apply_dir(facing.opposite());
                    if (ai, pa.index()) < (b.index(), pb.index()) {
                        out.push(Interaction {
                            a,
                            pa,
                            b,
                            pb,
                            permissibility: Permissibility::SameComponentAdjacent,
                        });
                    }
                }
            }
        }
        // Cross-component pairs. The budget check is O(1) from the maintained
        // component-size bookkeeping instead of an O(components²) size sweep.
        if self.cross_component_universe() > cross_budget as u64 {
            return None;
        }
        let live: Vec<usize> = (0..self.components.len())
            .filter(|&i| self.components[i].is_some())
            .collect();
        for (i, &ca) in live.iter().enumerate() {
            for &cb in live.iter().skip(i + 1) {
                let comp_a = self.components[ca].as_ref().expect("live slot");
                let comp_b = self.components[cb].as_ref().expect("live slot");
                for &a in comp_a.members() {
                    for &b in comp_b.members() {
                        for &pa in ports {
                            for &pb in ports {
                                if let Some(permissibility) = self.permissibility(a, pa, b, pb) {
                                    out.push(Interaction {
                                        a,
                                        pa,
                                        b,
                                        pb,
                                        permissibility,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        Some(out)
    }

    /// Queues `node` for re-derivation in the permissible-pair index, on the pending
    /// queue of the shard owning `node` (no-op while the index is inactive). Only that
    /// shard's queue lock is taken — this is the cross-shard merge/split routing.
    fn pair_touch(&self, node: NodeId) {
        if self.pairs_active.load(Ordering::Relaxed) {
            relock(&self.pair_pending[self.shard_map.shard_of(node)]).push(node);
        }
    }

    /// The read-only geometry view the pair index derives entries from.
    fn geom_view(&self) -> GeomView<'_, P::State> {
        GeomView {
            dim: self.dim,
            states: &self.states,
            halted: &self.halted,
            comp_of: &self.comp_of,
            components: &self.components,
            placements: &self.placements,
            links: &self.links,
        }
    }

    /// Re-derives the queued nodes in the permissible-pair index. Called at the end of
    /// every mutation; each queued node costs `O(ports · classes)`. The batch is
    /// gathered from every shard's pending queue, sorted (ascending node id — the
    /// canonical re-derivation order that keeps class allocation shard-count
    /// independent) and handed to the index, which fans large batches out per shard.
    fn flush_pairs(&self) {
        if !self.pairs_active.load(Ordering::Relaxed) {
            return;
        }
        let mut pending: Vec<NodeId> = Vec::new();
        for queue in &self.pair_pending {
            pending.append(&mut relock(queue));
        }
        if pending.is_empty() {
            return;
        }
        pending.sort_unstable();
        pending.dedup();
        let mut timer = self.obs.phase(Phase::Flush);
        timer.add_units(pending.len() as u64);
        self.obs.trace(
            trace_lane(pending[0], self.len()),
            TraceEventKind::IndexFlush {
                touched: pending.len() as u32,
            },
        );
        let mut cell = self.lock_pairs();
        let view = self.geom_view();
        if cell
            .index
            .flush_batch(&view, &self.protocol, &pending)
            .is_err()
        {
            cell.mode = PairMode::Overflowed;
            cell.index.clear();
            self.pairs_active.store(false, Ordering::Relaxed);
        }
    }

    /// Ensures the pair index is built and active, or reports why it cannot be
    /// (`false` ⇔ the protocol's live state diversity has overflowed the class table).
    fn ensure_pairs_active(&self, cell: &mut PairCell<P::State>) -> bool {
        match cell.mode {
            PairMode::Overflowed => false,
            PairMode::Active => true,
            PairMode::Disabled => {
                let view = self.geom_view();
                if cell.index.build(&view, &self.protocol).is_err() {
                    cell.mode = PairMode::Overflowed;
                    cell.index.clear();
                    return false;
                }
                cell.mode = PairMode::Active;
                self.pairs_active.store(true, Ordering::Relaxed);
                true
            }
        }
    }

    fn summary_from(&self, cell: &PairCell<P::State>, counts: BaseCounts) -> PairSummary {
        PairSummary {
            permissible_base: counts.permissible,
            effective_base: counts.effective,
            multi_components: self.live_components - cell.index.singleton_count(),
        }
    }

    /// Exact permissible/effective pair counts of the current configuration, excluding
    /// multi×multi cross-component pairs (see [`World::enumerate_cross_multi`]),
    /// *recounted* per frozen configuration version from the per-shard lists (memoised
    /// per version). Activates (builds) the incremental pair index on first use;
    /// returns `None` when the protocol's live state diversity has overflowed the
    /// index's class table, in which case callers must fall back to rejection or
    /// enumerated sampling. This is the batched sampler's path; the sharded sampler
    /// reads the O(1) running aggregate instead ([`World::pair_counts_sharded`]).
    pub(crate) fn pair_counts(&self) -> Option<PairSummary> {
        let mut cell = self.lock_pairs();
        if !self.ensure_pairs_active(&mut cell) {
            return None;
        }
        let version = self.version();
        let counts = match cell.counts_cache {
            Some((v, counts)) if v == version => counts,
            _ => {
                let counts = cell.index.counts(&self.protocol, self.dim);
                cell.counts_cache = Some((version, counts));
                counts
            }
        };
        Some(self.summary_from(&cell, counts))
    }

    /// Exact pair counts served from the incrementally maintained shared aggregate —
    /// the sum of the per-shard registration streams — in `O(1)` per call, no
    /// per-version recount. Same activation/overflow contract as
    /// [`World::pair_counts`]; the two are asserted equal by
    /// [`World::validate_pair_index`].
    pub(crate) fn pair_counts_sharded(&self) -> Option<PairSummary> {
        let mut cell = self.lock_pairs();
        if !self.ensure_pairs_active(&mut cell) {
            return None;
        }
        let counts = cell.index.aggregate_counts(self.dim);
        Some(self.summary_from(&cell, counts))
    }

    /// The `idx`-th effective base pair as a ready-to-apply [`Interaction`]; uniform
    /// over the effective base set when `idx` is uniform over `0..effective_base`, and
    /// — the canonical cell walk being configuration-determined — independent of the
    /// shard count. Must only be called right after [`World::pair_counts`] /
    /// [`World::pair_counts_sharded`] on the same (frozen) configuration version.
    pub(crate) fn sample_effective_base(&self, idx: u64) -> Interaction {
        let cell = self.lock_pairs();
        let (a, pa, b, pb) = cell.index.sample_effective(self.dim, idx);
        drop(cell);
        self.interaction(a, pa, b, pb)
            .expect("pair-index effective entry must be permissible")
    }

    /// The `idx`-th permissible base pair (uniform when `idx` is uniform over
    /// `0..permissible_base`). Same calling contract as
    /// [`World::sample_effective_base`].
    pub(crate) fn sample_permissible_base(&self, idx: u64) -> Interaction {
        let cell = self.lock_pairs();
        let (a, pa, b, pb) = cell.index.sample_permissible(self.dim, idx);
        drop(cell);
        self.interaction(a, pa, b, pb)
            .expect("pair-index permissible entry must be permissible")
    }

    /// Per-shard load and routing statistics (node counts from the shard map, bucket
    /// and intra-pair loads from the pair index when it is active, and the number of
    /// cross-shard merge/split events routed through the pending queues).
    #[must_use]
    pub fn shard_stats(&self) -> ShardStats {
        let cell = self.lock_pairs();
        let loads = if matches!(cell.mode, PairMode::Active) {
            cell.index.shard_loads()
        } else {
            vec![(0, 0, 0); self.shard_map.count()]
        };
        drop(cell);
        ShardStats {
            shards: self.shard_map.count(),
            nodes: (0..self.shard_map.count())
                .map(|s| self.shard_map.range(s).len())
                .collect(),
            singletons: loads.iter().map(|&(s, _, _)| s).collect(),
            free_ports: loads.iter().map(|&(_, f, _)| f).collect(),
            intra_pairs: loads.iter().map(|&(_, _, i)| i).collect(),
            cross_shard_events: self.cross_shard_events.load(Ordering::Relaxed),
            speculation: SpeculationStats::default(),
        }
    }

    // --- checkpoint / rollback (the delta log) -----------------------------------------

    /// Opens a checkpoint: until the matching [`World::rollback`] or
    /// [`World::release`], every mutation appends an undoable record to the delta log
    /// (see [`crate::delta`]). Checkpoints nest; rolling back to an outer epoch
    /// discards inner ones. This is the rollback primitive of the speculative
    /// scheduler and the undo half of the snapshot/replay machinery.
    pub fn checkpoint(&mut self) -> Epoch {
        if !self.delta.recording() {
            self.delta.reset_records();
        }
        let (dirty, queues, candidate, quiescent) = {
            let state = self.index.lock();
            (
                state.dirty.clone(),
                state.queues.clone(),
                state.candidate,
                state.quiescent,
            )
        };
        let pending: Vec<Vec<NodeId>> = self
            .pair_pending
            .iter()
            .map(|q| relock(q).clone())
            .collect();
        let (index_pos, pairs_mode) = {
            let mut cell = relock(&self.pairs);
            let mode = cell.mode;
            let pos = if matches!(mode, PairMode::Active) {
                if !cell.index.is_logging() {
                    cell.index.clear_oplog();
                    cell.index.set_logging(true);
                }
                cell.index.oplog_len()
            } else {
                0
            };
            (pos, mode)
        };
        let frame = EpochFrame {
            id: 0, // assigned by `open`
            world_pos: self.delta.world_pos(),
            index_pos,
            index_rebuilt: false,
            bond_count: self.bond_count,
            sum_sq_sizes: self.sum_sq_sizes,
            live_components: self.live_components,
            cross_shard_events: self.cross_shard_events.load(Ordering::Relaxed),
            dirty,
            queues,
            candidate,
            quiescent,
            pending,
            pairs_mode,
        };
        let epoch = self.delta.open(frame);
        // Mutations from here to the matching rollback/release are scratch work
        // (speculation, undo-suite probes): keep them out of the step-indexed trace.
        self.obs.set_muted(true);
        epoch
    }

    /// Rolls the world back to the state it had when `epoch` was opened (discarding
    /// any checkpoints opened after it): world records are undone in strict reverse,
    /// the `O(1)` bookkeeping scalars, dirty-frontier memoisation and pending queues
    /// are restored from the frame's snapshots, and the permissible-pair index is
    /// unwound through its operation log — so the per-shard sub-index layouts and the
    /// running aggregates come back exactly, not just equivalently (asserted by the
    /// delta-log exactness suite via [`World::validate_pair_index`]).
    ///
    /// The configuration version is **bumped**, not rewound: version-keyed sampler
    /// caches must re-derive from the restored state, and equality of versions — not
    /// their numeric values — is all they rely on. Work counters
    /// ([`World::index_stats`]) are likewise not rewound.
    ///
    /// One caveat: if the epoch saw the index overflow or an inner rollback rebuilt
    /// it, the index is rebuilt from the restored configuration instead of unwound —
    /// counts and sets are exact either way, but state-class *ids* may then differ
    /// from a never-checkpointed run's (they are allocation-history dependent). The
    /// speculative scheduler never hits this path: it only opens epochs with enough
    /// class headroom that a mid-epoch overflow is impossible.
    ///
    /// # Errors
    /// [`CoreError::EpochNotOpen`] if `epoch` is not open (already rolled back or
    /// released); the world is left untouched in that case.
    pub fn rollback(&mut self, epoch: Epoch) -> crate::Result<()> {
        let frame = self.delta.take_frame(epoch)?;
        let obs = self.obs.clone();
        let mut timer = obs.phase(Phase::Rollback);
        let records = self.delta.split_records(frame.world_pos);
        timer.add_units(records.len() as u64);
        for record in records.into_iter().rev() {
            match record {
                WorldRecord::State { node, old } => self.states[node] = old,
                WorldRecord::Halted { node, old } => self.halted[node] = old,
                WorldRecord::Link { node, port, old } => self.links[node][port] = old,
                WorldRecord::CompOf { node, old } => self.comp_of[node] = old,
                WorldRecord::PlacementOf { node, old } => self.placements[node] = old,
                WorldRecord::CompSlot { idx, old } => self.components[idx] = old,
                WorldRecord::CompPush => {
                    self.components.pop();
                }
            }
        }
        self.bond_count = frame.bond_count;
        self.sum_sq_sizes = frame.sum_sq_sizes;
        self.live_components = frame.live_components;
        self.cross_shard_events
            .store(frame.cross_shard_events, Ordering::Relaxed);
        {
            let mut state = self.index.lock();
            state.dirty = frame.dirty;
            state.queues = frame.queues;
            state.candidate = frame.candidate;
            state.quiescent = frame.quiescent;
        }
        for (queue, saved) in self.pair_pending.iter().zip(frame.pending) {
            *relock(queue) = saved;
        }
        let mut rebuilt = false;
        let still_active = {
            let mut cell = relock(&self.pairs);
            cell.counts_cache = None;
            match (frame.pairs_mode, cell.mode) {
                (PairMode::Active, PairMode::Active) if !frame.index_rebuilt => {
                    cell.index
                        .rollback_ops(frame.index_pos, &self.protocol, self.dim);
                }
                (PairMode::Active, _) => {
                    // The op log no longer reaches the checkpoint (mid-epoch overflow
                    // wiped it, or an inner rollback already rebuilt): rebuild from
                    // the restored configuration. The configuration was indexable at
                    // checkpoint time, so the rebuild succeeds.
                    cell.index.set_logging(false);
                    let view = GeomView {
                        dim: self.dim,
                        states: &self.states,
                        halted: &self.halted,
                        comp_of: &self.comp_of,
                        components: &self.components,
                        placements: &self.placements,
                        links: &self.links,
                    };
                    if cell.index.build(&view, &self.protocol).is_ok() {
                        cell.mode = PairMode::Active;
                        rebuilt = true;
                    } else {
                        cell.mode = PairMode::Overflowed;
                        cell.index.clear();
                    }
                }
                (PairMode::Disabled, PairMode::Active | PairMode::Overflowed) => {
                    // The index was activated mid-epoch: return it to its
                    // lazily-unbuilt state.
                    cell.index.clear();
                    cell.mode = PairMode::Disabled;
                }
                (PairMode::Disabled, PairMode::Disabled) | (PairMode::Overflowed, _) => {}
            }
            matches!(cell.mode, PairMode::Active)
        };
        self.pairs_active.store(still_active, Ordering::Relaxed);
        if rebuilt {
            // Outer frames' op positions point into the wiped log: their rollbacks
            // must rebuild too. New checkpoints restart the log from scratch.
            self.delta.poison_index_positions();
        }
        if !self.delta.recording() {
            self.delta.reset_records();
            let mut cell = relock(&self.pairs);
            cell.index.set_logging(false);
            cell.index.clear_oplog();
        }
        self.index.bump_version();
        // The unwind itself ran muted (the flag was raised by `checkpoint`); unmute
        // only once the outermost epoch is gone.
        self.obs.set_muted(self.delta.recording());
        Ok(())
    }

    /// Closes `epoch` (and any checkpoints opened after it) *keeping* the mutations
    /// made since. While outer checkpoints remain open their records are retained —
    /// an outer rollback still undoes the released epoch's mutations.
    ///
    /// # Errors
    /// [`CoreError::EpochNotOpen`] if `epoch` is not open (already rolled back or
    /// released); the world is left untouched in that case.
    pub fn release(&mut self, epoch: Epoch) -> crate::Result<()> {
        let _frame = self.delta.take_frame(epoch)?;
        if !self.delta.recording() {
            self.delta.reset_records();
            let mut cell = relock(&self.pairs);
            cell.index.set_logging(false);
            cell.index.clear_oplog();
        }
        self.obs.set_muted(self.delta.recording());
        Ok(())
    }

    /// The shard owning `node` (contiguous id ranges; see [`crate::shard`]).
    pub(crate) fn node_shard(&self, node: NodeId) -> usize {
        self.shard_map.shard_of(node)
    }

    // --- snapshots (see `crate::snapshot` for the format and the exactness notes) ------

    /// Encodes the sampler-visible runtime state of the configuration: the scalar
    /// bookkeeping, every node's state/placement/links, the component-slot layout
    /// with each component's membership order, and — when the permissible-pair index
    /// is active — its pinned class-table layout. Derived state (halted flags, the
    /// dirty frontier, count caches) is deliberately omitted; see the module docs of
    /// [`crate::snapshot`] for what is recomputed on resume and why that is exact.
    pub(crate) fn snapshot_encode(&self, out: &mut crate::SnapshotWriter)
    where
        P: crate::SnapshotProtocol,
    {
        out.u8(match self.dim {
            Dim::Two => 2,
            Dim::Three => 3,
        });
        out.u64(self.bond_count as u64);
        out.u64(self.sum_sq_sizes);
        out.u64(self.live_components as u64);
        out.u64(self.cross_shard_events.load(Ordering::Relaxed));
        for i in 0..self.len() {
            self.protocol.encode_state(&self.states[i], out);
            let placement = self.placements[i];
            out.i32(placement.pos.x);
            out.i32(placement.pos.y);
            out.i32(placement.pos.z);
            // A rotation is determined by the images of the three axes; encoding
            // them through the public `apply_dir` round-trips via
            // `Rotation::from_axis_images`, which validates on decode.
            out.u8(placement.rot.apply_dir(Dir::Right).index() as u8);
            out.u8(placement.rot.apply_dir(Dir::Up).index() as u8);
            out.u8(placement.rot.apply_dir(Dir::ZPlus).index() as u8);
            out.u64(self.comp_of[i] as u64);
            for link in &self.links[i] {
                match link {
                    Some((peer, port)) => {
                        out.u8(1);
                        out.u32(peer.index() as u32);
                        out.u8(port.index() as u8);
                    }
                    None => out.u8(0),
                }
            }
        }
        out.u64(self.components.len() as u64);
        for slot in &self.components {
            match slot {
                Some(comp) => {
                    out.u8(1);
                    out.u64(comp.len() as u64);
                    // Membership order is sampler-visible (cross-pair enumeration
                    // walks it) and execution-history dependent: persist it. Frame
                    // positions are not stored — the occupancy map is rebuilt from
                    // the members' placements.
                    for &member in comp.members() {
                        out.u32(member.index() as u32);
                    }
                }
                None => out.u8(0),
            }
        }
        let cell = self.lock_pairs();
        out.u8(match cell.mode {
            PairMode::Disabled => 0,
            PairMode::Active => 1,
            PairMode::Overflowed => 2,
        });
        if matches!(cell.mode, PairMode::Active) {
            let (slots, free) = cell.index.snapshot_class_layout();
            out.u64(slots.len() as u64);
            for slot in &slots {
                match slot {
                    Some(state) => {
                        out.u8(1);
                        self.protocol.encode_state(state, out);
                    }
                    None => out.u8(0),
                }
            }
            out.u64(free.len() as u64);
            for id in free {
                out.u32(id);
            }
        }
    }

    /// Decodes a configuration encoded by [`World::snapshot_encode`] into a fresh
    /// world of `n` nodes on `shards` shards.
    ///
    /// Decoding is defensive end to end: the input has only passed a checksum, so
    /// every id is bounds-checked, every tag validated, cell occupancy pre-checked
    /// before insertion, the stored scalar bookkeeping compared against a recount,
    /// and the full embedding invariant suite run at the end — malformed input yields
    /// a typed [`CoreError`], never a panic. Halted flags are recomputed from the
    /// decoded states; the dirty frontier starts conservatively all-dirty.
    ///
    /// # Errors
    /// [`CoreError::SnapshotTruncated`] or [`CoreError::SnapshotCorrupt`].
    pub(crate) fn snapshot_decode(
        protocol: P,
        n: usize,
        shards: usize,
        r: &mut crate::SnapshotReader<'_>,
    ) -> crate::Result<World<P>>
    where
        P: crate::SnapshotProtocol,
    {
        fn corrupt(what: &'static str) -> CoreError {
            CoreError::SnapshotCorrupt { what }
        }
        if n == 0 {
            return Err(corrupt("population size is zero"));
        }
        // Every node costs at least 30 body bytes (state tag, position, rotation
        // axes, component id, six link tags), so a population the remaining bytes
        // cannot possibly hold is rejected *before* the world — whose runtime
        // structures are sized by `n` — is allocated. Without this bound a
        // corrupted-but-checksum-valid population count could demand terabytes.
        const MIN_NODE_BYTES: usize = 30;
        if n > r.remaining() / MIN_NODE_BYTES {
            return Err(corrupt("population size exceeds the snapshot body"));
        }
        let world = World::with_shards(protocol, n, shards);
        let dim = match r.u8()? {
            2 => Dim::Two,
            3 => Dim::Three,
            _ => return Err(corrupt("dimension tag is neither 2 nor 3")),
        };
        if dim != world.dim {
            return Err(corrupt(
                "snapshot dimensionality disagrees with the protocol",
            ));
        }
        let bond_count = r.u64()?;
        let sum_sq_sizes = r.u64()?;
        let live_components = r.u64()?;
        let cross_shard_events = r.u64()?;
        let mut states = Vec::with_capacity(n);
        let mut placements = Vec::with_capacity(n);
        let mut comp_of = Vec::with_capacity(n);
        let mut links = Vec::with_capacity(n);
        for _ in 0..n {
            states.push(world.protocol.decode_state(r)?);
            let pos = Coord::new(r.i32()?, r.i32()?, r.i32()?);
            // Reachable embeddings stay within O(n) of the origin; a generous ±2³⁰
            // bound rejects corrupted coordinates long before the neighbour
            // arithmetic (`pos + dir.unit()`) could overflow an `i32`.
            const COORD_BOUND: i32 = 1 << 30;
            let in_bounds = |c: i32| (-COORD_BOUND..=COORD_BOUND).contains(&c);
            if !(in_bounds(pos.x) && in_bounds(pos.y) && in_bounds(pos.z)) {
                return Err(corrupt("node position is outside the plausible grid"));
            }
            let mut axes = [Dir::Up; 3];
            for axis in &mut axes {
                let idx = r.u8()? as usize;
                if idx >= 6 {
                    return Err(corrupt("direction index out of range"));
                }
                *axis = Dir::from_index(idx);
            }
            let rot = Rotation::from_axis_images(axes[0], axes[1], axes[2])
                .ok_or_else(|| corrupt("axis images do not form a rigid grid rotation"))?;
            placements.push(Placement { pos, rot });
            let comp = r.u64()?;
            comp_of.push(usize::try_from(comp).map_err(|_| corrupt("component id out of range"))?);
            let mut node_links = [None; 6];
            for entry in &mut node_links {
                match r.u8()? {
                    0 => {}
                    1 => {
                        let peer = r.u32()? as usize;
                        if peer >= n {
                            return Err(corrupt("link peer out of range"));
                        }
                        let port = r.u8()? as usize;
                        if port >= 6 {
                            return Err(corrupt("direction index out of range"));
                        }
                        *entry = Some((NodeId::new(peer as u32), Dir::from_index(port)));
                    }
                    _ => return Err(corrupt("link tag is neither 0 nor 1")),
                }
            }
            links.push(node_links);
        }
        let slot_count = r.count(1)?;
        let mut components: Vec<Option<Component>> = Vec::with_capacity(slot_count);
        let mut assigned = vec![false; n];
        for idx in 0..slot_count {
            match r.u8()? {
                0 => components.push(None),
                1 => {
                    let members = r.count(4)?;
                    if members == 0 {
                        return Err(corrupt("live component slot with no members"));
                    }
                    let mut comp = Component::empty();
                    for _ in 0..members {
                        let member = r.u32()? as usize;
                        if member >= n {
                            return Err(corrupt("component member out of range"));
                        }
                        if assigned[member] {
                            return Err(corrupt("node listed in two components"));
                        }
                        assigned[member] = true;
                        if comp_of[member] != idx {
                            return Err(corrupt(
                                "component membership disagrees with the node's component id",
                            ));
                        }
                        let pos = placements[member].pos;
                        // `Component::insert` treats double occupancy as a caller
                        // bug and panics; on snapshot input it is corruption.
                        if comp.is_occupied(pos) {
                            return Err(corrupt("two component members occupy one cell"));
                        }
                        comp.insert(NodeId::new(member as u32), pos);
                    }
                    components.push(Some(comp));
                }
                _ => return Err(corrupt("component slot tag is neither 0 nor 1")),
            }
        }
        if assigned.iter().any(|&a| !a) {
            return Err(corrupt("node missing from every component"));
        }
        // The stored scalar bookkeeping is redundant with the structures above:
        // recount and compare, so a corrupted scalar cannot skew the samplers.
        let linked = links.iter().flatten().flatten().count();
        if linked % 2 != 0 || (linked / 2) as u64 != bond_count {
            return Err(corrupt("bond count disagrees with the link table"));
        }
        let live = components.iter().flatten().count();
        if live as u64 != live_components {
            return Err(corrupt("live component count disagrees with the slot list"));
        }
        let recount_sq: u64 = components
            .iter()
            .flatten()
            .map(|c| (c.len() * c.len()) as u64)
            .sum();
        if recount_sq != sum_sq_sizes {
            return Err(corrupt(
                "component size aggregate disagrees with the slot list",
            ));
        }
        let mode = match r.u8()? {
            0 => PairMode::Disabled,
            1 => PairMode::Active,
            2 => PairMode::Overflowed,
            _ => return Err(corrupt("pair-index mode tag out of range")),
        };
        let pinned = if matches!(mode, PairMode::Active) {
            let class_slots = r.count(1)?;
            let mut slots = Vec::with_capacity(class_slots);
            for _ in 0..class_slots {
                match r.u8()? {
                    0 => slots.push(None),
                    1 => slots.push(Some(world.protocol.decode_state(r)?)),
                    _ => return Err(corrupt("class slot tag is neither 0 nor 1")),
                }
            }
            let free_count = r.count(4)?;
            let mut free = Vec::with_capacity(free_count);
            for _ in 0..free_count {
                free.push(r.u32()?);
            }
            Some((slots, free))
        } else {
            None
        };
        let mut world = world;
        let halted = states.iter().map(|s| world.protocol.is_halted(s)).collect();
        world.halted = halted;
        world.states = states;
        world.placements = placements;
        world.comp_of = comp_of;
        world.components = components;
        world.links = links;
        world.bond_count = bond_count as usize;
        world.sum_sq_sizes = sum_sq_sizes;
        world.live_components = live;
        world
            .cross_shard_events
            .store(cross_shard_events, Ordering::Relaxed);
        if !world.check_invariants() {
            return Err(corrupt("configuration violates the embedding invariants"));
        }
        match mode {
            PairMode::Disabled => {}
            PairMode::Overflowed => {
                world.lock_pairs().mode = PairMode::Overflowed;
            }
            PairMode::Active => {
                let (slots, free) = pinned.expect("decoded for the Active mode above");
                let view = world.geom_view();
                let mut cell = relock(&world.pairs);
                cell.index
                    .restore_pinned(&view, &world.protocol, slots, free)
                    .map_err(|what| CoreError::SnapshotCorrupt { what })?;
                cell.mode = PairMode::Active;
                drop(cell);
                world.pairs_active.store(true, Ordering::Relaxed);
            }
        }
        Ok(world)
    }

    /// Whether the pair index is active with at least `margin` free class slots —
    /// the speculative scheduler's pre-epoch guard that makes a mid-epoch class-table
    /// overflow (and hence the rebuild-on-rollback path) impossible.
    pub(crate) fn class_headroom(&self, margin: usize) -> bool {
        let cell = self.lock_pairs();
        matches!(cell.mode, PairMode::Active)
            && cell.index.live_class_count() + margin <= crate::index::CLASS_CAP
    }

    /// The shard owning rank `idx` of the canonical effective walk, or `None` when
    /// the rank resolves through the shared class-cell aggregate rather than any one
    /// shard's intra list. Used to bucket speculative resolutions by shard.
    pub(crate) fn effective_owner_shard(&self, idx: u64) -> Option<usize> {
        let cell = self.lock_pairs();
        cell.index.intra_eff_shard_of(idx)
    }

    /// The multi-node components of the configuration (with the candidate universe of
    /// their pairwise node products), or `None` when the universe exceeds `budget`.
    /// Shared ground truth for [`World::enumerate_cross_multi`] and the stability fast
    /// path, so both agree on what counts as a multi component and when enumeration is
    /// affordable.
    fn cross_multi_components(&self, budget: u64) -> Option<(Vec<usize>, u64)> {
        let multi: Vec<usize> = (0..self.components.len())
            .filter(|&i| self.components[i].as_ref().is_some_and(|c| c.len() >= 2))
            .collect();
        let mut universe = 0u64;
        for (i, &ca) in multi.iter().enumerate() {
            let size_a = self.components[ca].as_ref().map_or(0, Component::len) as u64;
            for &cb in multi.iter().skip(i + 1) {
                let size_b = self.components[cb].as_ref().map_or(0, Component::len) as u64;
                universe = universe.saturating_add(size_a * size_b);
            }
        }
        (universe <= budget).then_some((multi, universe))
    }

    /// The default budget for per-version multi×multi cross-pair work, in node pairs.
    pub(crate) fn cross_multi_budget(&self) -> u64 {
        (CROSS_BUDGET_PER_NODE * self.len()) as u64
    }

    /// Visits every permissible pair between the two given components with its
    /// effectiveness; stops early (returning `true`) when `visit` does.
    fn visit_cross_pair(
        &self,
        ca: usize,
        cb: usize,
        visit: &mut impl FnMut(Interaction, bool) -> bool,
    ) -> bool {
        let ports = self.dim.dirs();
        let comp_a = self.components[ca].as_ref().expect("live slot");
        let comp_b = self.components[cb].as_ref().expect("live slot");
        for &a in comp_a.members() {
            for &b in comp_b.members() {
                for &pa in ports {
                    for &pb in ports {
                        if let Some(interaction) = self.interaction(a, pa, b, pb) {
                            let effective = self.effective_interaction_at(a, pa, b, pb).is_some();
                            if visit(interaction, effective) {
                                return true;
                            }
                        }
                    }
                }
            }
        }
        false
    }

    /// Runs `body` over the component-pair list, fanned out in chunks on the vendored
    /// pool when the candidate universe is large, sequentially (one chunk holding the
    /// whole list) otherwise. The single definition of the multi×multi
    /// parallelisation policy, shared by enumeration and the stability fast path so
    /// they cannot drift apart; chunk results come back in pair order.
    fn map_cross_pair_chunks<T: Send + Default>(
        &self,
        multi: &[usize],
        universe: u64,
        body: impl Fn(&[(usize, usize)], &mut T) + Send + Sync,
    ) -> Vec<T> {
        let pairs: Vec<(usize, usize)> = multi
            .iter()
            .enumerate()
            .flat_map(|(i, &ca)| multi.iter().skip(i + 1).map(move |&cb| (ca, cb)))
            .collect();
        let workers = self.shard_map.count();
        if universe >= PARALLEL_CROSS_MIN && workers > 1 && pairs.len() > 1 {
            let chunk = pairs.len().div_ceil(workers);
            let chunks: Vec<&[(usize, usize)]> = pairs.chunks(chunk).collect();
            let mut outs: Vec<T> = chunks.iter().map(|_| T::default()).collect();
            let body = &body;
            rayon::scope(|scope| {
                for (chunk, out) in chunks.iter().zip(outs.iter_mut()) {
                    scope.spawn(move |_| body(chunk, out));
                }
            });
            outs
        } else {
            let mut out = T::default();
            body(&pairs, &mut out);
            vec![out]
        }
    }

    /// Enumerates the permissible pairs spanning two *multi-node* components together
    /// with their effectiveness, or `None` when the candidate universe (node pairs
    /// across multi-component pairs) exceeds `budget`. This is the one class of the
    /// pair decomposition whose permissibility depends on non-local geometry (shape
    /// collision), so it is enumerated per frozen configuration instead of being
    /// maintained incrementally; in single-growth workloads it is empty and costs
    /// `O(components)`.
    ///
    /// Large universes (many concurrent multi-node components, the merge-queue stress
    /// regime) fan the sweep out over component pairs on the vendored pool; the chunks
    /// are concatenated in pair order, so the result is identical to the sequential
    /// sweep.
    pub(crate) fn enumerate_cross_multi(&self, budget: u64) -> Option<Vec<(Interaction, bool)>> {
        let (multi, universe) = self.cross_multi_components(budget)?;
        let outs = self.map_cross_pair_chunks(
            &multi,
            universe,
            |chunk, out: &mut Vec<(Interaction, bool)>| {
                for &(ca, cb) in chunk {
                    self.visit_cross_pair(ca, cb, &mut |interaction, effective| {
                        out.push((interaction, effective));
                        false
                    });
                }
            },
        );
        Some(outs.concat())
    }

    /// Validates the incremental permissible-pair index against the enumeration oracle:
    /// the recounted permissible/effective totals must equal the brute-force
    /// [`World::enumerate_permissible`] classification, the incrementally maintained
    /// shared aggregate must equal the recount (the two are computed through
    /// independent code paths — per-shard list sums with a hash memo vs running deltas
    /// over dense tables), the sharded layout invariants must hold, and the maintained
    /// effective *set* must match pair for pair. Activates the index if necessary.
    ///
    /// # Errors
    /// Returns a description of the first discrepancy. Intended for the equivalence
    /// suite; `O(n²·ports²)` — do not call on hot paths.
    pub fn validate_pair_index(&self) -> Result<(), String> {
        let Some(summary) = self.pair_counts() else {
            return Err("pair index overflowed its class table".to_string());
        };
        let aggregate = self
            .pair_counts_sharded()
            .expect("aggregate counts must be available while the index is active");
        if aggregate != summary {
            return Err(format!(
                "aggregate counts {aggregate:?} disagree with the recount {summary:?}"
            ));
        }
        {
            let cell = self.lock_pairs();
            cell.index.check_sharding()?;
        }
        let mm = self
            .enumerate_cross_multi(u64::MAX)
            .expect("unbounded enumeration cannot be refused");
        let oracle = self
            .enumerate_permissible(usize::MAX)
            .expect("unbounded enumeration cannot be refused");
        let index_permissible = summary.permissible_base + mm.len() as u64;
        if index_permissible != oracle.len() as u64 {
            return Err(format!(
                "permissible count mismatch: index {index_permissible}, oracle {}",
                oracle.len()
            ));
        }
        let mut oracle_eff: Vec<u64> = oracle
            .iter()
            .filter(|i| {
                self.effective_interaction_at(i.a, i.pa, i.b, i.pb)
                    .is_some()
            })
            .map(|i| crate::index::pair_key(i.a, i.pa, i.b, i.pb))
            .collect();
        let mut index_eff: Vec<u64> = {
            let cell = self.lock_pairs();
            cell.index.collect_effective(self.dim)
        };
        index_eff.extend(
            mm.iter()
                .filter(|(_, eff)| *eff)
                .map(|(i, _)| crate::index::pair_key(i.a, i.pa, i.b, i.pb)),
        );
        let index_eff_count = index_eff.len() as u64;
        let mm_eff = mm.iter().filter(|(_, eff)| *eff).count() as u64;
        if summary.effective_base + mm_eff != index_eff_count {
            return Err(format!(
                "effective count/set mismatch inside the index: counted {}, expanded {index_eff_count}",
                summary.effective_base + mm_eff
            ));
        }
        oracle_eff.sort_unstable();
        index_eff.sort_unstable();
        if oracle_eff != index_eff {
            return Err(format!(
                "effective set mismatch: index has {} pairs, oracle {}",
                index_eff.len(),
                oracle_eff.len()
            ));
        }
        Ok(())
    }

    /// Whether any permissible pair spanning two multi-node components is effective,
    /// or `None` when the multi×multi candidate universe exceeds `budget` (early exit
    /// on the first effective pair; no allocation). Large universes fan out across
    /// component pairs with a shared found-flag (existence is order-independent, so the
    /// parallel answer is identical to the sequential one).
    fn any_effective_cross_multi(&self, budget: u64) -> Option<bool> {
        let (multi, universe) = self.cross_multi_components(budget)?;
        let found = AtomicBool::new(false);
        self.map_cross_pair_chunks(&multi, universe, |chunk, (): &mut ()| {
            for &(ca, cb) in chunk {
                if found.load(Ordering::Relaxed) {
                    return;
                }
                if self.visit_cross_pair(ca, cb, &mut |_, effective| effective) {
                    found.store(true, Ordering::Relaxed);
                    return;
                }
            }
        });
        Some(found.into_inner())
    }

    /// Whether the configuration is stable: no permissible interaction is effective, so
    /// the configuration (and in particular its output shape) can never change again.
    ///
    /// While the permissible-pair index is active (batched and sharded executions), the
    /// answer comes from the incrementally maintained aggregate effective count in
    /// `O(1)` instead of draining the dirty frontier, whose per-node scans are
    /// `O(n·ports²)`. Otherwise, and whenever the multi×multi cross budget is exceeded,
    /// the dirty-frontier index answers (see [`World::find_effective_interaction`] for
    /// the amortised cost).
    #[must_use]
    pub fn is_stable(&self) -> bool {
        if self.pairs_active.load(Ordering::Relaxed) {
            if let Some(summary) = self.pair_counts_sharded() {
                if summary.effective_base > 0 {
                    return false;
                }
                // Base classes are quiescent; only multi×multi pairs could still act.
                if let Some(any) = self.any_effective_cross_multi(self.cross_multi_budget()) {
                    return !any;
                }
            }
        }
        self.find_effective_interaction().is_none()
    }

    /// Stability through the exhaustive pre-index scan: `O(n² · ports²)`. Kept as the
    /// reference implementation for the equivalence suite and for the faithful legacy
    /// execution path of [`crate::Simulation::run_until_stable`].
    #[must_use]
    pub fn is_stable_scan(&self) -> bool {
        self.find_effective_interaction_scan().is_none()
    }

    /// Whether every node is in a halted state.
    #[must_use]
    pub fn all_halted(&self) -> bool {
        self.halted.iter().all(|&h| h)
    }

    /// Whether at least one node is in a halted state (allocation-free, backed by the
    /// per-node halted cache — suitable as a per-step predicate).
    #[must_use]
    pub fn any_halted(&self) -> bool {
        self.halted.iter().any(|&h| h)
    }

    /// Nodes currently in a halted state.
    #[must_use]
    pub fn halted_nodes(&self) -> Vec<NodeId> {
        self.nodes().filter(|&n| self.halted[n.index()]).collect()
    }

    /// The shape of the component containing `node`, expressed in the component frame.
    ///
    /// When `only_output` is set, only members in output states (and bonds between them)
    /// are included, matching the paper's definition of the output of a configuration.
    #[must_use]
    pub fn shape_of(&self, node: NodeId, only_output: bool) -> Shape {
        let comp = self.component(node);
        let mut shape = Shape::new();
        let included = |n: NodeId| !only_output || self.protocol.is_output(self.state(n));
        for (member, pos) in comp.iter() {
            if included(member) {
                shape.insert_cell(pos);
            }
        }
        for (member, pos) in comp.iter() {
            if !included(member) {
                continue;
            }
            for (peer, _) in self.links[member.index()].iter().flatten() {
                if included(*peer) && self.comp_of[peer.index()] == self.comp_of[member.index()] {
                    let peer_pos = self.placements[peer.index()].pos;
                    let _ = shape.insert_edge(pos, peer_pos);
                }
            }
        }
        shape
    }

    /// The output shapes of the configuration: for every component, the subgraph induced
    /// by its output-state members, skipping components with no output members.
    #[must_use]
    pub fn output_shapes(&self) -> Vec<Shape> {
        let mut seen = vec![false; self.components.len()];
        let mut out = Vec::new();
        for node in self.nodes() {
            let cid = self.comp_of[node.index()];
            if seen[cid] {
                continue;
            }
            seen[cid] = true;
            let shape = self.shape_of(node, true);
            if !shape.is_empty() {
                out.push(shape);
            }
        }
        out
    }

    /// The largest output shape of the configuration (by number of cells), or the empty
    /// shape when no node is in an output state.
    #[must_use]
    pub fn output_shape(&self) -> Shape {
        self.output_shapes()
            .into_iter()
            .max_by_key(Shape::len)
            .unwrap_or_default()
    }

    /// Checks internal consistency of the embedding: every bonded pair of nodes is in the
    /// same component, at unit distance, with ports facing each other, and no two nodes
    /// of a component occupy the same cell. Used by tests and debug assertions.
    #[must_use]
    pub fn check_invariants(&self) -> bool {
        for node in self.nodes() {
            let placement = self.placements[node.index()];
            let comp_id = self.comp_of[node.index()];
            let comp = self.components[comp_id].as_ref();
            let Some(comp) = comp else {
                return false;
            };
            if comp.node_at(placement.pos) != Some(node) {
                return false;
            }
            for (idx, link) in self.links[node.index()].iter().enumerate() {
                let Some((peer, peer_port)) = link else {
                    continue;
                };
                let port = Dir::from_index(idx);
                if !self.dim.contains(port) {
                    return false;
                }
                if self.comp_of[peer.index()] != comp_id {
                    return false;
                }
                if self.links[peer.index()][peer_port.index()] != Some((node, port)) {
                    return false;
                }
                let peer_placement = self.placements[peer.index()];
                let facing = placement.rot.apply_dir(port);
                if peer_placement.pos != placement.pos + facing.unit() {
                    return false;
                }
                if peer_placement.rot.apply_dir(*peer_port) != facing.opposite() {
                    return false;
                }
            }
        }
        // The O(1)-maintained component bookkeeping must agree with a recount.
        let live = self.components.iter().filter(|c| c.is_some()).count();
        if live != self.live_components {
            return false;
        }
        let sum_sq: u64 = self
            .components
            .iter()
            .flatten()
            .map(|c| (c.len() * c.len()) as u64)
            .sum();
        if sum_sq != self.sum_sq_sizes {
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Transition;

    /// A tiny protocol that bonds chains: a `Head` grabs a `Free` node through its right
    /// port (any port of the free node), making the grabbed node the new `Head`.
    struct Chain;

    #[derive(Clone, PartialEq, Debug)]
    enum C {
        Head,
        Body,
        Free,
    }

    impl Protocol for Chain {
        type State = C;

        fn initial_state(&self, node: NodeId, _n: usize) -> C {
            if node.index() == 0 {
                C::Head
            } else {
                C::Free
            }
        }

        fn transition(
            &self,
            a: &C,
            pa: Dir,
            b: &C,
            _pb: Dir,
            bonded: bool,
        ) -> Option<Transition<C>> {
            if !bonded && *a == C::Head && pa == Dir::Right && *b == C::Free {
                Some(Transition {
                    a: C::Body,
                    b: C::Head,
                    bond: true,
                })
            } else {
                None
            }
        }
    }

    #[test]
    fn initial_world() {
        let world = World::new(Chain, 4);
        assert_eq!(world.len(), 4);
        assert_eq!(world.component_count(), 4);
        assert_eq!(world.bond_count(), 0);
        assert_eq!(world.state(NodeId::new(0)), &C::Head);
        assert_eq!(world.state(NodeId::new(3)), &C::Free);
        assert!(world.check_invariants());
    }

    #[test]
    fn permissibility_of_free_nodes() {
        let world = World::new(Chain, 3);
        let a = NodeId::new(0);
        let b = NodeId::new(1);
        // Two free nodes may always interact (any ports).
        for &pa in Dim::Two.dirs() {
            for &pb in Dim::Two.dirs() {
                assert!(matches!(
                    world.permissibility(a, pa, b, pb),
                    Some(Permissibility::Merge { .. })
                ));
            }
        }
        // A node never interacts with itself, and z-ports are rejected in 2D.
        assert_eq!(world.permissibility(a, Dir::Up, a, Dir::Down), None);
        assert_eq!(world.permissibility(a, Dir::ZPlus, b, Dir::Up), None);
    }

    #[test]
    fn apply_merges_and_updates_states() {
        let mut world = World::new(Chain, 3);
        let head = NodeId::new(0);
        let free = NodeId::new(1);
        let interaction = world
            .interaction(head, Dir::Right, free, Dir::Left)
            .unwrap();
        let outcome = world.apply(&interaction);
        assert!(outcome.effective);
        assert!(outcome.bond_activated);
        assert!(outcome.merged);
        assert_eq!(world.bond_count(), 1);
        assert_eq!(world.component_count(), 2);
        assert_eq!(world.state(head), &C::Body);
        assert_eq!(world.state(free), &C::Head);
        assert!(world.check_invariants());
        // The grabbed node sits to the right of the old head in the component frame.
        assert_eq!(world.placement(free).pos, Coord::new2(1, 0));
    }

    #[test]
    fn unordered_pair_is_tried_both_ways() {
        let mut world = World::new(Chain, 2);
        let head = NodeId::new(0);
        let free = NodeId::new(1);
        // Present the pair with the free node first: the engine must still find the rule.
        let interaction = world
            .interaction(free, Dir::Left, head, Dir::Right)
            .unwrap();
        let outcome = world.apply(&interaction);
        assert!(outcome.effective);
        assert_eq!(world.state(free), &C::Head);
        assert_eq!(world.state(head), &C::Body);
    }

    #[test]
    fn ineffective_interactions_change_nothing() {
        let mut world = World::new(Chain, 3);
        let a = NodeId::new(1);
        let b = NodeId::new(2);
        let interaction = world.interaction(a, Dir::Up, b, Dir::Up).unwrap();
        let outcome = world.apply(&interaction);
        assert!(!outcome.effective);
        assert_eq!(world.bond_count(), 0);
        assert_eq!(world.component_count(), 3);
    }

    #[test]
    fn chain_growth_is_geometric() {
        let mut world = World::new(Chain, 4);
        // Grow a chain 0-1-2-3 by always bonding the current head's right port to the
        // next free node's left port.
        for k in 1..4u32 {
            let head = NodeId::new(k - 1);
            let free = NodeId::new(k);
            let interaction = world
                .interaction(head, Dir::Right, free, Dir::Left)
                .unwrap();
            let outcome = world.apply(&interaction);
            assert!(outcome.effective);
        }
        assert_eq!(world.component_count(), 1);
        assert_eq!(world.bond_count(), 3);
        assert!(world.check_invariants());
        let shape = world.shape_of(NodeId::new(0), false);
        assert!(shape.is_line(4));
        // All permissible internal pairs are the bonded ones plus nothing else effective.
        assert!(world.is_stable());
    }

    #[test]
    fn collision_prevents_merge() {
        // Build a chain 0-1-2; nodes 3..5 stay free.
        let mut world = World::new(Chain, 6);
        for k in 1..3u32 {
            let i = world
                .interaction(NodeId::new(k - 1), Dir::Right, NodeId::new(k), Dir::Left)
                .unwrap();
            assert!(world.apply(&i).effective);
        }
        assert_eq!(world.component_count(), 4);
        // Node 0's Right port already faces the occupied cell of node 1, so no other
        // component can ever attach there.
        assert_eq!(
            world.permissibility(NodeId::new(0), Dir::Right, NodeId::new(3), Dir::Left),
            None
        );
        // Side bonding against a free cell is geometrically allowed (even though the
        // protocol would not make it effective).
        assert!(world
            .permissibility(NodeId::new(1), Dir::Up, NodeId::new(4), Dir::Down)
            .is_some());
        // A pair of nodes inside the chain that are not adjacent may not interact: no
        // elasticity, unlike the abstract Network Constructors model.
        assert_eq!(
            world.permissibility(NodeId::new(0), Dir::Right, NodeId::new(2), Dir::Left),
            None
        );
    }

    /// A protocol that first bonds two free nodes and later releases the bond.
    struct BondThenRelease;

    #[derive(Clone, PartialEq, Debug)]
    enum B {
        Fresh,
        Bonded,
        Released,
    }

    impl Protocol for BondThenRelease {
        type State = B;

        fn initial_state(&self, _node: NodeId, _n: usize) -> B {
            B::Fresh
        }

        fn transition(
            &self,
            a: &B,
            _pa: Dir,
            b: &B,
            _pb: Dir,
            bonded: bool,
        ) -> Option<Transition<B>> {
            match (a, b, bonded) {
                (B::Fresh, B::Fresh, false) => Some(Transition {
                    a: B::Bonded,
                    b: B::Bonded,
                    bond: true,
                }),
                (B::Bonded, B::Bonded, true) => Some(Transition {
                    a: B::Released,
                    b: B::Released,
                    bond: false,
                }),
                _ => None,
            }
        }
    }

    #[test]
    fn bond_deactivation_splits_component() {
        let mut world = World::new(BondThenRelease, 2);
        let a = NodeId::new(0);
        let b = NodeId::new(1);
        let i = world.interaction(a, Dir::Right, b, Dir::Left).unwrap();
        assert!(world.apply(&i).merged);
        assert_eq!(world.component_count(), 1);
        let i = world.interaction(a, Dir::Right, b, Dir::Left).unwrap();
        assert_eq!(i.permissibility, Permissibility::Bonded);
        let outcome = world.apply(&i);
        assert!(outcome.bond_deactivated);
        assert!(outcome.split);
        assert_eq!(world.component_count(), 2);
        assert_eq!(world.bond_count(), 0);
        assert!(world.check_invariants());
        assert!(world.is_stable());
    }

    #[test]
    fn output_shape_filters_non_output_states() {
        struct OnlyHeadOutputs;
        impl Protocol for OnlyHeadOutputs {
            type State = C;
            fn initial_state(&self, node: NodeId, n: usize) -> C {
                Chain.initial_state(node, n)
            }
            fn transition(
                &self,
                a: &C,
                pa: Dir,
                b: &C,
                pb: Dir,
                bonded: bool,
            ) -> Option<Transition<C>> {
                Chain.transition(a, pa, b, pb, bonded)
            }
            fn is_output(&self, state: &C) -> bool {
                matches!(state, C::Head | C::Body)
            }
        }
        let mut world = World::new(OnlyHeadOutputs, 3);
        let i = world
            .interaction(NodeId::new(0), Dir::Right, NodeId::new(1), Dir::Left)
            .unwrap();
        world.apply(&i);
        // Node 2 is still Free (not an output state), so the output shape is the 2-chain.
        let shapes = world.output_shapes();
        assert_eq!(shapes.len(), 1);
        assert!(shapes[0].is_line(2));
        assert!(world.output_shape().is_line(2));
    }

    #[test]
    fn halted_nodes_do_not_interact() {
        struct HaltImmediately;
        impl Protocol for HaltImmediately {
            type State = bool; // true = halted
            fn initial_state(&self, node: NodeId, _n: usize) -> bool {
                node.index() == 0
            }
            fn transition(
                &self,
                _a: &bool,
                _pa: Dir,
                _b: &bool,
                _pb: Dir,
                _c: bool,
            ) -> Option<Transition<bool>> {
                Some(Transition {
                    a: true,
                    b: true,
                    bond: true,
                })
            }
            fn is_halted(&self, state: &bool) -> bool {
                *state
            }
        }
        let mut world = World::new(HaltImmediately, 2);
        let i = world
            .interaction(NodeId::new(0), Dir::Right, NodeId::new(1), Dir::Left)
            .unwrap();
        // Node 0 is halted, so the interaction must be ineffective.
        let outcome = world.apply(&i);
        assert!(!outcome.effective);
        assert_eq!(world.halted_nodes(), vec![NodeId::new(0)]);
        assert!(!world.all_halted());
    }
}
