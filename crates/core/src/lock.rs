//! Poison-recovering mutex access.
//!
//! The sharded world takes its internal mutexes (interaction index, pair index,
//! per-shard pending queues) from scoped worker threads. When one worker panics while
//! holding a guard, `std` marks the mutex *poisoned* and every later `lock()` returns
//! `Err(PoisonError)`. Turning that into a fresh panic (`.expect("lock poisoned")`)
//! converts a single root-cause panic into a storm of secondary panics on other
//! threads — the original message is buried under dozens of "lock poisoned" reports,
//! and abort-on-double-panic can even take the process down before the root cause is
//! printed.
//!
//! [`relock`] recovers the guard instead ([`PoisonError::into_inner`]), so only the
//! first panic surfaces. Recovering is sound here because every critical section in
//! this crate leaves the guarded structures in a consistent state or is followed by a
//! validation pass (`check_invariants`, `validate_pair_index`) that the suites run
//! after mutations — the poison flag adds no integrity information on top of that,
//! it only records that *some* thread panicked, which the unwinding thread already
//! reports.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks `mutex`, recovering the guard if a previous holder panicked.
///
/// See the module docs for why recovery (rather than a secondary panic) is the right
/// behaviour for this crate's internal locks.
pub(crate) fn relock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// A deliberately poisoned lock must still hand out its data, so the panic that
    /// poisoned it stays the *only* panic an observer sees (the root cause is
    /// reported by the panicking thread itself, not masked by secondary
    /// "lock poisoned" panics at every later access).
    #[test]
    fn poisoned_lock_recovers_and_keeps_root_cause() {
        let lock = Mutex::new(vec![1u8, 2, 3]);
        let root_cause = std::panic::catch_unwind(|| {
            let _guard = lock.lock().unwrap();
            panic!("root cause: worker failed mid-update");
        })
        .expect_err("the closure panics while holding the guard");
        // The original panic payload survives intact for the observer…
        let message = root_cause
            .downcast_ref::<&str>()
            .copied()
            .expect("string panic payload");
        assert!(message.contains("root cause"), "got: {message}");
        // …the mutex is now poisoned…
        assert!(lock.is_poisoned());
        // …and `relock` still yields the data instead of a masking second panic.
        let guard = relock(&lock);
        assert_eq!(*guard, vec![1, 2, 3]);
        drop(guard);
        // Repeated access keeps working (no panic storm).
        relock(&lock).push(4);
        assert_eq!(*relock(&lock), vec![1, 2, 3, 4]);
    }
}
