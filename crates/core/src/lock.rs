//! Poison-recovering mutex access.
//!
//! The sharded world takes its internal mutexes (interaction index, pair index,
//! per-shard pending queues) from scoped worker threads. When one worker panics while
//! holding a guard, `std` marks the mutex *poisoned* and every later `lock()` returns
//! `Err(PoisonError)`. Turning that into a fresh panic (`.expect("lock poisoned")`)
//! converts a single root-cause panic into a storm of secondary panics on other
//! threads — the original message is buried under dozens of "lock poisoned" reports,
//! and abort-on-double-panic can even take the process down before the root cause is
//! printed.
//!
//! [`relock`] recovers the guard instead ([`PoisonError::into_inner`]), so only the
//! first panic surfaces. Recovering is sound here because every critical section in
//! this crate leaves the guarded structures in a consistent state or is followed by a
//! validation pass (`check_invariants`, `validate_pair_index`) that the suites run
//! after mutations — the poison flag adds no integrity information on top of that,
//! it only records that *some* thread panicked, which the unwinding thread already
//! reports.

use std::any::Any;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks `mutex`, recovering the guard if a previous holder panicked.
///
/// See the module docs for why recovery (rather than a secondary panic) is the right
/// behaviour for this crate's internal locks. Public because the service tier shares
/// the policy for its queue/stats locks: a crashed worker must not turn every later
/// HTTP request into a 503 (callers there count recoveries in a
/// `lock_poison_recoveries` metric).
pub fn relock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Extracts a human-readable message from a panic payload (the value returned by
/// [`std::panic::catch_unwind`]'s `Err` arm or passed to a panic hook).
///
/// `panic!("literal")` produces a `&'static str` payload, `panic!("{x}")` and
/// `std::panic::panic_any(String::from(..))` produce a `String`, and
/// `panic_any(other)` produces an arbitrary opaque type. Downcasting to only one of
/// these — the classic `payload.downcast_ref::<&str>().expect(..)` — itself panics
/// on the other two, replacing the root cause with a misleading secondary report.
/// This helper handles all three shapes and never panics: observers that report a
/// crash (the service tier's workers, the poisoned-lock test below) get the original
/// message, or a placeholder for opaque payloads.
#[must_use]
pub fn panic_message(payload: &(dyn Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.as_str()
    } else {
        "<non-string panic payload>"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// A deliberately poisoned lock must still hand out its data, so the panic that
    /// poisoned it stays the *only* panic an observer sees (the root cause is
    /// reported by the panicking thread itself, not masked by secondary
    /// "lock poisoned" panics at every later access).
    #[test]
    fn poisoned_lock_recovers_and_keeps_root_cause() {
        let lock = Mutex::new(vec![1u8, 2, 3]);
        let root_cause = std::panic::catch_unwind(|| {
            let _guard = lock.lock().unwrap();
            panic!("root cause: worker failed mid-update");
        })
        .expect_err("the closure panics while holding the guard");
        // The original panic payload survives intact for the observer (extracted
        // through `panic_message`, which cannot itself panic on a surprising
        // payload type — the bug the old `.expect("string panic payload")` had).
        let message = panic_message(root_cause.as_ref());
        assert!(message.contains("root cause"), "got: {message}");
        // …the mutex is now poisoned…
        assert!(lock.is_poisoned());
        // …and `relock` still yields the data instead of a masking second panic.
        let guard = relock(&lock);
        assert_eq!(*guard, vec![1, 2, 3]);
        drop(guard);
        // Repeated access keeps working (no panic storm).
        relock(&lock).push(4);
        assert_eq!(*relock(&lock), vec![1, 2, 3, 4]);
    }

    /// Every payload shape a panic can carry must come back as a readable message:
    /// `panic!("literal")` (`&'static str`), `panic!("{}", ..)` (`String`), and
    /// `panic_any` of an arbitrary type (opaque placeholder). None of them may make
    /// the extractor itself panic.
    #[test]
    fn panic_message_handles_str_string_and_opaque_payloads() {
        let payload = std::panic::catch_unwind(|| panic!("literal payload")).expect_err("panics");
        assert_eq!(panic_message(payload.as_ref()), "literal payload");

        let worker = 7;
        let payload =
            std::panic::catch_unwind(|| panic!("worker {worker} failed")).expect_err("panics");
        assert_eq!(panic_message(payload.as_ref()), "worker 7 failed");

        let payload =
            std::panic::catch_unwind(|| std::panic::panic_any(String::from("owned string")))
                .expect_err("panics");
        assert_eq!(panic_message(payload.as_ref()), "owned string");

        #[derive(Debug)]
        struct Opaque(#[allow(dead_code)] u32);
        let payload =
            std::panic::catch_unwind(|| std::panic::panic_any(Opaque(3))).expect_err("panics");
        assert_eq!(
            panic_message(payload.as_ref()),
            "<non-string panic payload>"
        );
    }
}
