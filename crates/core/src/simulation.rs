//! Driving executions: protocol + world + scheduler + statistics.

use crate::scheduler::{SamplingMode, Scheduler, UniformScheduler};
use crate::shard::trace_lane;
use crate::snapshot::{Snapshot, SnapshotProtocol, SnapshotWriter, FORMAT_VERSION, MAGIC};
use crate::{CoreError, ExecutionStats, IndexStats, Protocol, ShardStats, SpeculationStats, World};
use nc_geometry::Shape;
use nc_obs::{Phase, PhaseProfile, Telemetry, TraceEventKind};

/// Configuration of a simulation run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimulationConfig {
    /// Population size `n`.
    pub n: usize,
    /// Seed of the uniform random scheduler.
    pub seed: u64,
    /// Hard ceiling on the number of scheduler steps for the `run_until_*` helpers.
    pub max_steps: u64,
    /// Sampling strategy of the uniform scheduler (adaptive by default; legacy
    /// reproduces the original rejection sampler byte for byte).
    pub sampling: SamplingMode,
    /// Number of shards the world's runtime structures are partitioned into (clamped
    /// to `1..=n` at world construction). Purely an execution-layout knob: the sampled
    /// trajectory is byte-identical across shard counts. Defaults to the `NC_SHARDS`
    /// environment default.
    pub shards: usize,
    /// Speculation window `k` of [`SamplingMode::Speculative`] (interactions executed
    /// optimistically per epoch; clamped to the window ceiling at scheduler
    /// construction; 0 disables speculation). Ignored by every other sampling mode.
    /// Defaults to the `NC_SPECULATION` environment default.
    pub speculation: usize,
}

impl SimulationConfig {
    /// Creates a configuration for `n` nodes with a default seed, a step budget of
    /// `10⁹` steps, adaptive sampling and the `NC_SHARDS` shard-count default.
    #[must_use]
    pub fn new(n: usize) -> SimulationConfig {
        SimulationConfig {
            n,
            seed: 0xC0FFEE,
            max_steps: 1_000_000_000,
            sampling: SamplingMode::default(),
            shards: crate::shard::default_shard_count(),
            speculation: crate::shard::default_speculation_window(),
        }
    }

    /// Sets the scheduler seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> SimulationConfig {
        self.seed = seed;
        self
    }

    /// Sets the step budget used by the `run_until_*` helpers.
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: u64) -> SimulationConfig {
        self.max_steps = max_steps;
        self
    }

    /// Sets the sampling strategy of the uniform scheduler.
    #[must_use]
    pub fn with_sampling(mut self, sampling: SamplingMode) -> SimulationConfig {
        self.sampling = sampling;
        self
    }

    /// Shorthand for selecting the byte-exact legacy rejection sampler.
    #[must_use]
    pub fn with_legacy_sampling(self) -> SimulationConfig {
        self.with_sampling(SamplingMode::Legacy)
    }

    /// Shorthand for selecting the geometric-jump batched sampler.
    #[must_use]
    pub fn with_batched_sampling(self) -> SimulationConfig {
        self.with_sampling(SamplingMode::Batched)
    }

    /// Shorthand for selecting the sharded composed-jump sampler.
    #[must_use]
    pub fn with_sharded_sampling(self) -> SimulationConfig {
        self.with_sampling(SamplingMode::Sharded)
    }

    /// Shorthand for selecting the speculative sharded sampler (optimistic epochs
    /// with delta-log rollback; byte-identical executions to sharded sampling).
    #[must_use]
    pub fn with_speculative_sampling(self) -> SimulationConfig {
        self.with_sampling(SamplingMode::Speculative)
    }

    /// Sets the shard count of the world's runtime structures.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> SimulationConfig {
        self.shards = shards;
        self
    }

    /// Sets the speculation window of [`SamplingMode::Speculative`] (clamped to
    /// [`crate::shard::MAX_SPECULATION_WINDOW`] at scheduler construction).
    #[must_use]
    pub fn with_speculation(mut self, speculation: usize) -> SimulationConfig {
        self.speculation = speculation;
        self
    }
}

/// Why a `run_until_*` helper returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The configuration is stable: no effective interaction exists any more.
    Stable,
    /// The caller's predicate became true.
    Predicate,
    /// Every node reached a halted state.
    AllHalted,
    /// The step budget was exhausted before the requested condition held.
    StepBudget,
    /// The scheduler produced no interaction (population of a single node).
    NoInteraction,
}

/// Summary of a `run_until_*` call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunReport {
    /// Scheduler steps taken during this call (including batched-mode bulk credits).
    pub steps: u64,
    /// Effective steps taken during this call.
    pub effective_steps: u64,
    /// Why the run stopped.
    pub reason: StopReason,
    /// Whether the final configuration is stable (always true when `reason` is
    /// [`StopReason::Stable`], checked explicitly for the other reasons only when cheap).
    pub stabilized: bool,
    /// Work counters of the world's incremental interaction index at the end of the
    /// run (cumulative over the world's lifetime): how much scanning the dirty
    /// frontier performed and how often the candidate / quiescent memoisation answered
    /// queries outright.
    pub index: IndexStats,
    /// Speculative-execution counters of the scheduler at the end of the run
    /// (cumulative over the scheduler's lifetime; all zero outside
    /// [`SamplingMode::Speculative`]).
    pub speculation: SpeculationStats,
    /// Per-phase wall-clock profile accumulated over the simulation's lifetime.
    /// All zero unless telemetry was attached via [`Simulation::set_telemetry`],
    /// so report equality checks between instrumented and plain runs must
    /// compare the other fields — and equality between two *uninstrumented*
    /// runs is unaffected.
    pub phases: PhaseProfile,
}

impl RunReport {
    /// Whether the run stopped because its requested condition held (a predicate became
    /// true, halting was reached, or stability was detected) rather than because the
    /// step budget ran out or the scheduler ran dry.
    #[must_use]
    pub fn condition_met(&self) -> bool {
        matches!(
            self.reason,
            StopReason::Predicate | StopReason::AllHalted | StopReason::Stable
        )
    }
}

/// Outcome of one bounded scheduler call.
enum StepOutcome {
    /// An interaction was selected and applied (plus possibly bulk-credited skips).
    Applied,
    /// The whole allowance was spent on bulk-credited ineffective selections.
    BudgetSpent,
    /// The scheduler produced nothing (single-node population).
    Dry,
}

/// A running execution of a protocol under a scheduler.
pub struct Simulation<P: Protocol, S: Scheduler = UniformScheduler> {
    world: World<P>,
    scheduler: S,
    stats: ExecutionStats,
    config: SimulationConfig,
    obs: Telemetry,
}

impl<P: Protocol> Simulation<P, UniformScheduler> {
    /// Creates a simulation with the uniform random scheduler of the paper, using the
    /// sampling mode recorded in the configuration.
    #[must_use]
    pub fn new(protocol: P, config: SimulationConfig) -> Simulation<P, UniformScheduler> {
        let scheduler = UniformScheduler::with_mode(config.seed, config.sampling)
            .with_speculation(config.speculation);
        Simulation::with_scheduler(protocol, config, scheduler)
    }
}

impl<P: SnapshotProtocol> Simulation<P, UniformScheduler> {
    /// Captures a versioned, checksummed snapshot of the running execution: the
    /// configuration, the statistics, the scheduler's RNG streams and sticky flags,
    /// and the world's full runtime state (including the sampler-visible component
    /// and class-table layouts). Snapshots are taken *between* steps — at the
    /// serialization points of the execution — and [`Simulation::resume`] rebuilds a
    /// simulation whose remaining trajectory is **byte-identical** to the
    /// uninterrupted run's, in every sampling mode and at every shard count (pinned
    /// by the crash-injection suite in `tests/crash_resume.rs`).
    ///
    /// Because work counters ([`IndexStats`], [`SpeculationStats`]) are excluded,
    /// byte equality of two snapshots is exactly "same execution state": the crash
    /// harness uses whole-snapshot comparison as its trajectory oracle.
    ///
    /// # Errors
    /// [`CoreError::SnapshotCorrupt`] when the protocol name does not fit the
    /// format's `u16` length prefix — a malicious or buggy protocol name must
    /// surface as a typed failure, never abort a worker mid-checkpoint.
    pub fn checkpoint(&self) -> crate::Result<Snapshot> {
        let mut out = SnapshotWriter::new();
        out.bytes(&MAGIC);
        out.u16(FORMAT_VERSION);
        out.str16(self.world.protocol().name())?;
        out.u64(self.config.n as u64);
        out.u64(self.config.seed);
        out.u64(self.config.max_steps);
        out.u8(self.config.sampling.snapshot_tag());
        out.u64(self.config.shards as u64);
        out.u64(self.config.speculation as u64);
        out.u64(self.stats.steps);
        out.u64(self.stats.effective_steps);
        out.u64(self.stats.skipped_steps);
        out.u64(self.stats.bonds_activated);
        out.u64(self.stats.bonds_deactivated);
        out.u64(self.stats.merges);
        out.u64(self.stats.splits);
        // World before scheduler: the scheduler's decoder needs the decoded world to
        // re-warm its enumeration cache.
        self.world.snapshot_encode(&mut out);
        self.scheduler.snapshot_encode(&self.world, &mut out);
        self.obs.trace(
            0,
            TraceEventKind::Checkpoint {
                bytes: out.len() as u64,
            },
        );
        Ok(Snapshot::seal(out))
    }

    /// Rebuilds a running simulation from a snapshot taken by
    /// [`Simulation::checkpoint`]. The protocol instance must be equivalent to the
    /// one the snapshot was taken with (same name, same transition function — the
    /// name is checked, the semantics are the caller's contract).
    ///
    /// # Errors
    /// [`CoreError::SnapshotProtocolMismatch`] when the snapshot names a different
    /// protocol; [`CoreError::SnapshotTruncated`] / [`CoreError::SnapshotCorrupt`]
    /// when the body is malformed (every id bounds-checked, scalar bookkeeping
    /// recounted, full invariant suite run — corrupt input never panics).
    pub fn resume(
        protocol: P,
        snapshot: &Snapshot,
    ) -> crate::Result<Simulation<P, UniformScheduler>> {
        fn corrupt(what: &'static str) -> CoreError {
            CoreError::SnapshotCorrupt { what }
        }
        let mut r = snapshot.body_reader();
        let name = r.str16()?;
        if name != protocol.name() {
            return Err(CoreError::SnapshotProtocolMismatch {
                snapshot: name.to_string(),
                protocol: protocol.name().to_string(),
            });
        }
        let n = usize::try_from(r.u64()?).map_err(|_| corrupt("population size out of range"))?;
        let seed = r.u64()?;
        let max_steps = r.u64()?;
        let sampling = SamplingMode::from_snapshot_tag(r.u8()?)
            .ok_or_else(|| corrupt("unknown sampling-mode tag"))?;
        let shards = usize::try_from(r.u64()?).map_err(|_| corrupt("shard count out of range"))?;
        let speculation =
            usize::try_from(r.u64()?).map_err(|_| corrupt("speculation window out of range"))?;
        if shards == 0 {
            return Err(corrupt("shard count is zero"));
        }
        let stats = ExecutionStats {
            steps: r.u64()?,
            effective_steps: r.u64()?,
            skipped_steps: r.u64()?,
            bonds_activated: r.u64()?,
            bonds_deactivated: r.u64()?,
            merges: r.u64()?,
            splits: r.u64()?,
        };
        let world = World::snapshot_decode(protocol, n, shards, &mut r)?;
        let scheduler =
            UniformScheduler::snapshot_decode(seed, sampling, speculation, &world, &mut r)?;
        if r.remaining() != 0 {
            return Err(corrupt("trailing bytes after the snapshot body"));
        }
        Ok(Simulation {
            world,
            scheduler,
            stats,
            config: SimulationConfig {
                n,
                seed,
                max_steps,
                sampling,
                shards,
                speculation,
            },
            obs: Telemetry::disabled(),
        })
    }
}

impl<P: Protocol, S: Scheduler> Simulation<P, S> {
    /// Creates a simulation with a custom scheduler.
    #[must_use]
    pub fn with_scheduler(protocol: P, config: SimulationConfig, scheduler: S) -> Simulation<P, S> {
        Simulation {
            world: World::with_shards(protocol, config.n, config.shards),
            scheduler,
            stats: ExecutionStats::default(),
            config,
            obs: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle to the simulation and its world (the world
    /// forwards it to the pair index). A disabled handle detaches: every hook
    /// degrades back to an early return. Telemetry never influences the sampled
    /// trajectory — it only observes it.
    pub fn set_telemetry(&mut self, obs: Telemetry) {
        self.world.set_telemetry(obs.clone());
        self.obs = obs;
    }

    /// The attached telemetry handle (disabled by default).
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.obs
    }

    /// The current configuration.
    #[must_use]
    pub fn world(&self) -> &World<P> {
        &self.world
    }

    /// Mutable access to the configuration (used by phased protocol compositions and by
    /// tests that need to pre-arrange a configuration).
    #[must_use]
    pub fn world_mut(&mut self) -> &mut World<P> {
        &mut self.world
    }

    /// The statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> ExecutionStats {
        self.stats
    }

    /// The configuration this simulation was created with.
    #[must_use]
    pub fn config(&self) -> SimulationConfig {
        self.config
    }

    /// Mutable access to the run configuration (the population size is fixed at
    /// construction; changing `n` here has no effect — adjust budgets instead).
    #[must_use]
    pub fn config_mut(&mut self) -> &mut SimulationConfig {
        &mut self.config
    }

    /// Executes a single scheduler step. Returns `false` when the scheduler could not
    /// produce an interaction (single-node population). In batched mode one call may
    /// credit many skipped ineffective selections to the step counters before applying
    /// the effective one.
    pub fn step(&mut self) -> bool {
        matches!(self.step_within(u64::MAX), StepOutcome::Applied)
    }

    /// One scheduler call with a step allowance (batched jumps that would overshoot it
    /// spend it on skipped ineffective selections instead).
    fn step_within(&mut self, max_steps: u64) -> StepOutcome {
        self.obs.set_step(self.stats.steps);
        let spec_before = self.scheduler.speculation_stats();
        // Between selections the speculative scheduler runs its optimistic epoch
        // (and restores the configuration exactly); every other scheduler no-ops.
        self.scheduler.prepare(&mut self.world);
        let mut sample = self.obs.phase(Phase::Sample);
        let picked = self
            .scheduler
            .next_interaction_bounded(&self.world, max_steps);
        let skipped = self.scheduler.drain_skipped_steps();
        sample.add_units(skipped + u64::from(picked.is_some()));
        drop(sample);
        if self.obs.is_enabled() {
            // The speculative epoch ran inside a muted delta scope; its commit /
            // rollback totals are re-emitted here, on the serial path, as events
            // stamped with the step that consumed the epoch's predictions.
            let spec = self.scheduler.speculation_stats();
            let committed = spec.committed - spec_before.committed;
            if committed > 0 {
                self.obs
                    .trace(0, TraceEventKind::SpeculationCommit { count: committed });
            }
            let rolled_back = spec.rolled_back - spec_before.rolled_back;
            if rolled_back > 0 {
                self.obs.trace(
                    0,
                    TraceEventKind::SpeculationRollback { count: rolled_back },
                );
            }
        }
        self.stats.steps += skipped;
        self.stats.skipped_steps += skipped;
        let Some(interaction) = picked else {
            return if skipped > 0 {
                StepOutcome::BudgetSpent
            } else {
                StepOutcome::Dry
            };
        };
        // Events emitted inside this apply (merge, split, flush, class churn)
        // are stamped with the 1-based ordinal of the step that caused them.
        self.obs.set_step(self.stats.steps + 1);
        let apply = self.obs.phase(Phase::Apply);
        let outcome = self.world.apply(&interaction);
        drop(apply);
        if self.obs.is_enabled() {
            let node = interaction.a.min(interaction.b);
            self.obs.trace(
                trace_lane(node, self.config.n),
                TraceEventKind::Selection {
                    effective: outcome.effective,
                },
            );
        }
        self.stats.steps += 1;
        if outcome.effective {
            self.stats.effective_steps += 1;
        }
        if outcome.bond_activated {
            self.stats.bonds_activated += 1;
        }
        if outcome.bond_deactivated {
            self.stats.bonds_deactivated += 1;
        }
        if outcome.merged {
            self.stats.merges += 1;
        }
        if outcome.split {
            self.stats.splits += 1;
        }
        StepOutcome::Applied
    }

    /// Executes up to `steps` scheduler steps (counting batched bulk credits); returns
    /// how many were actually executed.
    pub fn run_steps(&mut self, steps: u64) -> u64 {
        let start = self.stats.steps;
        while self.stats.steps - start < steps {
            let left = steps - (self.stats.steps - start);
            if matches!(self.step_within(left), StepOutcome::Dry) {
                break;
            }
        }
        self.stats.steps - start
    }

    /// Runs until the given predicate on the configuration holds (checked after every
    /// step and once before the first), until the step budget is exhausted, or until the
    /// scheduler runs dry.
    pub fn run_until(&mut self, mut predicate: impl FnMut(&World<P>) -> bool) -> RunReport {
        let start = self.stats;
        let mut reason = StopReason::StepBudget;
        if predicate(&self.world) {
            reason = StopReason::Predicate;
        } else {
            while self.stats.steps - start.steps < self.config.max_steps {
                let left = self.config.max_steps - (self.stats.steps - start.steps);
                match self.step_within(left) {
                    StepOutcome::Applied => {
                        if predicate(&self.world) {
                            reason = StopReason::Predicate;
                            break;
                        }
                    }
                    StepOutcome::BudgetSpent => {}
                    StepOutcome::Dry => {
                        reason = StopReason::NoInteraction;
                        break;
                    }
                }
            }
        }
        self.report_since(start, reason, false)
    }

    /// Runs until the configuration is stable (no effective interaction remains).
    ///
    /// With adaptive or batched sampling, stability is re-checked whenever the
    /// configuration version changed, through the incremental interaction index whose
    /// dirty-frontier amortisation bounds the total checking work by the applied deltas
    /// — so the run stops **exactly** at the stabilization step. Batched sampling
    /// additionally credits whole runs of ineffective selections in bulk (see
    /// [`SamplingMode::Batched`]), so the reported step counts keep the same
    /// distribution while the wall-clock cost is `O(1)` per *effective* step.
    ///
    /// With [`SamplingMode::Legacy`] the original engine is reproduced faithfully,
    /// including its cost model and stopping rule: the `O(n² · ports²)` full-scan
    /// stability check runs at geometrically increasing step intervals (starting at
    /// `max(n, 16) · 8`), so the reported step count overshoots the exact stabilization
    /// step by up to a constant factor, exactly as the pre-index implementation did.
    /// This is the baseline the scheduler n-sweep benchmarks against.
    pub fn run_until_stable(&mut self) -> RunReport {
        match self.config.sampling {
            SamplingMode::Adaptive
            | SamplingMode::Batched
            | SamplingMode::Sharded
            | SamplingMode::Speculative => self.run_until_stable_indexed(),
            SamplingMode::Legacy => self.run_until_stable_legacy(),
        }
    }

    /// Like [`Simulation::run_until_stable`], but step-budget exhaustion is a typed
    /// error instead of a report field. The carried step count is the execution's
    /// *lifetime* count — [`Simulation::resume`] restores the statistics with the
    /// rest of the runtime state, so a budget exhausted after a
    /// checkpoint/crash/resume cycle reports the same count as an uninterrupted run.
    ///
    /// # Errors
    /// [`CoreError::StepBudgetExhausted`] when the budget ran out before stability.
    pub fn try_run_until_stable(&mut self) -> crate::Result<RunReport> {
        let report = self.run_until_stable();
        if report.reason == StopReason::StepBudget {
            return Err(CoreError::StepBudgetExhausted {
                steps: self.stats.steps,
            });
        }
        Ok(report)
    }

    fn run_until_stable_indexed(&mut self) -> RunReport {
        let start = self.stats;
        // The configuration version gates re-checking: an unchanged version means the
        // previous "unstable" verdict still holds, so ineffective steps cost nothing.
        let mut checked_version = None;
        loop {
            let version = self.world.version();
            if checked_version != Some(version) {
                if self.world.is_stable() {
                    return self.report_since(start, StopReason::Stable, true);
                }
                checked_version = Some(version);
            }
            if self.stats.steps - start.steps >= self.config.max_steps {
                return self.report_since(start, StopReason::StepBudget, false);
            }
            let left = self.config.max_steps - (self.stats.steps - start.steps);
            match self.step_within(left) {
                StepOutcome::Applied | StepOutcome::BudgetSpent => {}
                StepOutcome::Dry => {
                    let stable = self.world.is_stable();
                    return self.report_since(start, StopReason::NoInteraction, stable);
                }
            }
        }
    }

    fn run_until_stable_legacy(&mut self) -> RunReport {
        let start = self.stats;
        let mut interval = (self.config.n as u64).max(16) * 8;
        loop {
            if self.world.is_stable_scan() {
                return self.report_since(start, StopReason::Stable, true);
            }
            if self.stats.steps - start.steps >= self.config.max_steps {
                return self.report_since(start, StopReason::StepBudget, false);
            }
            let budget_left = self.config.max_steps - (self.stats.steps - start.steps);
            let chunk = interval.min(budget_left);
            let executed = self.run_steps(chunk);
            if executed < chunk {
                let stable = self.world.is_stable_scan();
                return self.report_since(start, StopReason::NoInteraction, stable);
            }
            interval = interval.saturating_mul(2);
        }
    }

    /// Runs until every node is halted (used by terminating protocols in which all nodes
    /// eventually halt), the step budget is exhausted, or the scheduler runs dry.
    pub fn run_until_all_halted(&mut self) -> RunReport {
        let report = self.run_until(|w| w.all_halted());
        self.fixup_halt_reason(report)
    }

    /// Runs until at least one node is halted (terminating protocols in which the unique
    /// leader detects termination), the step budget is exhausted, or the scheduler runs
    /// dry.
    pub fn run_until_any_halted(&mut self) -> RunReport {
        let report = self.run_until(|w| w.any_halted());
        self.fixup_halt_reason(report)
    }

    fn fixup_halt_reason(&self, mut report: RunReport) -> RunReport {
        if report.reason == StopReason::Predicate {
            report.reason = StopReason::AllHalted;
        }
        report
    }

    /// The current output shape (largest component of output-state nodes).
    #[must_use]
    pub fn output_shape(&self) -> Shape {
        self.world.output_shape()
    }

    /// Per-shard load snapshot of the world with the scheduler's speculation
    /// counters merged in (the world alone cannot see them — speculation lives in
    /// the scheduler).
    #[must_use]
    pub fn shard_stats(&self) -> ShardStats {
        let mut stats = self.world.shard_stats();
        stats.speculation = self.scheduler.speculation_stats();
        stats
    }

    fn report_since(
        &self,
        start: ExecutionStats,
        reason: StopReason,
        stabilized: bool,
    ) -> RunReport {
        RunReport {
            steps: self.stats.steps - start.steps,
            effective_steps: self.stats.effective_steps - start.effective_steps,
            reason,
            stabilized: stabilized || reason == StopReason::Stable,
            index: self.world.index_stats(),
            speculation: self.scheduler.speculation_stats(),
            phases: self.obs.phase_profile(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::GreedyScheduler;
    use crate::{NodeId, Transition};
    use nc_geometry::Dir;

    /// Leader-driven line: the head grabs free nodes right-port-to-left-port (as in the
    /// paper's simplified spanning-line protocol); when the line has `target` nodes the
    /// head halts.
    struct ChainOf {
        target: usize,
    }

    #[derive(Clone, PartialEq, Debug)]
    enum S {
        Head(usize),
        Body,
        Free,
        Done,
    }

    impl Protocol for ChainOf {
        type State = S;

        fn initial_state(&self, node: NodeId, _n: usize) -> S {
            if node.index() == 0 {
                S::Head(1)
            } else {
                S::Free
            }
        }

        fn transition(
            &self,
            a: &S,
            pa: Dir,
            b: &S,
            pb: Dir,
            bonded: bool,
        ) -> Option<Transition<S>> {
            match (a, b) {
                (S::Head(k), S::Free) if !bonded && pa == Dir::Right && pb == Dir::Left => {
                    let next = if k + 1 == self.target {
                        S::Done
                    } else {
                        S::Head(k + 1)
                    };
                    Some(Transition {
                        a: S::Body,
                        b: next,
                        bond: true,
                    })
                }
                _ => None,
            }
        }

        fn is_halted(&self, state: &S) -> bool {
            matches!(state, S::Done)
        }
    }

    impl crate::SnapshotProtocol for ChainOf {
        fn encode_state(&self, state: &S, out: &mut crate::SnapshotWriter) {
            match state {
                S::Head(k) => {
                    out.u8(0);
                    out.u64(*k as u64);
                }
                S::Body => out.u8(1),
                S::Free => out.u8(2),
                S::Done => out.u8(3),
            }
        }

        fn decode_state(&self, r: &mut crate::SnapshotReader<'_>) -> crate::Result<S> {
            Ok(match r.u8()? {
                0 => {
                    let k = usize::try_from(r.u64()?).map_err(|_| CoreError::SnapshotCorrupt {
                        what: "chain head counter exceeds the platform word size",
                    })?;
                    S::Head(k)
                }
                1 => S::Body,
                2 => S::Free,
                3 => S::Done,
                _ => {
                    return Err(CoreError::SnapshotCorrupt {
                        what: "unknown chain state tag",
                    })
                }
            })
        }
    }

    #[test]
    fn run_until_stable_builds_the_chain() {
        let mut sim = Simulation::new(ChainOf { target: 5 }, SimulationConfig::new(5).with_seed(3));
        let report = sim.run_until_stable();
        assert!(report.stabilized);
        assert_eq!(report.reason, StopReason::Stable);
        assert!(report.steps >= report.effective_steps);
        assert!(sim.output_shape().is_line(5));
        assert_eq!(sim.stats().merges, 4);
    }

    #[test]
    fn run_until_any_halted_detects_termination() {
        let mut sim = Simulation::new(ChainOf { target: 4 }, SimulationConfig::new(6).with_seed(9));
        let report = sim.run_until_any_halted();
        assert_eq!(report.reason, StopReason::AllHalted);
        assert_eq!(sim.world().halted_nodes().len(), 1);
        // The chain has exactly `target` nodes even though the population is larger.
        let chain = sim.world().shape_of(sim.world().halted_nodes()[0], false);
        assert!(chain.is_line(4));
    }

    #[test]
    fn greedy_scheduler_fast_forwards() {
        let mut sim = Simulation::with_scheduler(
            ChainOf { target: 6 },
            SimulationConfig::new(6),
            GreedyScheduler,
        );
        let report = sim.run_until_stable();
        assert!(report.stabilized);
        // Greedy schedules only effective interactions.
        assert_eq!(report.steps, report.effective_steps);
        assert_eq!(report.effective_steps, 5);
    }

    #[test]
    fn step_budget_is_respected() {
        let mut sim = Simulation::new(
            ChainOf { target: 4 },
            SimulationConfig::new(4).with_seed(1).with_max_steps(3),
        );
        let report = sim.run_until(|w| w.all_halted());
        assert!(matches!(
            report.reason,
            StopReason::StepBudget | StopReason::Predicate
        ));
        assert!(report.steps <= 3);
    }

    #[test]
    fn single_node_population_runs_dry() {
        let mut sim = Simulation::new(ChainOf { target: 2 }, SimulationConfig::new(1));
        assert!(!sim.step());
        let report = sim.run_until_stable();
        assert_eq!(report.reason, StopReason::Stable);
    }

    /// Steps both simulations once and asserts their checkpoints stay byte-identical.
    fn lockstep_assert(
        reference: &mut Simulation<ChainOf, crate::scheduler::UniformScheduler>,
        resumed: &mut Simulation<ChainOf, crate::scheduler::UniformScheduler>,
        step: usize,
    ) {
        let a = reference.step();
        let b = resumed.step();
        assert_eq!(a, b, "step availability diverged at lockstep step {step}");
        assert_eq!(
            reference.checkpoint().expect("checkpoint").as_bytes(),
            resumed.checkpoint().expect("checkpoint").as_bytes(),
            "checkpoints diverged at lockstep step {step}"
        );
    }

    #[test]
    fn checkpoint_resume_round_trip_is_byte_identical() {
        for sampling in [
            SamplingMode::Adaptive,
            SamplingMode::Batched,
            SamplingMode::Sharded,
            SamplingMode::Speculative,
        ] {
            let config = SimulationConfig::new(6)
                .with_seed(7)
                .with_sampling(sampling)
                .with_shards(2)
                .with_speculation(4);
            let mut reference = Simulation::new(ChainOf { target: 6 }, config);
            for _ in 0..10 {
                reference.step();
            }
            let snapshot = reference.checkpoint().expect("checkpoint");
            let mut resumed = Simulation::resume(ChainOf { target: 6 }, &snapshot)
                .unwrap_or_else(|e| panic!("resume failed for {sampling:?}: {e}"));
            assert_eq!(
                reference.checkpoint().expect("checkpoint").as_bytes(),
                resumed.checkpoint().expect("checkpoint").as_bytes(),
                "resume is not a fixed point for {sampling:?}"
            );
            for step in 0..40 {
                lockstep_assert(&mut reference, &mut resumed, step);
            }
        }
    }

    #[test]
    fn resume_survives_round_trip_through_raw_bytes() {
        let mut sim = Simulation::new(ChainOf { target: 4 }, SimulationConfig::new(4).with_seed(2));
        sim.run_until_stable();
        let bytes = sim.checkpoint().expect("checkpoint").into_bytes();
        let snapshot = Snapshot::from_bytes(bytes).expect("sealed snapshot must validate");
        let resumed = Simulation::resume(ChainOf { target: 4 }, &snapshot).expect("resume");
        assert_eq!(resumed.stats(), sim.stats());
        assert_eq!(resumed.world().bond_count(), sim.world().bond_count());
    }

    #[test]
    fn checkpoint_with_oversized_protocol_name_is_a_typed_error() {
        /// A protocol whose name cannot fit the snapshot format's `u16` length
        /// prefix — the checkpoint must fail typed, never abort the caller.
        struct HugeName {
            name: String,
        }

        impl Protocol for HugeName {
            type State = u8;

            fn initial_state(&self, _node: NodeId, _n: usize) -> u8 {
                0
            }

            fn transition(
                &self,
                _a: &u8,
                _pa: Dir,
                _b: &u8,
                _pb: Dir,
                _bonded: bool,
            ) -> Option<Transition<u8>> {
                None
            }

            fn name(&self) -> &str {
                &self.name
            }
        }

        impl crate::SnapshotProtocol for HugeName {
            fn encode_state(&self, state: &u8, out: &mut crate::SnapshotWriter) {
                out.u8(*state);
            }

            fn decode_state(&self, r: &mut crate::SnapshotReader<'_>) -> crate::Result<u8> {
                r.u8()
            }
        }

        let protocol = HugeName {
            name: "x".repeat(usize::from(u16::MAX) + 1),
        };
        let sim = Simulation::new(protocol, SimulationConfig::new(2).with_seed(1));
        assert_eq!(
            sim.checkpoint().unwrap_err(),
            CoreError::SnapshotCorrupt {
                what: "string too long for a u16 length prefix"
            }
        );
    }

    #[test]
    fn try_run_until_stable_reports_lifetime_steps_across_resume() {
        let config = SimulationConfig::new(6).with_seed(5).with_max_steps(3);
        let mut sim = Simulation::new(ChainOf { target: 6 }, config);
        let err = sim.try_run_until_stable().unwrap_err();
        assert_eq!(err, CoreError::StepBudgetExhausted { steps: 3 });

        let snapshot = sim.checkpoint().expect("checkpoint");
        let mut resumed = Simulation::resume(ChainOf { target: 6 }, &snapshot).expect("resume");
        let err = resumed.try_run_until_stable().unwrap_err();
        // The budget counts per call, but the carried step count is the lifetime total:
        // 3 steps before the crash plus 3 after the resume.
        assert_eq!(err, CoreError::StepBudgetExhausted { steps: 6 });
    }

    /// Runs a pinned configuration with telemetry attached and returns the trace.
    fn traced_run(shards: usize, sampling: SamplingMode) -> Vec<nc_obs::TraceEvent> {
        let config = SimulationConfig::new(8)
            .with_seed(42)
            .with_sampling(sampling)
            .with_shards(shards)
            .with_speculation(4);
        let mut sim = Simulation::new(ChainOf { target: 8 }, config);
        sim.set_telemetry(Telemetry::enabled());
        sim.run_until_stable();
        sim.telemetry().trace_events()
    }

    #[test]
    fn trace_is_identical_across_shard_counts() {
        for sampling in [SamplingMode::Adaptive, SamplingMode::Sharded] {
            let one = traced_run(1, sampling);
            let four = traced_run(4, sampling);
            assert!(!one.is_empty(), "pinned run must emit events");
            assert_eq!(
                one, four,
                "trace diverged across shard counts ({sampling:?})"
            );
        }
        // Speculation is an execution-layout artifact (it degrades to sharded
        // sampling at one shard), so its commit/rollback events legitimately
        // differ across shard counts — but the trajectory-level events must
        // still agree exactly once those are filtered out.
        let committed_only = |events: Vec<nc_obs::TraceEvent>| {
            events
                .into_iter()
                .filter(|e| {
                    !matches!(
                        e.kind,
                        TraceEventKind::SpeculationCommit { .. }
                            | TraceEventKind::SpeculationRollback { .. }
                    )
                })
                .collect::<Vec<_>>()
        };
        let one = committed_only(traced_run(1, SamplingMode::Speculative));
        let four = committed_only(traced_run(4, SamplingMode::Speculative));
        assert_eq!(one, four, "committed trace diverged under speculation");
    }

    #[test]
    fn telemetry_does_not_perturb_the_trajectory() {
        let config = SimulationConfig::new(6).with_seed(7).with_speculation(4);
        let mut plain = Simulation::new(ChainOf { target: 6 }, config);
        let mut traced = Simulation::new(ChainOf { target: 6 }, config);
        traced.set_telemetry(Telemetry::enabled());
        let a = plain.run_until_stable();
        let mut b = traced.run_until_stable();
        assert!(b.phases.get(Phase::Sample).calls > 0);
        b.phases = PhaseProfile::default();
        assert_eq!(a, b);
        assert_eq!(plain.stats(), traced.stats());
    }

    #[test]
    fn run_until_predicate_counts_from_current_call() {
        let mut sim = Simulation::new(
            ChainOf { target: 3 },
            SimulationConfig::new(3).with_seed(11),
        );
        let first = sim.run_until(|w| w.bond_count() >= 1);
        assert_eq!(first.reason, StopReason::Predicate);
        let second = sim.run_until(|w| w.bond_count() >= 2);
        assert_eq!(second.reason, StopReason::Predicate);
        assert_eq!(sim.stats().steps, first.steps + second.steps);
    }
}
