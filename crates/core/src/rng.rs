//! The single seeding point for every random number generator in the runtime.
//!
//! Both samplers — the geometric [`crate::scheduler::UniformScheduler`] and (through it)
//! the population-protocol clique engine — and the Monte-Carlo experiment helpers build
//! their generators here, so changing the generator or the seeding discipline is a
//! one-module change. This replaces the scattered `StdRng::from_entropy()` /
//! `StdRng::seed_from_u64` call sites of the original tree.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic generator for the given seed. Fixed seeds make executions
/// reproducible; all reproducibility guarantees in this workspace are stated against
/// this constructor.
#[must_use]
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A generator seeded from ambient entropy (wall clock + process counter). Use only
/// where reproducibility is explicitly not wanted.
#[must_use]
pub fn from_entropy() -> StdRng {
    seeded(rand::entropy_seed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn seeded_is_deterministic_and_entropy_is_not() {
        assert_eq!(seeded(5).next_u64(), seeded(5).next_u64());
        assert_ne!(from_entropy().next_u64(), from_entropy().next_u64());
    }
}
