//! The single seeding point for every random number generator in the runtime.
//!
//! Both samplers — the geometric [`crate::scheduler::UniformScheduler`] and (through it)
//! the population-protocol clique engine — and the Monte-Carlo experiment helpers build
//! their generators here, so changing the generator or the seeding discipline is a
//! one-module change. This replaces the scattered `StdRng::from_entropy()` /
//! `StdRng::seed_from_u64` call sites of the original tree.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// A deterministic generator for the given seed. Fixed seeds make executions
/// reproducible; all reproducibility guarantees in this workspace are stated against
/// this constructor.
#[must_use]
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A generator seeded from ambient entropy (wall clock + process counter). Use only
/// where reproducibility is explicitly not wanted.
#[must_use]
pub fn from_entropy() -> StdRng {
    seeded(rand::entropy_seed())
}

/// A deterministic **substream** of a base seed: an independent generator derived from
/// `(seed, stream)` through SplitMix64-style mixing, so distinct stream indices give
/// statistically independent streams of the same base seed.
///
/// The sharded scheduler keys its substreams by the *effective-selection ordinal* — a
/// quantity determined by the execution prefix, not by the shard layout — which is what
/// makes sharded executions byte-identical across shard counts: each shard can derive
/// the draw for logical step `k` from `(seed, k)` alone, without threading one
/// sequential generator through the shards, and without the draw depending on which
/// shard happens to own the sampled pair. (Keying by shard id instead would tie the
/// stream to the layout and break the 1/2/4-shard equivalence that `tests/sharded.rs`
/// pins.) It also makes the stream prefix-stable: replaying a run with a different step
/// budget, or interleaving extra read-only queries, cannot shift later draws.
#[must_use]
pub fn substream(seed: u64, stream: u64) -> StdRng {
    // SplitMix64 finalizer (bijective, full-avalanche), applied to seed and stream
    // independently and then to their combination — the keyed analogue of the
    // sequential seeding discipline the xoshiro authors recommend.
    fn finalize(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let key = finalize(seed.wrapping_add(0x9E37_79B9_7F4A_7C15));
    let lane = finalize(
        stream
            .wrapping_mul(0xD605_2352_35AB_B6E1)
            .wrapping_add(0x2545_F491_4F6C_DD1D),
    );
    seeded(finalize(key ^ lane))
}

/// Draws the index `T ≥ 1` of the first success in a sequence of independent Bernoulli
/// trials with success probability `p`, i.e. a geometric variate with
/// `P(T = k) = (1 − p)^{k−1} · p`, by inversion of the CDF with a single uniform draw.
///
/// This is the batched sampler's jump length: on a frozen configuration each uniform
/// selection is effective independently with probability `p = effective / permissible`,
/// so the number of selections up to and including the first effective one is exactly
/// this distribution.
///
/// # Panics
/// Panics unless `0 < p ≤ 1`.
#[must_use]
pub fn geometric(rng: &mut impl RngCore, p: f64) -> u64 {
    assert!(p > 0.0 && p <= 1.0, "geometric needs 0 < p ≤ 1, got {p}");
    if p >= 1.0 {
        return 1;
    }
    // A uniform in (0, 1): the standard 53-bit construction, rejecting exact zero so
    // the logarithm below is finite.
    let unit = loop {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if u > 0.0 {
            break u;
        }
    };
    // ln(1 − p) via ln_1p keeps full precision for small p (sparse configurations).
    let t = 1.0 + (unit.ln() / (-p).ln_1p()).floor();
    if t >= u64::MAX as f64 {
        u64::MAX
    } else {
        t as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_matches_inverse_probability() {
        let mut rng = seeded(7);
        for &p in &[0.5f64, 0.1, 0.01] {
            let trials = 20_000;
            let total: u64 = (0..trials).map(|_| geometric(&mut rng, p)).sum();
            let mean = total as f64 / f64::from(trials);
            let expected = 1.0 / p;
            assert!(
                (mean - expected).abs() < expected * 0.1,
                "p = {p}: mean {mean}, expected {expected}"
            );
        }
    }

    #[test]
    fn geometric_with_certain_success_is_one() {
        let mut rng = seeded(1);
        assert_eq!(geometric(&mut rng, 1.0), 1);
    }

    #[test]
    fn seeded_is_deterministic_and_entropy_is_not() {
        assert_eq!(seeded(5).next_u64(), seeded(5).next_u64());
        assert_ne!(from_entropy().next_u64(), from_entropy().next_u64());
    }

    #[test]
    fn substreams_are_deterministic_and_pairwise_distinct() {
        assert_eq!(substream(9, 3).next_u64(), substream(9, 3).next_u64());
        let mut seen = std::collections::HashSet::new();
        for seed in 0..8u64 {
            for stream in 0..64u64 {
                assert!(
                    seen.insert(substream(seed, stream).next_u64()),
                    "collision at seed {seed}, stream {stream}"
                );
            }
        }
    }

    #[test]
    fn substream_draws_look_uniform() {
        // First draw of consecutive stream indices: the keyed derivation must not leak
        // the counter structure into the low bits.
        let hits = (0..10_000u64)
            .filter(|&k| substream(42, k).next_u64().is_multiple_of(4))
            .count();
        assert!((2_200..=2_800).contains(&hits), "hits = {hits}");
    }
}
