//! The single seeding point for every random number generator in the runtime.
//!
//! Both samplers — the geometric [`crate::scheduler::UniformScheduler`] and (through it)
//! the population-protocol clique engine — and the Monte-Carlo experiment helpers build
//! their generators here, so changing the generator or the seeding discipline is a
//! one-module change. This replaces the scattered `StdRng::from_entropy()` /
//! `StdRng::seed_from_u64` call sites of the original tree.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// A deterministic generator for the given seed. Fixed seeds make executions
/// reproducible; all reproducibility guarantees in this workspace are stated against
/// this constructor.
#[must_use]
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A generator seeded from ambient entropy (wall clock + process counter). Use only
/// where reproducibility is explicitly not wanted.
#[must_use]
pub fn from_entropy() -> StdRng {
    seeded(rand::entropy_seed())
}

/// Draws the index `T ≥ 1` of the first success in a sequence of independent Bernoulli
/// trials with success probability `p`, i.e. a geometric variate with
/// `P(T = k) = (1 − p)^{k−1} · p`, by inversion of the CDF with a single uniform draw.
///
/// This is the batched sampler's jump length: on a frozen configuration each uniform
/// selection is effective independently with probability `p = effective / permissible`,
/// so the number of selections up to and including the first effective one is exactly
/// this distribution.
///
/// # Panics
/// Panics unless `0 < p ≤ 1`.
#[must_use]
pub fn geometric(rng: &mut impl RngCore, p: f64) -> u64 {
    assert!(p > 0.0 && p <= 1.0, "geometric needs 0 < p ≤ 1, got {p}");
    if p >= 1.0 {
        return 1;
    }
    // A uniform in (0, 1): the standard 53-bit construction, rejecting exact zero so
    // the logarithm below is finite.
    let unit = loop {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if u > 0.0 {
            break u;
        }
    };
    // ln(1 − p) via ln_1p keeps full precision for small p (sparse configurations).
    let t = 1.0 + (unit.ln() / (-p).ln_1p()).floor();
    if t >= u64::MAX as f64 {
        u64::MAX
    } else {
        t as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_matches_inverse_probability() {
        let mut rng = seeded(7);
        for &p in &[0.5f64, 0.1, 0.01] {
            let trials = 20_000;
            let total: u64 = (0..trials).map(|_| geometric(&mut rng, p)).sum();
            let mean = total as f64 / f64::from(trials);
            let expected = 1.0 / p;
            assert!(
                (mean - expected).abs() < expected * 0.1,
                "p = {p}: mean {mean}, expected {expected}"
            );
        }
    }

    #[test]
    fn geometric_with_certain_success_is_one() {
        let mut rng = seeded(1);
        assert_eq!(geometric(&mut rng, 1.0), 1);
    }

    #[test]
    fn seeded_is_deterministic_and_entropy_is_not() {
        assert_eq!(seeded(5).next_u64(), seeded(5).next_u64());
        assert_ne!(from_entropy().next_u64(), from_entropy().next_u64());
    }
}
