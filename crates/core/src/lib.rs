//! The geometric network-constructor model of Michail (2015) and a discrete-event
//! simulator for it.
//!
//! A *solution of automata* consists of `n` finite-state nodes, each with four (2D) or six
//! (3D) ports. An adversary (here: a seeded uniform-random, hence fair-with-probability-1)
//! scheduler repeatedly picks a *permissible* pair of node-ports — one whose bond is
//! already active, or one that could be activated so that the union of the two rigid
//! components is still a valid grid shape — and the two nodes apply a common transition
//! function that may update their states and the state (active/inactive) of the bond
//! between the chosen ports.
//!
//! The crate provides:
//!
//! * [`Protocol`] — the trait a constructor implements (Definition 1 of the paper);
//! * [`World`] — a configuration: node states, bonds, and rigid component embeddings;
//! * [`Simulation`] — a protocol + world + scheduler, with run-to-stabilization /
//!   run-to-termination helpers and execution statistics;
//! * [`scheduler`] — the uniform random scheduler (and deterministic ones for tests).
//!
//! # Example: a two-node handshake
//!
//! ```
//! use nc_core::{NodeId, Protocol, Simulation, SimulationConfig, Transition};
//! use nc_geometry::Dir;
//!
//! /// Nodes start as `Idle`; any two idle nodes bond and become `Done`.
//! struct Handshake;
//!
//! #[derive(Clone, PartialEq, Debug)]
//! enum S { Idle, Done }
//!
//! impl Protocol for Handshake {
//!     type State = S;
//!     fn initial_state(&self, _node: NodeId, _n: usize) -> S { S::Idle }
//!     fn transition(&self, a: &S, _pa: Dir, b: &S, _pb: Dir, bonded: bool)
//!         -> Option<Transition<S>>
//!     {
//!         if !bonded && *a == S::Idle && *b == S::Idle {
//!             Some(Transition { a: S::Done, b: S::Done, bond: true })
//!         } else {
//!             None
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Handshake, SimulationConfig::new(2).with_seed(1));
//! let report = sim.run_until_stable();
//! assert!(report.stabilized);
//! assert_eq!(sim.world().bond_count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
mod component;
mod delta;
mod error;
mod index;
mod lock;
mod node;
mod protocol;
pub mod rng;
pub mod scheduler;
pub mod shard;
mod simulation;
pub mod snapshot;
mod stats;
mod world;

pub use adversary::{EclipseScheduler, RoundRobinScheduler, WorstCaseScheduler};
pub use component::{Component, Placement};
pub use delta::Epoch;
pub use error::CoreError;
pub use index::IndexStats;
pub use lock::{panic_message, relock};
pub use node::NodeId;
pub use protocol::{Protocol, Transition};
pub use scheduler::SamplingMode;
pub use simulation::{RunReport, Simulation, SimulationConfig, StopReason};
pub use snapshot::{Snapshot, SnapshotProtocol, SnapshotReader, SnapshotWriter};
pub use stats::{ExecutionStats, ShardStats, SpeculationStats};
pub use world::{Interaction, InteractionOutcome, Permissibility, World};

/// Re-exported telemetry types (see `nc_obs`): downstream crates attach a
/// [`Telemetry`] handle via [`Simulation::set_telemetry`] / [`World::set_telemetry`]
/// without depending on the observability crate directly.
pub use nc_obs::{Phase, PhaseProfile, PhaseStat, Telemetry, TraceEvent, TraceEventKind};

/// Hard cap on simultaneously live state classes of the permissible-pair index.
/// Protocols that can bound their live state diversity below this may opt into batched
/// sampling up front (the population-protocol engine does); protocols exceeding it at
/// runtime overflow the index and fall back to adaptive sampling.
pub use index::CLASS_CAP as MAX_LIVE_STATE_CLASSES;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CoreError>;
