//! Execution statistics.

/// Counters accumulated while running a simulation.
///
/// "Steps" follow the paper's convention: every selection of the scheduler is one step,
/// whether or not the selected interaction is effective.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecutionStats {
    /// Scheduler selections (interactions), effective or not. Includes the steps
    /// credited in bulk by the batched sampler (see `skipped_steps`).
    pub steps: u64,
    /// Interactions that changed a state or a bond.
    pub effective_steps: u64,
    /// Of `steps`, how many were credited in bulk by the batched sampler's geometric
    /// jumps (ineffective selections that were counted without being drawn one by
    /// one). Always zero outside `SamplingMode::Batched`.
    pub skipped_steps: u64,
    /// Bond activations.
    pub bonds_activated: u64,
    /// Bond deactivations.
    pub bonds_deactivated: u64,
    /// Component merges (two components becoming one).
    pub merges: u64,
    /// Component splits (one component becoming two).
    pub splits: u64,
}

impl ExecutionStats {
    /// Fraction of steps that were effective (0 when no step has been taken).
    #[must_use]
    pub fn effectiveness(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.effective_steps as f64 / self.steps as f64
        }
    }

    /// Merges the counters of another stats block into this one.
    pub fn absorb(&mut self, other: &ExecutionStats) {
        self.steps += other.steps;
        self.effective_steps += other.effective_steps;
        self.skipped_steps += other.skipped_steps;
        self.bonds_activated += other.bonds_activated;
        self.bonds_deactivated += other.bonds_deactivated;
        self.merges += other.merges;
        self.splits += other.splits;
    }
}

/// Counters of the speculative execution engine (`SamplingMode::Speculative`): how
/// many interactions were executed optimistically ahead of the serialization point,
/// how many of them the canonical sequential order confirmed, and why the rest were
/// rolled back. All counters are cumulative over the scheduler's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpeculationStats {
    /// Interactions applied optimistically inside speculation epochs.
    pub speculated: u64,
    /// Speculated interactions confirmed by the canonical sequential replay (the
    /// speculative and canonical timelines agreed at that ordinal).
    pub committed: u64,
    /// Speculated interactions discarded because the canonical replay diverged
    /// before reaching them (the Time-Warp rollback cost).
    pub rolled_back: u64,
    /// Windows that ended in a divergence from the canonical order.
    pub conflicts: u64,
    /// Conflicts whose committed prefix merged two components (the merge changed
    /// another shard's jump distribution or selection ordinal).
    pub conflict_merges: u64,
    /// Conflicts whose committed prefix split a component.
    pub conflict_splits: u64,
    /// Conflicts caused by state-class count deltas alone (no merge or split: a
    /// state write shifted the per-class aggregates the jump is drawn from).
    pub conflict_class_deltas: u64,
    /// Of all conflicts, how many had a cross-shard interaction (participants owned
    /// by different shards) in the speculated prefix — counted *in addition to* the
    /// cause counters above.
    pub conflict_cross_shard: u64,
}

impl SpeculationStats {
    /// Fraction of speculated interactions that were rolled back (0 when nothing
    /// was speculated).
    #[must_use]
    pub fn rollback_rate(&self) -> f64 {
        if self.speculated == 0 {
            0.0
        } else {
            self.rolled_back as f64 / self.speculated as f64
        }
    }
}

/// Per-shard load and routing snapshot of a [`crate::World`], as reported by
/// [`crate::World::shard_stats`]. All vectors have one entry per shard, in shard
/// order; the index-backed loads (singletons, free ports, intra pairs) are zero while
/// the permissible-pair index has not been activated.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Number of shards the world's runtime structures are partitioned into.
    pub shards: usize,
    /// Nodes owned per shard (the contiguous id-range sizes; sums to `n`).
    pub nodes: Vec<usize>,
    /// Free singletons registered per shard (sums to the live singleton count).
    pub singletons: Vec<usize>,
    /// Free multi-component ports registered per shard.
    pub free_ports: Vec<usize>,
    /// Intra-component pairs owned per shard (by smaller endpoint).
    pub intra_pairs: Vec<usize>,
    /// Merges/splits whose two participants lived in different shards — the traffic
    /// the cross-shard pending queues routed.
    pub cross_shard_events: u64,
    /// Speculative-execution counters (all zero outside `SamplingMode::Speculative`;
    /// filled by [`crate::Simulation::shard_stats`], which merges the scheduler's
    /// counters into the world's layout snapshot).
    pub speculation: SpeculationStats,
}

impl ShardStats {
    /// Total registered singletons across shards.
    #[must_use]
    pub fn total_singletons(&self) -> usize {
        self.singletons.iter().sum()
    }

    /// Total registered free ports across shards.
    #[must_use]
    pub fn total_free_ports(&self) -> usize {
        self.free_ports.iter().sum()
    }

    /// Total intra-component pairs across shards.
    #[must_use]
    pub fn total_intra_pairs(&self) -> usize {
        self.intra_pairs.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_stats_totals_sum_over_shards() {
        let stats = ShardStats {
            shards: 3,
            nodes: vec![4, 4, 2],
            singletons: vec![1, 2, 0],
            free_ports: vec![3, 0, 1],
            intra_pairs: vec![5, 1, 0],
            cross_shard_events: 7,
            speculation: SpeculationStats::default(),
        };
        assert_eq!(stats.total_singletons(), 3);
        assert_eq!(stats.total_free_ports(), 4);
        assert_eq!(stats.total_intra_pairs(), 6);
    }

    #[test]
    fn effectiveness_ratio() {
        let mut s = ExecutionStats::default();
        assert_eq!(s.effectiveness(), 0.0);
        s.steps = 10;
        s.effective_steps = 4;
        assert!((s.effectiveness() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn absorb_adds_counters() {
        let mut a = ExecutionStats {
            steps: 5,
            effective_steps: 2,
            skipped_steps: 1,
            bonds_activated: 1,
            bonds_deactivated: 0,
            merges: 1,
            splits: 0,
        };
        let b = ExecutionStats {
            steps: 7,
            effective_steps: 3,
            skipped_steps: 2,
            bonds_activated: 2,
            bonds_deactivated: 1,
            merges: 0,
            splits: 1,
        };
        a.absorb(&b);
        assert_eq!(a.steps, 12);
        assert_eq!(a.skipped_steps, 3);
        assert_eq!(a.effective_steps, 5);
        assert_eq!(a.bonds_activated, 3);
        assert_eq!(a.bonds_deactivated, 1);
        assert_eq!(a.merges, 1);
        assert_eq!(a.splits, 1);
    }
}
