//! The per-epoch delta log: undoable records of every world mutation, powering
//! [`crate::World::checkpoint`] / [`crate::World::rollback`].
//!
//! # Design
//!
//! While at least one checkpoint is open, every mutation of the world's *logical*
//! state (a state write, a bond link write, a component-membership or embedding
//! change, a component-slot allocation) appends one undoable record capturing the
//! overwritten value. A rollback replays the records in strict reverse order, which
//! restores every touched slot to its checkpointed value — by induction over the
//! record sequence: the last record for a slot was appended *before* the first
//! overwrite of that slot within the epoch, so undoing it last reinstates the
//! original value.
//!
//! Three kinds of state deliberately take a **snapshot** in the epoch frame instead
//! of per-mutation records, because they are small, interior-mutable, or maintained
//! as running scalars: the dirty-frontier memoisation of the interaction index, the
//! per-shard pending queues of the pair index, and the `O(1)` component bookkeeping
//! scalars (`bond_count`, `Σ|component|²`, live component count, cross-shard event
//! counter). The permissible-pair index itself keeps its own operation log (see
//! `crate::index`), whose position is recorded here so a rollback can unwind the
//! index to the exact sub-index layouts and aggregate counts of the checkpoint.
//!
//! Two things are intentionally **not** rolled back: monotone work counters
//! ([`crate::IndexStats`] — they report lifetime work, and the speculative applies
//! genuinely happened), and the configuration *version*, which is bumped once per
//! rollback instead of rewound — versions must stay monotone so that version-keyed
//! caches (sampler batches, enumeration caches) re-derive from the restored state
//! rather than replaying a stale structure whose version collides.
//!
//! Checkpoints nest: frames form a stack, and rolling back to an outer epoch
//! discards the inner ones. This is what lets the delta-log exactness suite wrap a
//! checkpoint around every apply of a long run while the speculative scheduler keeps
//! its own epoch open.

use crate::world::PairMode;
use crate::{Component, CoreError, Interaction, NodeId, Placement};
use nc_geometry::Dir;

/// An opaque handle to an open checkpoint, returned by [`crate::World::checkpoint`]
/// and consumed by [`crate::World::rollback`] / [`crate::World::release`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Epoch {
    pub(crate) id: u64,
}

/// One undoable world mutation: the overwritten value of a single slot.
pub(crate) enum WorldRecord<S> {
    /// `states[node]` was overwritten; `old` is the previous state.
    State { node: usize, old: S },
    /// `halted[node]` was overwritten.
    Halted { node: usize, old: bool },
    /// `links[node][port]` was overwritten.
    Link {
        node: usize,
        port: usize,
        old: Option<(NodeId, Dir)>,
    },
    /// `comp_of[node]` was overwritten.
    CompOf { node: usize, old: usize },
    /// `placements[node]` was overwritten.
    PlacementOf { node: usize, old: Placement },
    /// `components[idx]` was overwritten wholesale (merge absorption/growth, split
    /// shrinkage, new-slot assignment); `old` is a full clone of the previous value.
    CompSlot { idx: usize, old: Option<Component> },
    /// `components` grew by one pushed slot; undone by popping it.
    CompPush,
}

/// The per-checkpoint frame: log positions plus the snapshot-restored state.
pub(crate) struct EpochFrame {
    pub(crate) id: u64,
    /// Length of the world record log at checkpoint time.
    pub(crate) world_pos: usize,
    /// Length of the pair index's operation log at checkpoint time.
    pub(crate) index_pos: usize,
    /// Set when an inner rollback had to rebuild the pair index from scratch (its
    /// operation log no longer reaches back to this frame): a rollback to this frame
    /// must rebuild too instead of unwinding ops.
    pub(crate) index_rebuilt: bool,
    // --- scalar snapshots ---------------------------------------------------------
    pub(crate) bond_count: usize,
    pub(crate) sum_sq_sizes: u64,
    pub(crate) live_components: usize,
    pub(crate) cross_shard_events: u64,
    // --- interaction-index frontier snapshot (memoisation, small) -----------------
    pub(crate) dirty: Vec<bool>,
    pub(crate) queues: Vec<Vec<NodeId>>,
    pub(crate) candidate: Option<Interaction>,
    pub(crate) quiescent: bool,
    // --- pair-index routing snapshot ----------------------------------------------
    pub(crate) pending: Vec<Vec<NodeId>>,
    pub(crate) pairs_mode: PairMode,
}

/// The world's delta log: the flat record stream plus the stack of open frames.
pub(crate) struct DeltaLog<S> {
    records: Vec<WorldRecord<S>>,
    frames: Vec<EpochFrame>,
    next_id: u64,
    /// Lifetime number of records ever appended — a monotone *work* counter in the
    /// [`crate::IndexStats`] spirit, never rewound by rollbacks. Rollback churn
    /// (speculation that keeps re-logging the same slots) is invisible in the
    /// committed trajectory; this is its observable.
    appended: u64,
}

impl<S> DeltaLog<S> {
    pub(crate) fn new() -> DeltaLog<S> {
        DeltaLog {
            records: Vec::new(),
            frames: Vec::new(),
            next_id: 0,
            appended: 0,
        }
    }

    /// Whether at least one checkpoint is open (mutations must append records).
    #[inline]
    pub(crate) fn recording(&self) -> bool {
        !self.frames.is_empty()
    }

    /// Appends a record if recording (no-op otherwise — the hot-path guard).
    #[inline]
    pub(crate) fn record(&mut self, make: impl FnOnce() -> WorldRecord<S>) {
        if self.recording() {
            self.records.push(make());
            self.appended += 1;
        }
    }

    /// Lifetime count of appended undo records (monotone; see the field docs).
    pub(crate) fn lifetime_records(&self) -> u64 {
        self.appended
    }

    /// Opens a frame (records must already have been positioned by the caller) and
    /// returns its epoch handle.
    pub(crate) fn open(&mut self, mut frame: EpochFrame) -> Epoch {
        let id = self.next_id;
        self.next_id += 1;
        frame.id = id;
        if self.frames.is_empty() {
            debug_assert!(frame.world_pos == 0);
        }
        self.frames.push(frame);
        Epoch { id }
    }

    /// Current length of the record stream.
    pub(crate) fn world_pos(&self) -> usize {
        self.records.len()
    }

    /// Clears the record stream (only valid while no frame is open).
    pub(crate) fn reset_records(&mut self) {
        debug_assert!(self.frames.is_empty());
        self.records.clear();
    }

    /// Pops frames strictly deeper than `epoch`, then pops and returns the frame of
    /// `epoch` itself. Fails with [`CoreError::EpochNotOpen`] when the epoch is not
    /// open (already rolled back, released, or foreign) — a serving process must be
    /// able to report a misused delta log instead of aborting. A stale inner epoch
    /// (below a live outer one) is caught *before* any frame is popped, so a failed
    /// call leaves the stack untouched.
    pub(crate) fn take_frame(&mut self, epoch: Epoch) -> Result<EpochFrame, CoreError> {
        if !self.frames.iter().any(|frame| frame.id == epoch.id) {
            return Err(CoreError::EpochNotOpen);
        }
        while let Some(frame) = self.frames.pop() {
            if frame.id == epoch.id {
                return Ok(frame);
            }
            debug_assert!(
                frame.id > epoch.id,
                "epoch stack must be consumed innermost-first"
            );
        }
        unreachable!("frame with the requested id was present above");
    }

    /// Splits off (and returns, newest last) the records appended after `pos`.
    pub(crate) fn split_records(&mut self, pos: usize) -> Vec<WorldRecord<S>> {
        self.records.split_off(pos)
    }

    /// Marks every still-open frame as requiring an index rebuild on rollback (used
    /// after an inner rollback rebuilt the pair index, invalidating op positions).
    pub(crate) fn poison_index_positions(&mut self) {
        for frame in &mut self.frames {
            frame.index_rebuilt = true;
        }
    }
}
