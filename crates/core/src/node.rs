//! Node identifiers.

use std::fmt;

/// Identifier of a node (process) of the population.
///
/// Nodes are numbered `0..n`. The identifier is an artefact of the simulator — the
/// protocols themselves are anonymous unless they explicitly model unique identifiers
/// (as Section 5.3 of the paper does).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identifier from its index.
    #[must_use]
    pub const fn new(index: u32) -> NodeId {
        NodeId(index)
    }

    /// The zero-based index of this node.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(value: u32) -> Self {
        NodeId(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_ordering() {
        let a = NodeId::new(3);
        let b = NodeId::from(7);
        assert_eq!(a.index(), 3);
        assert!(a < b);
        assert_eq!(format!("{a}"), "n3");
        assert_eq!(format!("{b:?}"), "n7");
    }
}
