//! Adversarial-but-fair schedulers.
//!
//! The paper's correctness claims are universally quantified over *fair* schedulers:
//! every execution in which no continuously-enabled interaction is starved forever
//! must reach the guaranteed terminal set. The uniform random scheduler samples only
//! a vanishing corner of that space, and it samples it *benignly* — low-probability
//! orderings (always picking the least productive pair, starving the leader for as
//! long as fairness allows) are exactly the schedules where protocol-logic bugs hide.
//!
//! This module implements three deterministic adversaries behind the same
//! [`Scheduler`] trait the uniform sampler uses, so stochastic runs and adversarial
//! runs share every line of protocol and world code:
//!
//! * [`RoundRobinScheduler`] cycles a cursor over the canonical enumeration of
//!   permissible pairs. Within any window of `|permissible|` selections on an
//!   unchanged configuration, every permissible pair is selected exactly once — the
//!   textbook fair schedule, and the one that maximizes ineffective churn between
//!   effective steps.
//! * [`WorstCaseScheduler`] spends a *fairness budget* of `patience` consecutive
//!   selections on ineffective pairs (rotating over them, changing nothing by
//!   definition), then is forced to pick an effective pair — and picks the most
//!   obstructive one: a non-merging effective pair if any exists (bond flips over
//!   component growth), last in canonical order as the tie-break. Any interaction
//!   continuously enabled is executed within `patience + |permissible|` selections,
//!   so the schedule is fair, but it is pessimal within that bound.
//! * [`EclipseScheduler`] starves one *victim component* (default: the component of
//!   node 0, the conventional pre-elected leader): while its fairness counter is
//!   below `patience` it only schedules pairs not involving the victim's component;
//!   when the counter saturates — or nothing else is permissible — it concedes one
//!   victim interaction (effective if possible) and re-arms. This is the
//!   eclipse/partition attack bounded by a fairness counter: the victim is isolated
//!   for the longest stretch a fair schedule permits.
//!
//! All three are deterministic (no RNG): two runs of the same protocol, population
//! and adversary parameters produce identical executions, which makes adversarial
//! regressions bit-for-bit reproducible. They re-enumerate the permissible set only
//! when the configuration version changes (ineffective selections keep the cached
//! enumeration valid), costing `O(cross-universe · ports²)` per *effective* step —
//! fine at the small-to-moderate `n` where adversarial coverage matters.

use crate::scheduler::Scheduler;
use crate::{Interaction, NodeId, Permissibility, Protocol, World};

/// Cached per-version enumeration shared by the adversaries: the canonical
/// permissible list plus the effectiveness of each entry.
#[derive(Debug, Default, Clone)]
struct PairView {
    version: Option<u64>,
    /// Canonical enumeration of permissible pairs (see `World::enumerate_permissible`).
    pairs: Vec<Interaction>,
    /// For each pair, the ready-to-apply interaction if it is effective.
    effective: Vec<Option<Interaction>>,
}

impl PairView {
    /// Re-derives the view if the configuration changed since the last call.
    fn refresh<P: Protocol>(&mut self, world: &World<P>) {
        let version = world.version();
        if self.version == Some(version) {
            return;
        }
        self.pairs = world
            .enumerate_permissible(usize::MAX)
            .expect("an unbounded budget always enumerates");
        self.effective = self
            .pairs
            .iter()
            .map(|i| world.effective_interaction_at(i.a, i.pa, i.b, i.pb))
            .collect();
        self.version = Some(version);
    }

    fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Indices of the ineffective pairs.
    fn ineffective_indices(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.pairs.len()).filter(|&i| self.effective[i].is_none())
    }
}

/// Deterministic round-robin over the canonical enumeration of permissible pairs.
///
/// The cursor is global and monotone: it survives re-enumerations, so on a frozen
/// configuration of `k` permissible pairs every pair is selected once per `k`
/// consecutive calls — no pair can be starved. See the module docs.
#[derive(Debug, Default, Clone)]
pub struct RoundRobinScheduler {
    view: PairView,
    cursor: u64,
}

impl RoundRobinScheduler {
    /// Creates a round-robin scheduler starting at the first canonical pair.
    #[must_use]
    pub fn new() -> RoundRobinScheduler {
        RoundRobinScheduler::default()
    }
}

impl Scheduler for RoundRobinScheduler {
    fn next_interaction<P: Protocol>(&mut self, world: &World<P>) -> Option<Interaction> {
        self.view.refresh(world);
        if self.view.is_empty() {
            return None;
        }
        let at = (self.cursor % self.view.pairs.len() as u64) as usize;
        self.cursor += 1;
        // Use the effectiveness-checked form when available so `apply` re-derives
        // nothing stale; an ineffective pair is returned as enumerated (applying it
        // is a no-op selection, exactly like the uniform scheduler's misses).
        Some(self.view.effective[at].unwrap_or(self.view.pairs[at]))
    }
}

/// The bounded worst-case adversary: wastes its whole fairness budget on
/// ineffective selections, then concedes the *least productive* effective pair.
///
/// `patience` is the fairness bound `B`: at most `B` consecutive ineffective
/// selections before an effective pair is executed, so every continuously-enabled
/// interaction runs within `B + |permissible|` selections. See the module docs.
#[derive(Debug, Clone)]
pub struct WorstCaseScheduler {
    view: PairView,
    patience: u64,
    wasted: u64,
    rotate: u64,
}

impl WorstCaseScheduler {
    /// Creates a worst-case adversary with the given fairness bound (the maximum
    /// run of deliberately wasted selections between effective interactions).
    #[must_use]
    pub fn new(patience: u64) -> WorstCaseScheduler {
        WorstCaseScheduler {
            view: PairView::default(),
            patience,
            wasted: 0,
            rotate: 0,
        }
    }

    /// Picks the most obstructive effective pair: non-merging if possible (a bond
    /// flip obstructs more than letting the structure grow), last in canonical
    /// order as the deterministic tie-break.
    fn worst_effective(&self) -> Option<Interaction> {
        let mut effective = self.view.effective.iter().flatten();
        let non_merge = effective
            .clone()
            .rfind(|i| !matches!(i.permissibility, Permissibility::Merge { .. }));
        non_merge.or_else(|| effective.next_back()).copied()
    }
}

impl Scheduler for WorstCaseScheduler {
    fn next_interaction<P: Protocol>(&mut self, world: &World<P>) -> Option<Interaction> {
        self.view.refresh(world);
        if self.view.is_empty() {
            return None;
        }
        if self.wasted < self.patience {
            let wastable: Vec<usize> = self.view.ineffective_indices().collect();
            if !wastable.is_empty() {
                let at = wastable[(self.rotate % wastable.len() as u64) as usize];
                self.rotate += 1;
                self.wasted += 1;
                return Some(self.view.pairs[at]);
            }
        }
        match self.worst_effective() {
            Some(interaction) => {
                self.wasted = 0;
                Some(interaction)
            }
            None => {
                // Stable configuration: every pair is ineffective, so rotate over
                // them forever — the honest behaviour of a fair scheduler that has
                // nothing productive left (callers detect stability separately).
                let at = (self.rotate % self.view.pairs.len() as u64) as usize;
                self.rotate += 1;
                Some(self.view.pairs[at])
            }
        }
    }
}

/// The eclipse adversary: isolates one victim component for as long as the
/// fairness counter allows, scheduling only pairs that do not involve it.
///
/// When the counter reaches `patience` — or no non-victim pair is permissible —
/// one victim interaction is conceded (effective preferred) and the counter
/// re-arms. See the module docs.
#[derive(Debug, Clone)]
pub struct EclipseScheduler {
    view: PairView,
    victim: NodeId,
    patience: u64,
    eclipsed: u64,
    rotate: u64,
}

impl EclipseScheduler {
    /// Creates an eclipse adversary isolating the component of `victim` with the
    /// given fairness bound.
    #[must_use]
    pub fn new(victim: NodeId, patience: u64) -> EclipseScheduler {
        EclipseScheduler {
            view: PairView::default(),
            victim,
            patience,
            eclipsed: 0,
            rotate: 0,
        }
    }

    /// The adversary aimed at the conventional pre-elected leader (node 0).
    #[must_use]
    pub fn against_leader(patience: u64) -> EclipseScheduler {
        EclipseScheduler::new(NodeId::new(0), patience)
    }
}

impl Scheduler for EclipseScheduler {
    fn next_interaction<P: Protocol>(&mut self, world: &World<P>) -> Option<Interaction> {
        self.view.refresh(world);
        if self.view.is_empty() {
            return None;
        }
        let victim_component = world.component_id(self.victim);
        let involves_victim = |i: &Interaction| {
            world.component_id(i.a) == victim_component
                || world.component_id(i.b) == victim_component
        };
        if self.eclipsed < self.patience {
            // Prefer effective progress away from the victim; otherwise waste a
            // selection on a rotating non-victim ineffective pair.
            if let Some(interaction) = self
                .view
                .effective
                .iter()
                .flatten()
                .find(|i| !involves_victim(i))
            {
                self.eclipsed += 1;
                return Some(*interaction);
            }
            let shunned: Vec<usize> = self
                .view
                .ineffective_indices()
                .filter(|&at| !involves_victim(&self.view.pairs[at]))
                .collect();
            if !shunned.is_empty() {
                let at = shunned[(self.rotate % shunned.len() as u64) as usize];
                self.rotate += 1;
                self.eclipsed += 1;
                return Some(self.view.pairs[at]);
            }
        }
        // Concede one victim interaction: effective preferred, else any pair (the
        // whole configuration may be stable — rotate like the other adversaries).
        self.eclipsed = 0;
        if let Some(interaction) = self
            .view
            .effective
            .iter()
            .flatten()
            .find(|i| involves_victim(i))
        {
            return Some(*interaction);
        }
        if let Some(interaction) = self.view.effective.iter().flatten().next() {
            return Some(*interaction);
        }
        let at = (self.rotate % self.view.pairs.len() as u64) as usize;
        self.rotate += 1;
        Some(self.view.pairs[at])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Simulation, SimulationConfig, StopReason, Transition};
    use nc_geometry::Dir;

    /// Free nodes pair up and bond (at most `n/2` effective interactions).
    struct Pairing;

    #[derive(Clone, PartialEq, Debug)]
    enum S {
        Single,
        Paired,
    }

    impl Protocol for Pairing {
        type State = S;

        fn initial_state(&self, _node: NodeId, _n: usize) -> S {
            S::Single
        }

        fn transition(
            &self,
            a: &S,
            _pa: Dir,
            b: &S,
            _pb: Dir,
            bonded: bool,
        ) -> Option<Transition<S>> {
            if !bonded && *a == S::Single && *b == S::Single {
                Some(Transition {
                    a: S::Paired,
                    b: S::Paired,
                    bond: true,
                })
            } else {
                None
            }
        }
    }

    fn run_to_stable<Sch: Scheduler>(scheduler: Sch, n: usize) -> Simulation<Pairing, Sch> {
        let config = SimulationConfig::new(n).with_max_steps(100_000);
        let mut sim = Simulation::with_scheduler(Pairing, config, scheduler);
        let report = sim.run_until_stable();
        assert_eq!(report.reason, StopReason::Stable);
        sim
    }

    #[test]
    fn round_robin_reaches_stability() {
        let sim = run_to_stable(RoundRobinScheduler::new(), 6);
        assert_eq!(sim.stats().effective_steps, 3);
    }

    #[test]
    fn worst_case_wastes_its_patience_then_progresses() {
        let sim = run_to_stable(WorstCaseScheduler::new(7), 6);
        let stats = sim.stats();
        assert_eq!(stats.effective_steps, 3);
        // Every effective step after the first is preceded by exactly `patience`
        // wasted selections (in the all-singleton start every permissible pair is
        // effective, so there is nothing to waste before the first pairing).
        assert!(
            stats.steps > (stats.effective_steps - 1) * 8,
            "expected ≥ 7 wasted selections per later effective step, got {} total steps",
            stats.steps
        );
    }

    #[test]
    fn eclipse_starves_the_victim_but_still_terminates() {
        let sim = run_to_stable(EclipseScheduler::against_leader(5), 6);
        assert_eq!(sim.stats().effective_steps, 3);
        // The victim still ends up paired: fairness forced the concession.
        assert_eq!(*sim.world().state(NodeId::new(0)), S::Paired);
    }

    #[test]
    fn adversaries_are_deterministic() {
        for _ in 0..2 {
            let a = run_to_stable(WorstCaseScheduler::new(3), 8);
            let b = run_to_stable(WorstCaseScheduler::new(3), 8);
            assert_eq!(a.stats(), b.stats());
            let sa: Vec<S> = a.world().states().cloned().collect();
            let sb: Vec<S> = b.world().states().cloned().collect();
            assert_eq!(sa, sb);
        }
    }
}
