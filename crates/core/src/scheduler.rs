//! Schedulers: who interacts next.
//!
//! The paper's fairness condition is satisfied with probability 1 by the *uniform random
//! scheduler*, which at every step selects independently and uniformly at random one of
//! the interactions permitted by the current configuration. That scheduler is also the
//! probabilistic assumption behind every "with high probability" statement, so it is the
//! default here. A greedy deterministic scheduler is provided for fast-forwarding tests.

use crate::{Interaction, Protocol, World};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A scheduler selects the next permissible interaction of a configuration.
pub trait Scheduler {
    /// Selects the next interaction, or `None` when no permissible pair exists (which can
    /// only happen for a population of a single node).
    fn next_interaction<P: Protocol>(&mut self, world: &World<P>) -> Option<Interaction>;
}

/// The uniform random scheduler of the paper.
///
/// Implemented by rejection sampling: an unordered pair of node-ports is drawn uniformly
/// from all `(n·k choose 2)` candidates (where `k` is the number of ports per node) and
/// re-drawn until a permissible one is found. Conditioning a uniform distribution on the
/// permissible subset yields exactly the uniform distribution over permissible pairs, so
/// no enumeration of the permissible set is needed.
#[derive(Debug)]
pub struct UniformScheduler {
    rng: StdRng,
    /// Safety valve: give up after this many rejected samples (only reachable for n = 1).
    max_attempts: u32,
}

impl UniformScheduler {
    /// Creates a scheduler from a seed (fixed seeds make executions reproducible).
    #[must_use]
    pub fn seeded(seed: u64) -> UniformScheduler {
        UniformScheduler {
            rng: StdRng::seed_from_u64(seed),
            max_attempts: 10_000_000,
        }
    }

    /// Creates a scheduler from operating-system entropy.
    #[must_use]
    pub fn from_entropy() -> UniformScheduler {
        UniformScheduler {
            rng: StdRng::from_entropy(),
            max_attempts: 10_000_000,
        }
    }

    /// Access to the underlying random number generator (used by protocols that need
    /// auxiliary randomness in experiments).
    pub fn rng(&mut self) -> &mut impl RngCore {
        &mut self.rng
    }
}

impl Scheduler for UniformScheduler {
    fn next_interaction<P: Protocol>(&mut self, world: &World<P>) -> Option<Interaction> {
        let n = world.len();
        if n < 2 {
            return None;
        }
        let ports = world.dim().dirs();
        for _ in 0..self.max_attempts {
            let a = self.rng.gen_range(0..n);
            let b = self.rng.gen_range(0..n);
            if a == b {
                continue;
            }
            let pa = ports[self.rng.gen_range(0..ports.len())];
            let pb = ports[self.rng.gen_range(0..ports.len())];
            if let Some(interaction) =
                world.interaction(crate::NodeId::new(a as u32), pa, crate::NodeId::new(b as u32), pb)
            {
                return Some(interaction);
            }
        }
        None
    }
}

/// A deterministic scheduler that always picks an *effective* interaction if one exists
/// (scanning nodes in index order). Useful to fast-forward constructions in unit tests
/// where the probabilistic schedule is irrelevant; it is fair on every execution it
/// completes because it only stops when no effective interaction remains.
#[derive(Debug, Default, Clone, Copy)]
pub struct GreedyScheduler;

impl Scheduler for GreedyScheduler {
    fn next_interaction<P: Protocol>(&mut self, world: &World<P>) -> Option<Interaction> {
        world.find_effective_interaction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeId, Transition};
    use nc_geometry::Dir;

    struct Pairing;

    #[derive(Clone, PartialEq, Debug)]
    enum S {
        Single,
        Paired,
    }

    impl Protocol for Pairing {
        type State = S;

        fn initial_state(&self, _node: NodeId, _n: usize) -> S {
            S::Single
        }

        fn transition(&self, a: &S, _pa: Dir, b: &S, _pb: Dir, bonded: bool) -> Option<Transition<S>> {
            if !bonded && *a == S::Single && *b == S::Single {
                Some(Transition {
                    a: S::Paired,
                    b: S::Paired,
                    bond: true,
                })
            } else {
                None
            }
        }
    }

    #[test]
    fn uniform_scheduler_is_reproducible() {
        let world = World::new(Pairing, 6);
        let mut s1 = UniformScheduler::seeded(42);
        let mut s2 = UniformScheduler::seeded(42);
        for _ in 0..20 {
            assert_eq!(s1.next_interaction(&world), s2.next_interaction(&world));
        }
    }

    #[test]
    fn uniform_scheduler_returns_none_for_singleton_population() {
        let world = World::new(Pairing, 1);
        let mut s = UniformScheduler::seeded(1);
        assert_eq!(s.next_interaction(&world), None);
    }

    #[test]
    fn uniform_scheduler_only_returns_permissible_pairs() {
        let mut world = World::new(Pairing, 8);
        let mut s = UniformScheduler::seeded(7);
        for _ in 0..200 {
            let interaction = s.next_interaction(&world).expect("pairs exist");
            assert!(world
                .permissibility(interaction.a, interaction.pa, interaction.b, interaction.pb)
                .is_some());
            world.apply(&interaction);
            assert!(world.check_invariants());
        }
    }

    #[test]
    fn greedy_scheduler_finds_effective_until_stable() {
        let mut world = World::new(Pairing, 6);
        let mut greedy = GreedyScheduler;
        let mut effective = 0;
        while let Some(i) = greedy.next_interaction(&world) {
            let outcome = world.apply(&i);
            assert!(outcome.effective);
            effective += 1;
            assert!(effective <= 3, "at most n/2 pairings possible");
        }
        assert_eq!(effective, 3);
        assert!(world.is_stable());
    }
}
