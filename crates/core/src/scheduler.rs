//! Schedulers: who interacts next.
//!
//! The paper's fairness condition is satisfied with probability 1 by the *uniform random
//! scheduler*, which at every step selects independently and uniformly at random one of
//! the interactions permitted by the current configuration. That scheduler is also the
//! probabilistic assumption behind every "with high probability" statement, so it is the
//! default here. A greedy deterministic scheduler is provided for fast-forwarding tests.
//!
//! # Sampling strategies
//!
//! Two strategies realise the same uniform distribution over permissible pairs:
//!
//! * **Rejection sampling** (the original implementation, kept verbatim behind
//!   [`SamplingMode::Legacy`]): draw an unordered node-port pair uniformly from all
//!   `(n·k choose 2)` candidates and redraw until a permissible one is found.
//!   Conditioning a uniform distribution on the permissible subset yields exactly the
//!   uniform distribution over permissible pairs. Cheap while the permissible set is
//!   dense (early phases, many free nodes), but the expected number of redraws is
//!   `(n·k)² / |permissible|`, which degenerates to `Θ(n·k²)` per step late in a
//!   construction when almost everything is bonded or halted.
//! * **Enumerated sampling**: ask the world for the exact permissible set
//!   ([`crate::World::enumerate_permissible`]) and draw one element with a single
//!   `gen_range`. One enumeration is `O(n·k)` plus the cross-component pairs, and the
//!   result is cached until the configuration version changes, so late phases cost
//!   `O(1)` per step. The drawn distribution is uniform over the same set, so every
//!   "w.h.p." statement is unaffected.
//!
//! [`SamplingMode::Adaptive`] starts with rejection sampling and switches to enumerated
//! sampling for a configuration once a draw takes more than
//! [`UniformScheduler::SWITCH_THRESHOLD`] rejections — i.e. exactly when the acceptance
//! rate has collapsed. The modes generally consume the seeded RNG stream differently,
//! so runs are reproducible *per mode*; [`SamplingMode::Legacy`] reproduces the
//! original sampler byte for byte, which the equivalence suite uses as its reference.
//!
//! # Batched sampling and the geometric-jump invariant
//!
//! [`SamplingMode::Batched`] exploits that the configuration is *frozen*
//! between effective interactions: ineffective selections change nothing (by
//! definition), so consecutive selections are i.i.d. uniform draws over one fixed
//! permissible set. In such a sequence,
//!
//! 1. the index `T` of the first *effective* selection is geometrically distributed
//!    with success probability `p = |effective| / |permissible|`, and
//! 2. the value of that selection is uniform over the effective subset, independent
//!    of `T`.
//!
//! Both facts are elementary conditioning: each draw is effective independently with
//! probability `p`, and conditioned on being effective it is uniform over the
//! effective subset. The batched sampler therefore draws `T` directly
//! ([`crate::rng::geometric`]), credits the `T − 1` skipped ineffective selections to
//! the step counters, and draws one uniform *effective* pair — producing exactly the
//! same distribution over configuration trajectories **and** step counts as the
//! one-at-a-time sampler, while doing `O(1)` work per effective step instead of
//! `O(|permissible| / |effective|)`. Fairness and every "w.h.p." statement of the
//! paper are therefore untouched: the realized executions are distributed identically.
//!
//! The exact per-version counts (and uniform access to the effective set) come from
//! the incremental permissible-pair index (see `crate::index`), which maintains them
//! in `O(changed)` per applied delta. Two situations make the index unusable and fall
//! back to the adaptive strategy, which realises the same per-step distribution, just
//! more slowly: a protocol whose live state diversity overflows the index's class
//! table (permanent fallback), and configurations with two or more multi-node
//! components whose cross product exceeds the enumeration budget (per-version
//! fallback).
//!
//! # Sharded sampling: composing per-shard rates
//!
//! [`SamplingMode::Sharded`] is the batched sampler restated over the sharded index
//! layout. Partition the permissible set by owning shard: `P = Σ_s P_s` and
//! `E = Σ_s E_s` (every pair is owned by exactly one shard — the shard of its smaller
//! endpoint for materialised pairs, of the counted registration for the class-counted
//! ones). In the frozen-configuration selection sequence, a selection lands in shard
//! `s` with probability `P_s / P` and is effective given that with probability
//! `E_s / P_s`, so the per-selection effectiveness is `Σ_s (P_s/P)·(E_s/P_s) = E/P` —
//! the composition of the per-shard rates is *exactly* the sequential rate, and the
//! jump to the first effective selection is `Geometric(ΣE_s / ΣP_s)`, identical to the
//! sequential `Geometric(E/P)`. The shard of the first effective selection then has
//! probability `E_s / E`, which is realised for free by drawing one uniform index over
//! `0..E` and resolving it through the canonical per-shard prefix walk. Nothing about
//! the split changes the per-step distribution; what changes operationally is that the
//! counts come from the incrementally maintained shared aggregate
//! ([`crate::World::pair_counts_sharded`] — the running sum of the per-shard
//! registration streams, `O(1)` per version) instead of the batched mode's per-version
//! recount, and that the draws come from per-selection substreams
//! ([`crate::rng::substream`], keyed by the selection ordinal — see there for why that
//! keying, and not a per-shard-id one, is what makes executions byte-identical across
//! 1/2/4 shards).

use crate::{Interaction, Protocol, World};
use rand::rngs::StdRng;
use rand::{Rng, RngCore};

/// How the uniform scheduler realises the uniform distribution over permissible pairs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SamplingMode {
    /// Rejection sampling with an adaptive fallback to enumerated sampling when the
    /// acceptance rate collapses. Same distribution, amortised `O(1)` draws per step in
    /// sparse configurations.
    #[default]
    Adaptive,
    /// Pure rejection sampling, byte-identical to the original implementation for a
    /// given seed. Used by the equivalence suite and available for exact replays.
    Legacy,
    /// Geometric-jump batching over the incremental permissible-pair index: the number
    /// of consecutive ineffective selections on a frozen configuration is sampled in
    /// one draw and credited to the step counters, then one uniform *effective* pair
    /// is returned. Identical per-step distribution (see the module docs), `O(1)` work
    /// per effective step. Falls back to [`SamplingMode::Adaptive`] behaviour where
    /// the index cannot serve exact counts.
    Batched,
    /// Geometric-jump batching over the *sharded* index: the jump is drawn from the
    /// composition of the per-shard effective/permissible rates (`Geometric(ΣEₛ/ΣPₛ)`,
    /// which equals the sequential `Geometric(E/P)`; see the module docs), the counts
    /// come from the `O(1)` running aggregate instead of a per-version recount, and
    /// per-selection RNG substreams keep the execution byte-identical across shard
    /// counts. Same fallbacks as [`SamplingMode::Batched`].
    Sharded,
}

/// A scheduler selects the next permissible interaction of a configuration.
pub trait Scheduler {
    /// Selects the next interaction, or `None` when no permissible pair exists (which can
    /// only happen for a population of a single node).
    fn next_interaction<P: Protocol>(&mut self, world: &World<P>) -> Option<Interaction>;

    /// Like [`Scheduler::next_interaction`], but consuming at most `max_steps`
    /// scheduler selections (including the returned one). A batching scheduler whose
    /// sampled jump would overshoot the allowance credits exactly `max_steps` skipped
    /// selections (drained via [`Scheduler::drain_skipped_steps`]) and returns `None`
    /// — the faithful behaviour of a step-budgeted run that spent its whole remaining
    /// budget on ineffective selections. Non-batching schedulers take one selection
    /// per call and ignore the bound.
    fn next_interaction_bounded<P: Protocol>(
        &mut self,
        world: &World<P>,
        max_steps: u64,
    ) -> Option<Interaction> {
        let _ = max_steps;
        self.next_interaction(world)
    }

    /// Takes (and resets) the number of scheduler selections that were credited in
    /// bulk — skipped ineffective selections of a batching scheduler — since the last
    /// drain. The caller must add them to its step accounting after every
    /// `next_interaction*` call.
    fn drain_skipped_steps(&mut self) -> u64 {
        0
    }
}

/// The uniform random scheduler of the paper. See the module docs for the two sampling
/// strategies.
#[derive(Debug)]
pub struct UniformScheduler {
    rng: StdRng,
    mode: SamplingMode,
    /// The base seed (kept for deriving the sharded mode's per-selection substreams).
    seed: u64,
    /// Selection-attempt ordinal of the sharded mode: each batched draw attempt uses
    /// the substream keyed by this counter, which advances on every attempt (including
    /// budget-exhausted ones, where the memorylessness of the geometric makes a fresh
    /// draw on the next attempt distributionally exact, just as in batched mode).
    sharded_draws: u64,
    /// Safety valve: give up after this many rejected samples (only reachable for n = 1,
    /// or in legacy mode for configurations with a vanishing permissible set).
    max_attempts: u32,
    /// Whether the acceptance rate has collapsed (enumerate instead of rejecting).
    collapsed: bool,
    /// Cached enumerated permissible set, valid for `cache_version`.
    cache: Vec<Interaction>,
    cache_version: u64,
    cache_valid: bool,
    /// Configuration version for which enumeration was refused (cross-component budget
    /// exceeded); pure rejection is used without re-probing until the version changes.
    refused_version: Option<u64>,
    /// Skipped ineffective selections credited by batched jumps, awaiting a drain.
    pending_skips: u64,
    /// Configuration version the batched counts below were computed for.
    batch_version: u64,
    batch_valid: bool,
    /// Sticky: the pair index overflowed its class table — batched mode permanently
    /// delegates to the adaptive strategy.
    batch_overflow: bool,
    /// This-version fallback: the multi×multi cross enumeration exceeded its budget.
    batch_fallback: bool,
    /// Exact permissible / effective pair counts of the frozen configuration
    /// (base classes from the incremental index + the enumerated multi×multi pairs).
    batch_permissible: u64,
    batch_effective: u64,
    /// Enumerated multi×multi cross pairs of the frozen configuration.
    batch_mm: Vec<Interaction>,
    /// The effective subset of `batch_mm`.
    batch_mm_eff: Vec<Interaction>,
}

impl UniformScheduler {
    /// Rejections within one draw before the adaptive mode switches to enumeration.
    /// Rejection sampling needs `(n·k)² / |permissible|` draws in expectation, so hitting
    /// this threshold means the permissible set occupies less than roughly 1/256 of the
    /// candidate space — exactly the regime where enumerating it is cheap.
    pub const SWITCH_THRESHOLD: u32 = 256;

    /// Budget for the cross-component part of an enumeration, in node pairs, as a
    /// multiple of the population size. Above it the sampler stays with rejection (a
    /// large cross-component universe implies a dense permissible set anyway). Shared
    /// with the world's stability fast path so both agree on affordability.
    const CROSS_BUDGET_PER_NODE: usize = crate::world::CROSS_BUDGET_PER_NODE;

    /// Creates a scheduler from a seed with the default adaptive sampling mode.
    #[must_use]
    pub fn seeded(seed: u64) -> UniformScheduler {
        UniformScheduler::with_mode(seed, SamplingMode::default())
    }

    /// Creates a scheduler from a seed with an explicit sampling mode.
    #[must_use]
    pub fn with_mode(seed: u64, mode: SamplingMode) -> UniformScheduler {
        UniformScheduler {
            rng: crate::rng::seeded(seed),
            mode,
            seed,
            sharded_draws: 0,
            max_attempts: 10_000_000,
            collapsed: false,
            cache: Vec::new(),
            cache_version: 0,
            cache_valid: false,
            refused_version: None,
            pending_skips: 0,
            batch_version: 0,
            batch_valid: false,
            batch_overflow: false,
            batch_fallback: false,
            batch_permissible: 0,
            batch_effective: 0,
            batch_mm: Vec::new(),
            batch_mm_eff: Vec::new(),
        }
    }

    /// Creates a scheduler from ambient entropy (see [`crate::rng::from_entropy`]).
    #[must_use]
    pub fn from_entropy() -> UniformScheduler {
        UniformScheduler::seeded(rand::entropy_seed())
    }

    /// The sampling mode this scheduler uses.
    #[must_use]
    pub fn mode(&self) -> SamplingMode {
        self.mode
    }

    /// Access to the underlying random number generator (used by protocols that need
    /// auxiliary randomness in experiments).
    pub fn rng(&mut self) -> &mut impl RngCore {
        &mut self.rng
    }

    /// One uniform draw from the full candidate space, or `None` if it is not
    /// permissible (a rejection). Identical to one iteration of the original sampler.
    fn draw<P: Protocol>(&mut self, world: &World<P>) -> Option<Interaction> {
        let n = world.len();
        let ports = world.dim().dirs();
        let a = self.rng.gen_range(0..n);
        let b = self.rng.gen_range(0..n);
        if a == b {
            return None;
        }
        let pa = ports[self.rng.gen_range(0..ports.len())];
        let pb = ports[self.rng.gen_range(0..ports.len())];
        world.interaction(
            crate::NodeId::new(a as u32),
            pa,
            crate::NodeId::new(b as u32),
            pb,
        )
    }

    fn next_legacy<P: Protocol>(&mut self, world: &World<P>) -> Option<Interaction> {
        for _ in 0..self.max_attempts {
            if let Some(interaction) = self.draw(world) {
                return Some(interaction);
            }
        }
        None
    }

    fn next_adaptive<P: Protocol>(&mut self, world: &World<P>) -> Option<Interaction> {
        let version = world.version();
        if self.cache_valid && self.cache_version == version {
            return self.sample_cached();
        }
        self.cache_valid = false;
        if self.refused_version == Some(version) {
            // Enumeration was already refused for this exact configuration: rejection
            // sampling is the chosen tool until something changes.
            return self.next_legacy(world);
        }
        self.refused_version = None;
        if !self.collapsed {
            for _ in 0..Self::SWITCH_THRESHOLD {
                if let Some(interaction) = self.draw(world) {
                    return Some(interaction);
                }
            }
            self.collapsed = true;
        }
        match world.enumerate_permissible(Self::CROSS_BUDGET_PER_NODE * world.len()) {
            Some(pairs) => {
                // If the permissible set turns out dense after all, rejection would be
                // cheap again: leave collapsed mode once the configuration changes.
                let ports = world.dim().dirs().len();
                let universe = (world.len() * ports).pow(2) / 2;
                if pairs.len().saturating_mul(64) >= universe {
                    self.collapsed = false;
                }
                self.cache = pairs;
                self.cache_version = version;
                self.cache_valid = true;
                self.sample_cached()
            }
            None => {
                // Enumeration over budget: the cross-component universe is large, so
                // rejection sampling is the right tool while this configuration lasts.
                self.collapsed = false;
                self.refused_version = Some(version);
                self.next_legacy(world)
            }
        }
    }

    fn sample_cached(&mut self) -> Option<Interaction> {
        if self.cache.is_empty() {
            return None;
        }
        let pick = self.rng.gen_range(0..self.cache.len());
        Some(self.cache[pick])
    }

    /// Recomputes the exact pair counts for the current frozen configuration: the base
    /// classes come from the incremental permissible-pair index (per-version recount in
    /// batched mode, the `O(1)` running aggregate in sharded mode); multi×multi cross
    /// pairs (empty in single-growth workloads) are enumerated under the cross budget.
    fn refresh_batch<P: Protocol>(&mut self, world: &World<P>, version: u64) {
        self.batch_valid = false;
        self.batch_fallback = false;
        self.batch_mm.clear();
        self.batch_mm_eff.clear();
        let summary = if self.mode == SamplingMode::Sharded {
            world.pair_counts_sharded()
        } else {
            world.pair_counts()
        };
        let Some(summary) = summary else {
            self.batch_overflow = true;
            return;
        };
        if summary.multi_components >= 2 {
            match world.enumerate_cross_multi(world.cross_multi_budget()) {
                Some(list) => {
                    for (interaction, effective) in list {
                        if effective {
                            self.batch_mm_eff.push(interaction);
                        }
                        self.batch_mm.push(interaction);
                    }
                }
                None => {
                    self.batch_fallback = true;
                }
            }
        }
        self.batch_permissible = summary.permissible_base + self.batch_mm.len() as u64;
        self.batch_effective = summary.effective_base + self.batch_mm_eff.len() as u64;
        self.batch_version = version;
        self.batch_valid = true;
    }

    /// One batched selection: sample the geometric jump to the next effective
    /// selection, credit the skipped ineffective ones, and return a uniform effective
    /// pair — or, within `max_steps` of budget, stop early. See the module docs for
    /// why this realises the exact per-step uniform distribution.
    fn next_batched<P: Protocol>(
        &mut self,
        world: &World<P>,
        max_steps: u64,
    ) -> Option<Interaction> {
        if self.batch_overflow {
            return self.next_adaptive(world);
        }
        let version = world.version();
        if !self.batch_valid || self.batch_version != version {
            self.refresh_batch(world, version);
            if self.batch_overflow {
                return self.next_adaptive(world);
            }
        }
        if self.batch_fallback {
            return self.next_adaptive(world);
        }
        if self.batch_permissible == 0 {
            return None;
        }
        if self.batch_effective == 0 {
            // The configuration is stable: every further selection is ineffective, so
            // there is no effective selection to jump to. Draw single uniform
            // permissible selections, one per call, exactly like the other modes.
            let idx = self.rng.gen_range(0..self.batch_permissible);
            return Some(self.pick_permissible(world, idx));
        }
        let p = self.batch_effective as f64 / self.batch_permissible as f64;
        let jump = crate::rng::geometric(&mut self.rng, p);
        if jump > max_steps {
            // The whole remaining step budget is spent on ineffective selections.
            self.pending_skips += max_steps;
            return None;
        }
        self.pending_skips += jump - 1;
        let idx = self.rng.gen_range(0..self.batch_effective);
        Some(self.pick_effective(world, idx))
    }

    /// One sharded selection: identical batched semantics (see the module docs for the
    /// per-shard rate composition argument), served from the `O(1)` aggregate counts
    /// and drawing jump + index from the per-selection substream.
    fn next_sharded<P: Protocol>(
        &mut self,
        world: &World<P>,
        max_steps: u64,
    ) -> Option<Interaction> {
        if self.batch_overflow {
            return self.next_adaptive(world);
        }
        let version = world.version();
        if !self.batch_valid || self.batch_version != version {
            self.refresh_batch(world, version);
            if self.batch_overflow {
                return self.next_adaptive(world);
            }
        }
        if self.batch_fallback {
            return self.next_adaptive(world);
        }
        if self.batch_permissible == 0 {
            return None;
        }
        let mut sub = crate::rng::substream(self.seed, self.sharded_draws);
        self.sharded_draws += 1;
        if self.batch_effective == 0 {
            // The configuration is stable: every further selection is ineffective, so
            // there is no effective selection to jump to. Draw single uniform
            // permissible selections, one per call, exactly like the other modes.
            let idx = sub.gen_range(0..self.batch_permissible);
            return Some(self.pick_permissible(world, idx));
        }
        let p = self.batch_effective as f64 / self.batch_permissible as f64;
        let jump = crate::rng::geometric(&mut sub, p);
        if jump > max_steps {
            self.pending_skips += max_steps;
            return None;
        }
        self.pending_skips += jump - 1;
        let idx = sub.gen_range(0..self.batch_effective);
        Some(self.pick_effective(world, idx))
    }

    fn pick_effective<P: Protocol>(&mut self, world: &World<P>, idx: u64) -> Interaction {
        let base = self.batch_effective - self.batch_mm_eff.len() as u64;
        if idx < base {
            world.sample_effective_base(idx)
        } else {
            self.batch_mm_eff[(idx - base) as usize]
        }
    }

    fn pick_permissible<P: Protocol>(&mut self, world: &World<P>, idx: u64) -> Interaction {
        let base = self.batch_permissible - self.batch_mm.len() as u64;
        if idx < base {
            world.sample_permissible_base(idx)
        } else {
            self.batch_mm[(idx - base) as usize]
        }
    }
}

impl Scheduler for UniformScheduler {
    fn next_interaction<P: Protocol>(&mut self, world: &World<P>) -> Option<Interaction> {
        self.next_interaction_bounded(world, u64::MAX)
    }

    fn next_interaction_bounded<P: Protocol>(
        &mut self,
        world: &World<P>,
        max_steps: u64,
    ) -> Option<Interaction> {
        if world.len() < 2 || max_steps == 0 {
            return None;
        }
        match self.mode {
            SamplingMode::Legacy => self.next_legacy(world),
            SamplingMode::Adaptive => self.next_adaptive(world),
            SamplingMode::Batched => self.next_batched(world, max_steps),
            SamplingMode::Sharded => self.next_sharded(world, max_steps),
        }
    }

    fn drain_skipped_steps(&mut self) -> u64 {
        std::mem::take(&mut self.pending_skips)
    }
}

/// A deterministic scheduler that always picks an *effective* interaction if one exists,
/// through the incremental interaction index (amortised `O(active)` instead of a full
/// scan). Useful to fast-forward constructions in unit tests where the probabilistic
/// schedule is irrelevant; it is fair on every execution it completes because it only
/// stops when no effective interaction remains.
#[derive(Debug, Default, Clone, Copy)]
pub struct GreedyScheduler;

impl Scheduler for GreedyScheduler {
    fn next_interaction<P: Protocol>(&mut self, world: &World<P>) -> Option<Interaction> {
        world.find_effective_interaction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeId, Transition};
    use nc_geometry::Dir;

    struct Pairing;

    #[derive(Clone, PartialEq, Debug)]
    enum S {
        Single,
        Paired,
    }

    impl Protocol for Pairing {
        type State = S;

        fn initial_state(&self, _node: NodeId, _n: usize) -> S {
            S::Single
        }

        fn transition(
            &self,
            a: &S,
            _pa: Dir,
            b: &S,
            _pb: Dir,
            bonded: bool,
        ) -> Option<Transition<S>> {
            if !bonded && *a == S::Single && *b == S::Single {
                Some(Transition {
                    a: S::Paired,
                    b: S::Paired,
                    bond: true,
                })
            } else {
                None
            }
        }
    }

    #[test]
    fn uniform_scheduler_is_reproducible() {
        for mode in [SamplingMode::Adaptive, SamplingMode::Legacy] {
            let world = World::new(Pairing, 6);
            let mut s1 = UniformScheduler::with_mode(42, mode);
            let mut s2 = UniformScheduler::with_mode(42, mode);
            for _ in 0..20 {
                assert_eq!(s1.next_interaction(&world), s2.next_interaction(&world));
            }
        }
    }

    #[test]
    fn adaptive_and_legacy_agree_before_the_switch() {
        // On a dense configuration the adaptive sampler never collapses, so it consumes
        // the seeded stream exactly like the legacy sampler.
        let world = World::new(Pairing, 8);
        let mut legacy = UniformScheduler::with_mode(9, SamplingMode::Legacy);
        let mut adaptive = UniformScheduler::with_mode(9, SamplingMode::Adaptive);
        for _ in 0..50 {
            assert_eq!(
                legacy.next_interaction(&world),
                adaptive.next_interaction(&world)
            );
        }
    }

    #[test]
    fn uniform_scheduler_returns_none_for_singleton_population() {
        let world = World::new(Pairing, 1);
        let mut s = UniformScheduler::seeded(1);
        assert_eq!(s.next_interaction(&world), None);
    }

    #[test]
    fn uniform_scheduler_only_returns_permissible_pairs() {
        for mode in [SamplingMode::Adaptive, SamplingMode::Legacy] {
            let mut world = World::new(Pairing, 8);
            let mut s = UniformScheduler::with_mode(7, mode);
            for _ in 0..200 {
                let interaction = s.next_interaction(&world).expect("pairs exist");
                assert!(world
                    .permissibility(interaction.a, interaction.pa, interaction.b, interaction.pb)
                    .is_some());
                world.apply(&interaction);
                assert!(world.check_invariants());
            }
        }
    }

    /// A head absorbs free nodes right-port-to-left-port into one straight chain.
    struct Chain;

    #[derive(Clone, PartialEq, Debug)]
    enum C {
        Head,
        Body,
        Free,
    }

    impl Protocol for Chain {
        type State = C;

        fn initial_state(&self, node: NodeId, _n: usize) -> C {
            if node.index() == 0 {
                C::Head
            } else {
                C::Free
            }
        }

        fn transition(
            &self,
            a: &C,
            pa: Dir,
            b: &C,
            _pb: Dir,
            bonded: bool,
        ) -> Option<Transition<C>> {
            if !bonded && *a == C::Head && pa == Dir::Right && *b == C::Free {
                Some(Transition {
                    a: C::Body,
                    b: C::Head,
                    bond: true,
                })
            } else {
                None
            }
        }
    }

    #[test]
    fn enumerated_mode_kicks_in_on_sparse_configurations() {
        // A complete 16-node chain is a single component whose only permissible pairs
        // are the 15 bonded ones: acceptance ≈ 15 / 2016, so a few hundred draws push
        // the adaptive sampler into enumerated mode, which must keep producing exactly
        // the bonded pairs (the uniform distribution over the permissible set).
        let n = 16;
        let mut world = World::new(Chain, n);
        for k in 1..n as u32 {
            let i = world
                .interaction(NodeId::new(k - 1), Dir::Right, NodeId::new(k), Dir::Left)
                .expect("chain step is permissible");
            assert!(world.apply(&i).effective);
        }
        let mut s = UniformScheduler::seeded(3);
        let mut bonded_seen = std::collections::HashSet::new();
        for _ in 0..2_000 {
            let interaction = s.next_interaction(&world).expect("bonded pairs remain");
            assert!(matches!(
                interaction.permissibility,
                crate::Permissibility::Bonded
            ));
            bonded_seen.insert((
                interaction.a.min(interaction.b),
                interaction.a.max(interaction.b),
            ));
        }
        assert!(s.collapsed || s.cache_valid, "sampler should have switched");
        assert_eq!(
            bonded_seen.len(),
            n - 1,
            "every bonded pair must be reachable"
        );
    }

    #[test]
    fn greedy_scheduler_finds_effective_until_stable() {
        let mut world = World::new(Pairing, 6);
        let mut greedy = GreedyScheduler;
        let mut effective = 0;
        while let Some(i) = greedy.next_interaction(&world) {
            let outcome = world.apply(&i);
            assert!(outcome.effective);
            effective += 1;
            assert!(effective <= 3, "at most n/2 pairings possible");
        }
        assert_eq!(effective, 3);
        assert!(world.is_stable());
    }
}
