//! Schedulers: who interacts next.
//!
//! The paper's fairness condition is satisfied with probability 1 by the *uniform random
//! scheduler*, which at every step selects independently and uniformly at random one of
//! the interactions permitted by the current configuration. That scheduler is also the
//! probabilistic assumption behind every "with high probability" statement, so it is the
//! default here. A greedy deterministic scheduler is provided for fast-forwarding tests.
//!
//! # Sampling strategies
//!
//! Two strategies realise the same uniform distribution over permissible pairs:
//!
//! * **Rejection sampling** (the original implementation, kept verbatim behind
//!   [`SamplingMode::Legacy`]): draw an unordered node-port pair uniformly from all
//!   `(n·k choose 2)` candidates and redraw until a permissible one is found.
//!   Conditioning a uniform distribution on the permissible subset yields exactly the
//!   uniform distribution over permissible pairs. Cheap while the permissible set is
//!   dense (early phases, many free nodes), but the expected number of redraws is
//!   `(n·k)² / |permissible|`, which degenerates to `Θ(n·k²)` per step late in a
//!   construction when almost everything is bonded or halted.
//! * **Enumerated sampling**: ask the world for the exact permissible set
//!   ([`crate::World::enumerate_permissible`]) and draw one element with a single
//!   `gen_range`. One enumeration is `O(n·k)` plus the cross-component pairs, and the
//!   result is cached until the configuration version changes, so late phases cost
//!   `O(1)` per step. The drawn distribution is uniform over the same set, so every
//!   "w.h.p." statement is unaffected.
//!
//! [`SamplingMode::Adaptive`] starts with rejection sampling and switches to enumerated
//! sampling for a configuration once a draw takes more than
//! [`UniformScheduler::SWITCH_THRESHOLD`] rejections — i.e. exactly when the acceptance
//! rate has collapsed. The modes generally consume the seeded RNG stream differently,
//! so runs are reproducible *per mode*; [`SamplingMode::Legacy`] reproduces the
//! original sampler byte for byte, which the equivalence suite uses as its reference.
//!
//! # Batched sampling and the geometric-jump invariant
//!
//! [`SamplingMode::Batched`] exploits that the configuration is *frozen*
//! between effective interactions: ineffective selections change nothing (by
//! definition), so consecutive selections are i.i.d. uniform draws over one fixed
//! permissible set. In such a sequence,
//!
//! 1. the index `T` of the first *effective* selection is geometrically distributed
//!    with success probability `p = |effective| / |permissible|`, and
//! 2. the value of that selection is uniform over the effective subset, independent
//!    of `T`.
//!
//! Both facts are elementary conditioning: each draw is effective independently with
//! probability `p`, and conditioned on being effective it is uniform over the
//! effective subset. The batched sampler therefore draws `T` directly
//! ([`crate::rng::geometric`]), credits the `T − 1` skipped ineffective selections to
//! the step counters, and draws one uniform *effective* pair — producing exactly the
//! same distribution over configuration trajectories **and** step counts as the
//! one-at-a-time sampler, while doing `O(1)` work per effective step instead of
//! `O(|permissible| / |effective|)`. Fairness and every "w.h.p." statement of the
//! paper are therefore untouched: the realized executions are distributed identically.
//!
//! The exact per-version counts (and uniform access to the effective set) come from
//! the incremental permissible-pair index (see `crate::index`), which maintains them
//! in `O(changed)` per applied delta. Two situations make the index unusable and fall
//! back to the adaptive strategy, which realises the same per-step distribution, just
//! more slowly: a protocol whose live state diversity overflows the index's class
//! table (permanent fallback), and configurations with two or more multi-node
//! components whose cross product exceeds the enumeration budget (per-version
//! fallback).
//!
//! # Sharded sampling: composing per-shard rates
//!
//! [`SamplingMode::Sharded`] is the batched sampler restated over the sharded index
//! layout. Partition the permissible set by owning shard: `P = Σ_s P_s` and
//! `E = Σ_s E_s` (every pair is owned by exactly one shard — the shard of its smaller
//! endpoint for materialised pairs, of the counted registration for the class-counted
//! ones). In the frozen-configuration selection sequence, a selection lands in shard
//! `s` with probability `P_s / P` and is effective given that with probability
//! `E_s / P_s`, so the per-selection effectiveness is `Σ_s (P_s/P)·(E_s/P_s) = E/P` —
//! the composition of the per-shard rates is *exactly* the sequential rate, and the
//! jump to the first effective selection is `Geometric(ΣE_s / ΣP_s)`, identical to the
//! sequential `Geometric(E/P)`. The shard of the first effective selection then has
//! probability `E_s / E`, which is realised for free by drawing one uniform index over
//! `0..E` and resolving it through the canonical per-shard prefix walk. Nothing about
//! the split changes the per-step distribution; what changes operationally is that the
//! counts come from the incrementally maintained shared aggregate
//! ([`crate::World::pair_counts_sharded`] — the running sum of the per-shard
//! registration streams, `O(1)` per version) instead of the batched mode's per-version
//! recount, and that the draws come from per-selection substreams
//! ([`crate::rng::substream`], keyed by the selection ordinal — see there for why that
//! keying, and not a per-shard-id one, is what makes executions byte-identical across
//! 1/2/4 shards).
//!
//! # Speculative execution: optimistic epochs and the serialization point
//!
//! [`SamplingMode::Speculative`] keeps the sharded sampler as the *authoritative*
//! serialization: every interaction the scheduler returns still comes from the
//! canonical sharded draw, so the executed trajectory is byte-identical to
//! [`SamplingMode::Sharded`] by construction. What speculation adds is a prediction
//! pipeline running *ahead* of that serialization point. While the window is empty,
//! an epoch ([`Scheduler::prepare`]) predicts the next `k` selections from the frozen
//! counts — each ordinal's substream is deterministic, so these are exactly the draws
//! the canonical sampler will make as long as the counts stay unchanged — resolves
//! the drawn effective indices to concrete pairs in parallel (one task per owning
//! shard on the vendored `rayon` stand-in), and optimistically applies them on a
//! scratch timeline opened with [`crate::World::checkpoint`] and unwound with
//! [`crate::World::rollback`]: the delta log restores node states, bonds, components,
//! the pair-index aggregate and the per-shard sub-index layouts exactly. As the
//! canonical sampler then serializes selection after selection, each is *reconciled*
//! against the window front: a match confirms the speculated interaction
//! (`committed` in [`crate::SpeculationStats`]); a divergence — a merge, split, or
//! class-count delta in the committed prefix changed another shard's jump
//! distribution or a selection ordinal — discards the remainder of the window
//! (`rolled_back`, with the cause classified per conflict). Because the canonical
//! path never consumes speculative state, correctness is independent of the window
//! size, the conflict rate, and the shard count; speculation only changes how much
//! resolution work has already happened (in parallel) by the time a selection is
//! serialized.

use crate::stats::SpeculationStats;
use crate::{Interaction, Protocol, World};
use rand::rngs::StdRng;
use rand::{Rng, RngCore};
use std::collections::VecDeque;

/// How the uniform scheduler realises the uniform distribution over permissible pairs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SamplingMode {
    /// Rejection sampling with an adaptive fallback to enumerated sampling when the
    /// acceptance rate collapses. Same distribution, amortised `O(1)` draws per step in
    /// sparse configurations.
    #[default]
    Adaptive,
    /// Pure rejection sampling, byte-identical to the original implementation for a
    /// given seed. Used by the equivalence suite and available for exact replays.
    Legacy,
    /// Geometric-jump batching over the incremental permissible-pair index: the number
    /// of consecutive ineffective selections on a frozen configuration is sampled in
    /// one draw and credited to the step counters, then one uniform *effective* pair
    /// is returned. Identical per-step distribution (see the module docs), `O(1)` work
    /// per effective step. Falls back to [`SamplingMode::Adaptive`] behaviour where
    /// the index cannot serve exact counts.
    Batched,
    /// Geometric-jump batching over the *sharded* index: the jump is drawn from the
    /// composition of the per-shard effective/permissible rates (`Geometric(ΣEₛ/ΣPₛ)`,
    /// which equals the sequential `Geometric(E/P)`; see the module docs), the counts
    /// come from the `O(1)` running aggregate instead of a per-version recount, and
    /// per-selection RNG substreams keep the execution byte-identical across shard
    /// counts. Same fallbacks as [`SamplingMode::Batched`].
    Sharded,
    /// The sharded sampler plus optimistic multi-core epochs: between selections,
    /// each epoch predicts the next `k` draws from the frozen per-shard counts,
    /// resolves them in parallel, applies them on a delta-logged scratch timeline,
    /// and rolls back to the serialization point; the canonical sharded draw then
    /// confirms or discards each prediction (see the module docs). Byte-identical
    /// executions to [`SamplingMode::Sharded`]; reverts to plain sharded behaviour
    /// when the speculation window is 0 or the world has a single shard.
    Speculative,
}

impl SamplingMode {
    /// Stable one-byte tag of this mode in the snapshot format (independent of the
    /// enum's declaration order, which is not a serialization contract).
    pub(crate) fn snapshot_tag(self) -> u8 {
        match self {
            SamplingMode::Adaptive => 0,
            SamplingMode::Legacy => 1,
            SamplingMode::Batched => 2,
            SamplingMode::Sharded => 3,
            SamplingMode::Speculative => 4,
        }
    }

    /// Inverse of [`SamplingMode::snapshot_tag`]; `None` on an unknown tag.
    pub(crate) fn from_snapshot_tag(tag: u8) -> Option<SamplingMode> {
        Some(match tag {
            0 => SamplingMode::Adaptive,
            1 => SamplingMode::Legacy,
            2 => SamplingMode::Batched,
            3 => SamplingMode::Sharded,
            4 => SamplingMode::Speculative,
            _ => return None,
        })
    }
}

/// A scheduler selects the next permissible interaction of a configuration.
pub trait Scheduler {
    /// Selects the next interaction, or `None` when no permissible pair exists (which can
    /// only happen for a population of a single node).
    fn next_interaction<P: Protocol>(&mut self, world: &World<P>) -> Option<Interaction>;

    /// Like [`Scheduler::next_interaction`], but consuming at most `max_steps`
    /// scheduler selections (including the returned one). A batching scheduler whose
    /// sampled jump would overshoot the allowance credits exactly `max_steps` skipped
    /// selections (drained via [`Scheduler::drain_skipped_steps`]) and returns `None`
    /// — the faithful behaviour of a step-budgeted run that spent its whole remaining
    /// budget on ineffective selections. Non-batching schedulers take one selection
    /// per call and ignore the bound.
    fn next_interaction_bounded<P: Protocol>(
        &mut self,
        world: &World<P>,
        max_steps: u64,
    ) -> Option<Interaction> {
        let _ = max_steps;
        self.next_interaction(world)
    }

    /// Takes (and resets) the number of scheduler selections that were credited in
    /// bulk — skipped ineffective selections of a batching scheduler — since the last
    /// drain. The caller must add them to its step accounting after every
    /// `next_interaction*` call.
    fn drain_skipped_steps(&mut self) -> u64 {
        0
    }

    /// Gives the scheduler mutable access to the world *between* selections, before
    /// the next `next_interaction*` call. The speculative scheduler uses this hook to
    /// run an optimistic epoch (predict, resolve in parallel, apply on a scratch
    /// timeline, roll back — see the module docs); every other scheduler ignores it.
    /// The hook must leave the configuration exactly as it found it.
    fn prepare<P: Protocol>(&mut self, world: &mut World<P>) {
        let _ = world;
    }

    /// Cumulative speculation counters of this scheduler (all zero for schedulers
    /// without speculative execution).
    fn speculation_stats(&self) -> SpeculationStats {
        SpeculationStats::default()
    }
}

/// Outcome flags of one speculated interaction, used to classify a later conflict:
/// what about the committed prefix could have shifted another shard's jump
/// distribution or selection ordinal.
#[derive(Clone, Copy, Debug, Default)]
struct SpecFlags {
    /// The interaction merged two components.
    merged: bool,
    /// The interaction split a component.
    split: bool,
    /// The participants were owned by different shards.
    cross_shard: bool,
}

impl SpecFlags {
    fn absorb(&mut self, other: SpecFlags) {
        self.merged |= other.merged;
        self.split |= other.split;
        self.cross_shard |= other.cross_shard;
    }
}

/// One entry of the speculation window: a predicted selection awaiting confirmation
/// by the canonical serialization.
#[derive(Clone, Copy, Debug)]
struct SpecEntry {
    /// The selection ordinal this prediction was keyed by (the substream index).
    ordinal: u64,
    /// The predicted — and, if `applied`, optimistically executed — interaction.
    interaction: Interaction,
    /// Whether the interaction was applied on the scratch timeline.
    applied: bool,
    /// Whether the prediction was already ineffective on the speculated timeline
    /// (the epoch stops applying at the first such entry).
    stale: bool,
    /// Outcome flags of the optimistic apply.
    flags: SpecFlags,
}

/// The uniform random scheduler of the paper. See the module docs for the two sampling
/// strategies.
#[derive(Debug)]
pub struct UniformScheduler {
    rng: StdRng,
    mode: SamplingMode,
    /// The base seed (kept for deriving the sharded mode's per-selection substreams).
    seed: u64,
    /// Selection-attempt ordinal of the sharded mode: each batched draw attempt uses
    /// the substream keyed by this counter, which advances on every attempt (including
    /// budget-exhausted ones, where the memorylessness of the geometric makes a fresh
    /// draw on the next attempt distributionally exact, just as in batched mode).
    sharded_draws: u64,
    /// Safety valve: give up after this many rejected samples (only reachable for n = 1,
    /// or in legacy mode for configurations with a vanishing permissible set).
    max_attempts: u32,
    /// Whether the acceptance rate has collapsed (enumerate instead of rejecting).
    collapsed: bool,
    /// Cached enumerated permissible set, valid for `cache_version`.
    cache: Vec<Interaction>,
    cache_version: u64,
    cache_valid: bool,
    /// Configuration version for which enumeration was refused (cross-component budget
    /// exceeded); pure rejection is used without re-probing until the version changes.
    refused_version: Option<u64>,
    /// Skipped ineffective selections credited by batched jumps, awaiting a drain.
    pending_skips: u64,
    /// Configuration version the batched counts below were computed for.
    batch_version: u64,
    batch_valid: bool,
    /// Sticky: the pair index overflowed its class table — batched mode permanently
    /// delegates to the adaptive strategy.
    batch_overflow: bool,
    /// This-version fallback: the multi×multi cross enumeration exceeded its budget.
    batch_fallback: bool,
    /// Exact permissible / effective pair counts of the frozen configuration
    /// (base classes from the incremental index + the enumerated multi×multi pairs).
    batch_permissible: u64,
    batch_effective: u64,
    /// Enumerated multi×multi cross pairs of the frozen configuration.
    batch_mm: Vec<Interaction>,
    /// The effective subset of `batch_mm`.
    batch_mm_eff: Vec<Interaction>,
    /// Speculation window size `k` (selections predicted per optimistic epoch);
    /// 0 disables speculation entirely.
    speculation: usize,
    /// Predictions awaiting confirmation by the canonical serialization, in ordinal
    /// order. Drained one entry per canonical selection; cleared on divergence.
    spec_window: VecDeque<SpecEntry>,
    /// Accumulated outcome flags of the committed prefix of the current window.
    spec_prefix: SpecFlags,
    /// Cumulative speculation counters.
    spec_stats: SpeculationStats,
}

impl UniformScheduler {
    /// Rejections within one draw before the adaptive mode switches to enumeration.
    /// Rejection sampling needs `(n·k)² / |permissible|` draws in expectation, so hitting
    /// this threshold means the permissible set occupies less than roughly 1/256 of the
    /// candidate space — exactly the regime where enumerating it is cheap.
    pub const SWITCH_THRESHOLD: u32 = 256;

    /// Budget for the cross-component part of an enumeration, in node pairs, as a
    /// multiple of the population size. Above it the sampler stays with rejection (a
    /// large cross-component universe implies a dense permissible set anyway). Shared
    /// with the world's stability fast path so both agree on affordability.
    const CROSS_BUDGET_PER_NODE: usize = crate::world::CROSS_BUDGET_PER_NODE;

    /// Creates a scheduler from a seed with the default adaptive sampling mode.
    #[must_use]
    pub fn seeded(seed: u64) -> UniformScheduler {
        UniformScheduler::with_mode(seed, SamplingMode::default())
    }

    /// Creates a scheduler from a seed with an explicit sampling mode.
    #[must_use]
    pub fn with_mode(seed: u64, mode: SamplingMode) -> UniformScheduler {
        UniformScheduler {
            rng: crate::rng::seeded(seed),
            mode,
            seed,
            sharded_draws: 0,
            max_attempts: 10_000_000,
            collapsed: false,
            cache: Vec::new(),
            cache_version: 0,
            cache_valid: false,
            refused_version: None,
            pending_skips: 0,
            batch_version: 0,
            batch_valid: false,
            batch_overflow: false,
            batch_fallback: false,
            batch_permissible: 0,
            batch_effective: 0,
            batch_mm: Vec::new(),
            batch_mm_eff: Vec::new(),
            speculation: crate::shard::default_speculation_window(),
            spec_window: VecDeque::new(),
            spec_prefix: SpecFlags::default(),
            spec_stats: SpeculationStats::default(),
        }
    }

    /// Sets the speculation window (selections predicted per optimistic epoch),
    /// clamped to [`crate::shard::MAX_SPECULATION_WINDOW`]. Only consulted in
    /// [`SamplingMode::Speculative`]; `0` makes that mode behave exactly like
    /// [`SamplingMode::Sharded`].
    #[must_use]
    pub fn with_speculation(mut self, k: usize) -> UniformScheduler {
        self.speculation = crate::shard::clamp_speculation_window(k);
        self
    }

    /// The speculation window this scheduler uses.
    #[must_use]
    pub fn speculation(&self) -> usize {
        self.speculation
    }

    /// Creates a scheduler from ambient entropy (see [`crate::rng::from_entropy`]).
    #[must_use]
    pub fn from_entropy() -> UniformScheduler {
        UniformScheduler::seeded(rand::entropy_seed())
    }

    /// The sampling mode this scheduler uses.
    #[must_use]
    pub fn mode(&self) -> SamplingMode {
        self.mode
    }

    /// Access to the underlying random number generator (used by protocols that need
    /// auxiliary randomness in experiments).
    pub fn rng(&mut self) -> &mut impl RngCore {
        &mut self.rng
    }

    /// One uniform draw from the full candidate space, or `None` if it is not
    /// permissible (a rejection). Identical to one iteration of the original sampler.
    fn draw<P: Protocol>(&mut self, world: &World<P>) -> Option<Interaction> {
        let n = world.len();
        let ports = world.dim().dirs();
        let a = self.rng.gen_range(0..n);
        let b = self.rng.gen_range(0..n);
        if a == b {
            return None;
        }
        let pa = ports[self.rng.gen_range(0..ports.len())];
        let pb = ports[self.rng.gen_range(0..ports.len())];
        world.interaction(
            crate::NodeId::new(a as u32),
            pa,
            crate::NodeId::new(b as u32),
            pb,
        )
    }

    fn next_legacy<P: Protocol>(&mut self, world: &World<P>) -> Option<Interaction> {
        for _ in 0..self.max_attempts {
            if let Some(interaction) = self.draw(world) {
                return Some(interaction);
            }
        }
        None
    }

    fn next_adaptive<P: Protocol>(&mut self, world: &World<P>) -> Option<Interaction> {
        let version = world.version();
        if self.cache_valid && self.cache_version == version {
            return self.sample_cached();
        }
        self.cache_valid = false;
        if self.refused_version == Some(version) {
            // Enumeration was already refused for this exact configuration: rejection
            // sampling is the chosen tool until something changes.
            return self.next_legacy(world);
        }
        self.refused_version = None;
        if !self.collapsed {
            for _ in 0..Self::SWITCH_THRESHOLD {
                if let Some(interaction) = self.draw(world) {
                    return Some(interaction);
                }
            }
            self.collapsed = true;
        }
        match world.enumerate_permissible(Self::CROSS_BUDGET_PER_NODE * world.len()) {
            Some(pairs) => {
                // If the permissible set turns out dense after all, rejection would be
                // cheap again: leave collapsed mode once the configuration changes.
                let ports = world.dim().dirs().len();
                let universe = (world.len() * ports).pow(2) / 2;
                if pairs.len().saturating_mul(64) >= universe {
                    self.collapsed = false;
                }
                self.cache = pairs;
                self.cache_version = version;
                self.cache_valid = true;
                self.sample_cached()
            }
            None => {
                // Enumeration over budget: the cross-component universe is large, so
                // rejection sampling is the right tool while this configuration lasts.
                self.collapsed = false;
                self.refused_version = Some(version);
                self.next_legacy(world)
            }
        }
    }

    fn sample_cached(&mut self) -> Option<Interaction> {
        if self.cache.is_empty() {
            return None;
        }
        let pick = self.rng.gen_range(0..self.cache.len());
        Some(self.cache[pick])
    }

    /// Recomputes the exact pair counts for the current frozen configuration: the base
    /// classes come from the incremental permissible-pair index (per-version recount in
    /// batched mode, the `O(1)` running aggregate in sharded mode); multi×multi cross
    /// pairs (empty in single-growth workloads) are enumerated under the cross budget.
    fn refresh_batch<P: Protocol>(&mut self, world: &World<P>, version: u64) {
        self.batch_valid = false;
        self.batch_fallback = false;
        self.batch_mm.clear();
        self.batch_mm_eff.clear();
        let summary = if matches!(self.mode, SamplingMode::Sharded | SamplingMode::Speculative) {
            world.pair_counts_sharded()
        } else {
            world.pair_counts()
        };
        let Some(summary) = summary else {
            self.batch_overflow = true;
            return;
        };
        if summary.multi_components >= 2 {
            match world.enumerate_cross_multi(world.cross_multi_budget()) {
                Some(list) => {
                    for (interaction, effective) in list {
                        if effective {
                            self.batch_mm_eff.push(interaction);
                        }
                        self.batch_mm.push(interaction);
                    }
                }
                None => {
                    self.batch_fallback = true;
                }
            }
        }
        self.batch_permissible = summary.permissible_base + self.batch_mm.len() as u64;
        self.batch_effective = summary.effective_base + self.batch_mm_eff.len() as u64;
        self.batch_version = version;
        self.batch_valid = true;
    }

    /// One batched selection: sample the geometric jump to the next effective
    /// selection, credit the skipped ineffective ones, and return a uniform effective
    /// pair — or, within `max_steps` of budget, stop early. See the module docs for
    /// why this realises the exact per-step uniform distribution.
    fn next_batched<P: Protocol>(
        &mut self,
        world: &World<P>,
        max_steps: u64,
    ) -> Option<Interaction> {
        if self.batch_overflow {
            return self.next_adaptive(world);
        }
        let version = world.version();
        if !self.batch_valid || self.batch_version != version {
            self.refresh_batch(world, version);
            if self.batch_overflow {
                return self.next_adaptive(world);
            }
        }
        if self.batch_fallback {
            return self.next_adaptive(world);
        }
        if self.batch_permissible == 0 {
            return None;
        }
        if self.batch_effective == 0 {
            // The configuration is stable: every further selection is ineffective, so
            // there is no effective selection to jump to. Draw single uniform
            // permissible selections, one per call, exactly like the other modes.
            let idx = self.rng.gen_range(0..self.batch_permissible);
            return Some(self.pick_permissible(world, idx));
        }
        let p = self.batch_effective as f64 / self.batch_permissible as f64;
        let jump = crate::rng::geometric(&mut self.rng, p);
        if jump > max_steps {
            // The whole remaining step budget is spent on ineffective selections.
            self.pending_skips += max_steps;
            return None;
        }
        self.pending_skips += jump - 1;
        let idx = self.rng.gen_range(0..self.batch_effective);
        Some(self.pick_effective(world, idx))
    }

    /// One sharded selection: identical batched semantics (see the module docs for the
    /// per-shard rate composition argument), served from the `O(1)` aggregate counts
    /// and drawing jump + index from the per-selection substream.
    fn next_sharded<P: Protocol>(
        &mut self,
        world: &World<P>,
        max_steps: u64,
    ) -> Option<Interaction> {
        if self.batch_overflow {
            return self.next_adaptive(world);
        }
        let version = world.version();
        if !self.batch_valid || self.batch_version != version {
            self.refresh_batch(world, version);
            if self.batch_overflow {
                return self.next_adaptive(world);
            }
        }
        if self.batch_fallback {
            return self.next_adaptive(world);
        }
        if self.batch_permissible == 0 {
            return None;
        }
        let mut sub = crate::rng::substream(self.seed, self.sharded_draws);
        self.sharded_draws += 1;
        if self.batch_effective == 0 {
            // The configuration is stable: every further selection is ineffective, so
            // there is no effective selection to jump to. Draw single uniform
            // permissible selections, one per call, exactly like the other modes.
            let idx = sub.gen_range(0..self.batch_permissible);
            return Some(self.pick_permissible(world, idx));
        }
        let p = self.batch_effective as f64 / self.batch_permissible as f64;
        let jump = crate::rng::geometric(&mut sub, p);
        if jump > max_steps {
            self.pending_skips += max_steps;
            return None;
        }
        self.pending_skips += jump - 1;
        let idx = sub.gen_range(0..self.batch_effective);
        Some(self.pick_effective(world, idx))
    }

    fn pick_effective<P: Protocol>(&mut self, world: &World<P>, idx: u64) -> Interaction {
        let base = self.batch_effective - self.batch_mm_eff.len() as u64;
        if idx < base {
            world.sample_effective_base(idx)
        } else {
            self.batch_mm_eff[(idx - base) as usize]
        }
    }

    fn pick_permissible<P: Protocol>(&mut self, world: &World<P>, idx: u64) -> Interaction {
        let base = self.batch_permissible - self.batch_mm.len() as u64;
        if idx < base {
            world.sample_permissible_base(idx)
        } else {
            self.batch_mm[(idx - base) as usize]
        }
    }

    // --- snapshots (see `crate::snapshot` for the format and the exactness notes) ------

    /// Encodes the resumability-critical scheduler state: the RNG stream position,
    /// the sharded substream ordinal, the sticky adaptive/batched flags, whether the
    /// adaptive enumeration cache is warm for the *current* world version, and any
    /// undrained bulk-credited skips. The cache contents, the per-version batch
    /// counts and the speculation window are deliberately not persisted: the first
    /// two are deterministically re-derived without consuming randomness, and
    /// speculative applies are always rolled back before a serialization point, so
    /// dropping the window discards prediction work, never trajectory state.
    pub(crate) fn snapshot_encode<P: Protocol>(
        &self,
        world: &World<P>,
        out: &mut crate::SnapshotWriter,
    ) {
        for word in self.rng.state() {
            out.u64(word);
        }
        out.u64(self.sharded_draws);
        out.bool(self.collapsed);
        out.bool(self.batch_overflow);
        // A warm enumeration cache means the next adaptive draw costs one RNG draw
        // (`sample_cached`); a cold resume would instead probe up to SWITCH_THRESHOLD
        // draws first and diverge the stream. The flag is persisted, the contents
        // re-enumerated on resume (deterministic, consumes no randomness).
        out.bool(self.cache_valid && self.cache_version == world.version());
        out.u64(self.pending_skips);
    }

    /// Decodes the counterpart of [`UniformScheduler::snapshot_encode`], rebuilding a
    /// scheduler that continues the interrupted RNG streams exactly. `seed`, `mode`
    /// and `speculation` come from the snapshot's persisted configuration.
    ///
    /// # Errors
    /// [`crate::CoreError::SnapshotTruncated`] or [`crate::CoreError::SnapshotCorrupt`].
    pub(crate) fn snapshot_decode<P: Protocol>(
        seed: u64,
        mode: SamplingMode,
        speculation: usize,
        world: &World<P>,
        r: &mut crate::SnapshotReader<'_>,
    ) -> crate::Result<UniformScheduler> {
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = r.u64()?;
        }
        if state == [0; 4] {
            // Unreachable for a genuine xoshiro stream; rejecting keeps
            // `StdRng::from_state`'s zero-state fallback out of resumed runs.
            return Err(crate::CoreError::SnapshotCorrupt {
                what: "scheduler RNG state is all zero",
            });
        }
        let sharded_draws = r.u64()?;
        let collapsed = r.bool()?;
        let batch_overflow = r.bool()?;
        let cache_warm = r.bool()?;
        let pending_skips = r.u64()?;
        let mut scheduler = UniformScheduler::with_mode(seed, mode).with_speculation(speculation);
        scheduler.rng = StdRng::from_state(state);
        scheduler.sharded_draws = sharded_draws;
        scheduler.collapsed = collapsed;
        scheduler.batch_overflow = batch_overflow;
        scheduler.pending_skips = pending_skips;
        if cache_warm {
            scheduler.warm_cache(world)?;
        }
        Ok(scheduler)
    }

    /// Repopulates the adaptive enumeration cache for the current world version by
    /// re-running the deterministic enumeration (no randomness consumed) — the resume
    /// half of the warm-cache flag persisted by [`UniformScheduler::snapshot_encode`].
    fn warm_cache<P: Protocol>(&mut self, world: &World<P>) -> crate::Result<()> {
        let version = world.version();
        match world.enumerate_permissible(Self::CROSS_BUDGET_PER_NODE * world.len()) {
            Some(pairs) => {
                self.cache = pairs;
                self.cache_version = version;
                self.cache_valid = true;
                Ok(())
            }
            None => Err(crate::CoreError::SnapshotCorrupt {
                what: "warm enumeration cache claimed for an over-budget configuration",
            }),
        }
    }

    /// One optimistic epoch: predict the next `k` selections from the frozen counts,
    /// resolve the drawn indices in parallel (one task per owning shard), apply the
    /// predictions on a delta-logged scratch timeline, and roll back to the
    /// serialization point, leaving the window for [`Self::reconcile`] to drain.
    ///
    /// The configuration is left exactly as found: the rollback restores the world,
    /// the pair-index aggregate and the per-shard sub-index layouts byte for byte
    /// (the delta-log exactness suite pins this down), which is what lets the
    /// canonical sampler stay authoritative and byte-identical to sharded mode.
    fn speculative_epoch<P: Protocol>(&mut self, world: &mut World<P>) {
        let k = self.speculation;
        debug_assert!(self.spec_window.is_empty(), "epoch over a live window");
        if self.batch_overflow {
            return;
        }
        let version = world.version();
        if !self.batch_valid || self.batch_version != version {
            self.refresh_batch(world, version);
        }
        // No speculation without exact frozen counts (overflow / budget fallback), on
        // empty or stable configurations (the geometric needs p > 0), or without
        // enough class-table headroom: every apply rewrites at most two states, so
        // `2k` free slots guarantee no mid-epoch overflow — an overflow would rebuild
        // the index and (through slot reuse) break the allocation-history-dependent
        // class ids the rollback restores.
        if self.batch_overflow
            || self.batch_fallback
            || self.batch_permissible == 0
            || self.batch_effective == 0
            || !world.class_headroom(2 * k)
        {
            return;
        }
        // Phase A — predict: replay the substreams the canonical sampler will use for
        // the next `k` ordinals against the frozen counts. The geometric draw is
        // consumed (to keep the stream position identical to the canonical draw) but
        // its value is irrelevant here: jumps only credit step counters, which the
        // canonical serialization accounts for.
        let p = self.batch_effective as f64 / self.batch_permissible as f64;
        let base = self.batch_effective - self.batch_mm_eff.len() as u64;
        let shard_count = world.shard_count();
        // One bucket per owning shard for materialised intra pairs, plus one for the
        // class-counted region (bucket `shard_count`) and the direct mm hits.
        let mut buckets: Vec<Vec<(usize, u64)>> = vec![Vec::new(); shard_count + 1];
        let mut predictions: Vec<Option<Interaction>> = vec![None; k];
        for (i, slot) in predictions.iter_mut().enumerate() {
            let mut sub = crate::rng::substream(self.seed, self.sharded_draws + i as u64);
            let _jump = crate::rng::geometric(&mut sub, p);
            let idx = sub.gen_range(0..self.batch_effective);
            if idx >= base {
                *slot = Some(self.batch_mm_eff[(idx - base) as usize]);
            } else {
                let bucket = world.effective_owner_shard(idx).unwrap_or(shard_count);
                buckets[bucket].push((i, idx));
            }
        }
        // Phase A′ — resolve in parallel: walk each bucket's indices to concrete
        // pairs in its own task (disjoint output slices, the crate's scope idiom).
        let mut outs: Vec<Vec<(usize, Interaction)>> = buckets
            .iter()
            .map(|bucket| Vec::with_capacity(bucket.len()))
            .collect();
        {
            let obs = world.telemetry().clone();
            let mut timer = obs.phase(nc_obs::Phase::Resolve);
            timer.add_units(buckets.iter().map(|b| b.len() as u64).sum());
            let world_ref: &World<P> = world;
            rayon::scope(|scope| {
                for (bucket, out) in buckets.iter().zip(outs.iter_mut()) {
                    if bucket.is_empty() {
                        continue;
                    }
                    scope.spawn(move |_| {
                        out.extend(
                            bucket
                                .iter()
                                .map(|&(pos, idx)| (pos, world_ref.sample_effective_base(idx))),
                        );
                    });
                }
            });
        }
        for (pos, interaction) in outs.into_iter().flatten() {
            predictions[pos] = Some(interaction);
        }
        // Phase B — optimistic apply on a scratch timeline. Each prediction is
        // re-checked for effectiveness on the *speculated* configuration (earlier
        // window entries have already been applied to it); a prediction that went
        // stale stops the epoch. The check does not re-verify the index mapping — a
        // still-effective pair whose ordinal the canonical order reassigns is applied
        // optimistically here and caught at reconciliation, the honest Time-Warp
        // trade.
        self.spec_prefix = SpecFlags::default();
        let mark = world.checkpoint();
        let mut halted = false;
        for (i, prediction) in predictions.into_iter().enumerate() {
            let predicted = prediction.expect("every prediction slot is resolved");
            let ordinal = self.sharded_draws + i as u64;
            if halted {
                self.spec_window.push_back(SpecEntry {
                    ordinal,
                    interaction: predicted,
                    applied: false,
                    stale: false,
                    flags: SpecFlags::default(),
                });
                continue;
            }
            match world.effective_interaction_at(
                predicted.a,
                predicted.pa,
                predicted.b,
                predicted.pb,
            ) {
                None => {
                    halted = true;
                    self.spec_window.push_back(SpecEntry {
                        ordinal,
                        interaction: predicted,
                        applied: false,
                        stale: true,
                        flags: SpecFlags::default(),
                    });
                }
                Some(fresh) => {
                    let cross_shard = world.node_shard(fresh.a) != world.node_shard(fresh.b);
                    let outcome = world.apply(&fresh);
                    self.spec_stats.speculated += 1;
                    self.spec_window.push_back(SpecEntry {
                        ordinal,
                        interaction: fresh,
                        applied: true,
                        stale: false,
                        flags: SpecFlags {
                            merged: outcome.merged,
                            split: outcome.split,
                            cross_shard,
                        },
                    });
                }
            }
        }
        // Phase C — back to the serialization point. The rollback fires every epoch,
        // so byte-identity to sharded mode *depends* on its exactness: every
        // speculative run doubles as an oracle for the delta log.
        world
            .rollback(mark)
            .expect("the epoch opened by this function is still open");
    }

    /// One speculative selection: the canonical sharded draw stays authoritative
    /// (byte-identity by construction); the speculation window opened by
    /// [`Scheduler::prepare`] is reconciled against it afterwards.
    fn next_speculative<P: Protocol>(
        &mut self,
        world: &World<P>,
        max_steps: u64,
    ) -> Option<Interaction> {
        if self.speculation == 0 || world.shard_count() <= 1 {
            // Satellite fallback: without a window or without parallelism to exploit,
            // speculative mode *is* sharded mode (and keeps zero speculation stats).
            return self.next_sharded(world, max_steps);
        }
        let canonical = self.next_sharded(world, max_steps);
        self.reconcile(canonical.as_ref());
        canonical
    }

    /// Reconciles the canonical selection against the speculation window front: a
    /// match commits the speculated interaction, a divergence discards the remainder
    /// of the window and classifies the conflict by what the committed prefix (or the
    /// diverging entry itself) did — merge, split, or a bare class-count delta — plus
    /// a cross-shard marker when shard-crossing interactions were involved.
    fn reconcile(&mut self, canonical: Option<&Interaction>) {
        if self.spec_window.is_empty() {
            return;
        }
        let Some(canonical) = canonical else {
            // Budget-exhausted (or permissible-empty) canonical selection: the
            // ordinal was still consumed where a jump overshot the budget, so none of
            // the window's predictions can be confirmed any more.
            self.discard_window(0);
            return;
        };
        let front = self.spec_window.pop_front().expect("window is not empty");
        let matched = front.applied
            && !front.stale
            && front.interaction == *canonical
            && front.ordinal + 1 == self.sharded_draws;
        if matched {
            self.spec_stats.committed += 1;
            self.spec_prefix.absorb(front.flags);
            return;
        }
        self.spec_stats.conflicts += 1;
        if self.spec_prefix.merged || front.flags.merged {
            self.spec_stats.conflict_merges += 1;
        } else if self.spec_prefix.split || front.flags.split {
            self.spec_stats.conflict_splits += 1;
        } else {
            self.spec_stats.conflict_class_deltas += 1;
        }
        if self.spec_prefix.cross_shard || front.flags.cross_shard {
            self.spec_stats.conflict_cross_shard += 1;
        }
        self.discard_window(u64::from(front.applied));
    }

    /// Drops every remaining window entry, counting the applied ones (plus `extra`
    /// already-popped applied entries) as rolled back.
    fn discard_window(&mut self, extra: u64) {
        let applied = self
            .spec_window
            .iter()
            .filter(|entry| entry.applied)
            .count() as u64;
        self.spec_stats.rolled_back += applied + extra;
        self.spec_window.clear();
        self.spec_prefix = SpecFlags::default();
    }
}

impl Scheduler for UniformScheduler {
    fn next_interaction<P: Protocol>(&mut self, world: &World<P>) -> Option<Interaction> {
        self.next_interaction_bounded(world, u64::MAX)
    }

    fn next_interaction_bounded<P: Protocol>(
        &mut self,
        world: &World<P>,
        max_steps: u64,
    ) -> Option<Interaction> {
        if world.len() < 2 || max_steps == 0 {
            return None;
        }
        match self.mode {
            SamplingMode::Legacy => self.next_legacy(world),
            SamplingMode::Adaptive => self.next_adaptive(world),
            SamplingMode::Batched => self.next_batched(world, max_steps),
            SamplingMode::Sharded => self.next_sharded(world, max_steps),
            SamplingMode::Speculative => self.next_speculative(world, max_steps),
        }
    }

    fn drain_skipped_steps(&mut self) -> u64 {
        std::mem::take(&mut self.pending_skips)
    }

    fn prepare<P: Protocol>(&mut self, world: &mut World<P>) {
        if self.mode == SamplingMode::Speculative
            && self.speculation > 0
            && world.shard_count() > 1
            && self.spec_window.is_empty()
            && world.len() >= 2
        {
            self.speculative_epoch(world);
        }
    }

    fn speculation_stats(&self) -> SpeculationStats {
        self.spec_stats
    }
}

/// A deterministic scheduler that always picks an *effective* interaction if one exists,
/// through the incremental interaction index (amortised `O(active)` instead of a full
/// scan). Useful to fast-forward constructions in unit tests where the probabilistic
/// schedule is irrelevant; it is fair on every execution it completes because it only
/// stops when no effective interaction remains.
#[derive(Debug, Default, Clone, Copy)]
pub struct GreedyScheduler;

impl Scheduler for GreedyScheduler {
    fn next_interaction<P: Protocol>(&mut self, world: &World<P>) -> Option<Interaction> {
        world.find_effective_interaction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeId, Transition};
    use nc_geometry::Dir;

    struct Pairing;

    #[derive(Clone, PartialEq, Debug)]
    enum S {
        Single,
        Paired,
    }

    impl Protocol for Pairing {
        type State = S;

        fn initial_state(&self, _node: NodeId, _n: usize) -> S {
            S::Single
        }

        fn transition(
            &self,
            a: &S,
            _pa: Dir,
            b: &S,
            _pb: Dir,
            bonded: bool,
        ) -> Option<Transition<S>> {
            if !bonded && *a == S::Single && *b == S::Single {
                Some(Transition {
                    a: S::Paired,
                    b: S::Paired,
                    bond: true,
                })
            } else {
                None
            }
        }
    }

    #[test]
    fn uniform_scheduler_is_reproducible() {
        for mode in [SamplingMode::Adaptive, SamplingMode::Legacy] {
            let world = World::new(Pairing, 6);
            let mut s1 = UniformScheduler::with_mode(42, mode);
            let mut s2 = UniformScheduler::with_mode(42, mode);
            for _ in 0..20 {
                assert_eq!(s1.next_interaction(&world), s2.next_interaction(&world));
            }
        }
    }

    #[test]
    fn adaptive_and_legacy_agree_before_the_switch() {
        // On a dense configuration the adaptive sampler never collapses, so it consumes
        // the seeded stream exactly like the legacy sampler.
        let world = World::new(Pairing, 8);
        let mut legacy = UniformScheduler::with_mode(9, SamplingMode::Legacy);
        let mut adaptive = UniformScheduler::with_mode(9, SamplingMode::Adaptive);
        for _ in 0..50 {
            assert_eq!(
                legacy.next_interaction(&world),
                adaptive.next_interaction(&world)
            );
        }
    }

    #[test]
    fn uniform_scheduler_returns_none_for_singleton_population() {
        let world = World::new(Pairing, 1);
        let mut s = UniformScheduler::seeded(1);
        assert_eq!(s.next_interaction(&world), None);
    }

    #[test]
    fn uniform_scheduler_only_returns_permissible_pairs() {
        for mode in [SamplingMode::Adaptive, SamplingMode::Legacy] {
            let mut world = World::new(Pairing, 8);
            let mut s = UniformScheduler::with_mode(7, mode);
            for _ in 0..200 {
                let interaction = s.next_interaction(&world).expect("pairs exist");
                assert!(world
                    .permissibility(interaction.a, interaction.pa, interaction.b, interaction.pb)
                    .is_some());
                world.apply(&interaction);
                assert!(world.check_invariants());
            }
        }
    }

    /// A head absorbs free nodes right-port-to-left-port into one straight chain.
    struct Chain;

    #[derive(Clone, PartialEq, Debug)]
    enum C {
        Head,
        Body,
        Free,
    }

    impl Protocol for Chain {
        type State = C;

        fn initial_state(&self, node: NodeId, _n: usize) -> C {
            if node.index() == 0 {
                C::Head
            } else {
                C::Free
            }
        }

        fn transition(
            &self,
            a: &C,
            pa: Dir,
            b: &C,
            _pb: Dir,
            bonded: bool,
        ) -> Option<Transition<C>> {
            if !bonded && *a == C::Head && pa == Dir::Right && *b == C::Free {
                Some(Transition {
                    a: C::Body,
                    b: C::Head,
                    bond: true,
                })
            } else {
                None
            }
        }
    }

    #[test]
    fn enumerated_mode_kicks_in_on_sparse_configurations() {
        // A complete 16-node chain is a single component whose only permissible pairs
        // are the 15 bonded ones: acceptance ≈ 15 / 2016, so a few hundred draws push
        // the adaptive sampler into enumerated mode, which must keep producing exactly
        // the bonded pairs (the uniform distribution over the permissible set).
        let n = 16;
        let mut world = World::new(Chain, n);
        for k in 1..n as u32 {
            let i = world
                .interaction(NodeId::new(k - 1), Dir::Right, NodeId::new(k), Dir::Left)
                .expect("chain step is permissible");
            assert!(world.apply(&i).effective);
        }
        let mut s = UniformScheduler::seeded(3);
        let mut bonded_seen = std::collections::HashSet::new();
        for _ in 0..2_000 {
            let interaction = s.next_interaction(&world).expect("bonded pairs remain");
            assert!(matches!(
                interaction.permissibility,
                crate::Permissibility::Bonded
            ));
            bonded_seen.insert((
                interaction.a.min(interaction.b),
                interaction.a.max(interaction.b),
            ));
        }
        assert!(s.collapsed || s.cache_valid, "sampler should have switched");
        assert_eq!(
            bonded_seen.len(),
            n - 1,
            "every bonded pair must be reachable"
        );
    }

    #[test]
    fn greedy_scheduler_finds_effective_until_stable() {
        let mut world = World::new(Pairing, 6);
        let mut greedy = GreedyScheduler;
        let mut effective = 0;
        while let Some(i) = greedy.next_interaction(&world) {
            let outcome = world.apply(&i);
            assert!(outcome.effective);
            effective += 1;
            assert!(effective <= 3, "at most n/2 pairings possible");
        }
        assert_eq!(effective, 3);
        assert!(world.is_stable());
    }
}
