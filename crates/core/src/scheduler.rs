//! Schedulers: who interacts next.
//!
//! The paper's fairness condition is satisfied with probability 1 by the *uniform random
//! scheduler*, which at every step selects independently and uniformly at random one of
//! the interactions permitted by the current configuration. That scheduler is also the
//! probabilistic assumption behind every "with high probability" statement, so it is the
//! default here. A greedy deterministic scheduler is provided for fast-forwarding tests.
//!
//! # Sampling strategies
//!
//! Two strategies realise the same uniform distribution over permissible pairs:
//!
//! * **Rejection sampling** (the original implementation, kept verbatim behind
//!   [`SamplingMode::Legacy`]): draw an unordered node-port pair uniformly from all
//!   `(n·k choose 2)` candidates and redraw until a permissible one is found.
//!   Conditioning a uniform distribution on the permissible subset yields exactly the
//!   uniform distribution over permissible pairs. Cheap while the permissible set is
//!   dense (early phases, many free nodes), but the expected number of redraws is
//!   `(n·k)² / |permissible|`, which degenerates to `Θ(n·k²)` per step late in a
//!   construction when almost everything is bonded or halted.
//! * **Enumerated sampling**: ask the world for the exact permissible set
//!   ([`crate::World::enumerate_permissible`]) and draw one element with a single
//!   `gen_range`. One enumeration is `O(n·k)` plus the cross-component pairs, and the
//!   result is cached until the configuration version changes, so late phases cost
//!   `O(1)` per step. The drawn distribution is uniform over the same set, so every
//!   "w.h.p." statement is unaffected.
//!
//! [`SamplingMode::Adaptive`] (the default) starts with rejection sampling and switches
//! to enumerated sampling for a configuration once a draw takes more than
//! [`UniformScheduler::SWITCH_THRESHOLD`] rejections — i.e. exactly when the acceptance
//! rate has collapsed. The two modes generally consume the seeded RNG stream
//! differently, so runs are reproducible *per mode*; [`SamplingMode::Legacy`] reproduces
//! the original sampler byte for byte, which the equivalence suite uses as its
//! reference.

use crate::{Interaction, Protocol, World};
use rand::rngs::StdRng;
use rand::{Rng, RngCore};

/// How the uniform scheduler realises the uniform distribution over permissible pairs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SamplingMode {
    /// Rejection sampling with an adaptive fallback to enumerated sampling when the
    /// acceptance rate collapses. Same distribution, amortised `O(1)` draws per step in
    /// sparse configurations.
    #[default]
    Adaptive,
    /// Pure rejection sampling, byte-identical to the original implementation for a
    /// given seed. Used by the equivalence suite and available for exact replays.
    Legacy,
}

/// A scheduler selects the next permissible interaction of a configuration.
pub trait Scheduler {
    /// Selects the next interaction, or `None` when no permissible pair exists (which can
    /// only happen for a population of a single node).
    fn next_interaction<P: Protocol>(&mut self, world: &World<P>) -> Option<Interaction>;
}

/// The uniform random scheduler of the paper. See the module docs for the two sampling
/// strategies.
#[derive(Debug)]
pub struct UniformScheduler {
    rng: StdRng,
    mode: SamplingMode,
    /// Safety valve: give up after this many rejected samples (only reachable for n = 1,
    /// or in legacy mode for configurations with a vanishing permissible set).
    max_attempts: u32,
    /// Whether the acceptance rate has collapsed (enumerate instead of rejecting).
    collapsed: bool,
    /// Cached enumerated permissible set, valid for `cache_version`.
    cache: Vec<Interaction>,
    cache_version: u64,
    cache_valid: bool,
    /// Configuration version for which enumeration was refused (cross-component budget
    /// exceeded); pure rejection is used without re-probing until the version changes.
    refused_version: Option<u64>,
}

impl UniformScheduler {
    /// Rejections within one draw before the adaptive mode switches to enumeration.
    /// Rejection sampling needs `(n·k)² / |permissible|` draws in expectation, so hitting
    /// this threshold means the permissible set occupies less than roughly 1/256 of the
    /// candidate space — exactly the regime where enumerating it is cheap.
    pub const SWITCH_THRESHOLD: u32 = 256;

    /// Budget for the cross-component part of an enumeration, in node pairs, as a
    /// multiple of the population size. Above it the sampler stays with rejection (a
    /// large cross-component universe implies a dense permissible set anyway).
    const CROSS_BUDGET_PER_NODE: usize = 64;

    /// Creates a scheduler from a seed with the default adaptive sampling mode.
    #[must_use]
    pub fn seeded(seed: u64) -> UniformScheduler {
        UniformScheduler::with_mode(seed, SamplingMode::default())
    }

    /// Creates a scheduler from a seed with an explicit sampling mode.
    #[must_use]
    pub fn with_mode(seed: u64, mode: SamplingMode) -> UniformScheduler {
        UniformScheduler {
            rng: crate::rng::seeded(seed),
            mode,
            max_attempts: 10_000_000,
            collapsed: false,
            cache: Vec::new(),
            cache_version: 0,
            cache_valid: false,
            refused_version: None,
        }
    }

    /// Creates a scheduler from ambient entropy (see [`crate::rng::from_entropy`]).
    #[must_use]
    pub fn from_entropy() -> UniformScheduler {
        UniformScheduler::seeded(rand::entropy_seed())
    }

    /// The sampling mode this scheduler uses.
    #[must_use]
    pub fn mode(&self) -> SamplingMode {
        self.mode
    }

    /// Access to the underlying random number generator (used by protocols that need
    /// auxiliary randomness in experiments).
    pub fn rng(&mut self) -> &mut impl RngCore {
        &mut self.rng
    }

    /// One uniform draw from the full candidate space, or `None` if it is not
    /// permissible (a rejection). Identical to one iteration of the original sampler.
    fn draw<P: Protocol>(&mut self, world: &World<P>) -> Option<Interaction> {
        let n = world.len();
        let ports = world.dim().dirs();
        let a = self.rng.gen_range(0..n);
        let b = self.rng.gen_range(0..n);
        if a == b {
            return None;
        }
        let pa = ports[self.rng.gen_range(0..ports.len())];
        let pb = ports[self.rng.gen_range(0..ports.len())];
        world.interaction(
            crate::NodeId::new(a as u32),
            pa,
            crate::NodeId::new(b as u32),
            pb,
        )
    }

    fn next_legacy<P: Protocol>(&mut self, world: &World<P>) -> Option<Interaction> {
        for _ in 0..self.max_attempts {
            if let Some(interaction) = self.draw(world) {
                return Some(interaction);
            }
        }
        None
    }

    fn next_adaptive<P: Protocol>(&mut self, world: &World<P>) -> Option<Interaction> {
        let version = world.version();
        if self.cache_valid && self.cache_version == version {
            return self.sample_cached();
        }
        self.cache_valid = false;
        if self.refused_version == Some(version) {
            // Enumeration was already refused for this exact configuration: rejection
            // sampling is the chosen tool until something changes.
            return self.next_legacy(world);
        }
        self.refused_version = None;
        if !self.collapsed {
            for _ in 0..Self::SWITCH_THRESHOLD {
                if let Some(interaction) = self.draw(world) {
                    return Some(interaction);
                }
            }
            self.collapsed = true;
        }
        match world.enumerate_permissible(Self::CROSS_BUDGET_PER_NODE * world.len()) {
            Some(pairs) => {
                // If the permissible set turns out dense after all, rejection would be
                // cheap again: leave collapsed mode once the configuration changes.
                let ports = world.dim().dirs().len();
                let universe = (world.len() * ports).pow(2) / 2;
                if pairs.len().saturating_mul(64) >= universe {
                    self.collapsed = false;
                }
                self.cache = pairs;
                self.cache_version = version;
                self.cache_valid = true;
                self.sample_cached()
            }
            None => {
                // Enumeration over budget: the cross-component universe is large, so
                // rejection sampling is the right tool while this configuration lasts.
                self.collapsed = false;
                self.refused_version = Some(version);
                self.next_legacy(world)
            }
        }
    }

    fn sample_cached(&mut self) -> Option<Interaction> {
        if self.cache.is_empty() {
            return None;
        }
        let pick = self.rng.gen_range(0..self.cache.len());
        Some(self.cache[pick])
    }
}

impl Scheduler for UniformScheduler {
    fn next_interaction<P: Protocol>(&mut self, world: &World<P>) -> Option<Interaction> {
        if world.len() < 2 {
            return None;
        }
        match self.mode {
            SamplingMode::Legacy => self.next_legacy(world),
            SamplingMode::Adaptive => self.next_adaptive(world),
        }
    }
}

/// A deterministic scheduler that always picks an *effective* interaction if one exists,
/// through the incremental interaction index (amortised `O(active)` instead of a full
/// scan). Useful to fast-forward constructions in unit tests where the probabilistic
/// schedule is irrelevant; it is fair on every execution it completes because it only
/// stops when no effective interaction remains.
#[derive(Debug, Default, Clone, Copy)]
pub struct GreedyScheduler;

impl Scheduler for GreedyScheduler {
    fn next_interaction<P: Protocol>(&mut self, world: &World<P>) -> Option<Interaction> {
        world.find_effective_interaction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeId, Transition};
    use nc_geometry::Dir;

    struct Pairing;

    #[derive(Clone, PartialEq, Debug)]
    enum S {
        Single,
        Paired,
    }

    impl Protocol for Pairing {
        type State = S;

        fn initial_state(&self, _node: NodeId, _n: usize) -> S {
            S::Single
        }

        fn transition(
            &self,
            a: &S,
            _pa: Dir,
            b: &S,
            _pb: Dir,
            bonded: bool,
        ) -> Option<Transition<S>> {
            if !bonded && *a == S::Single && *b == S::Single {
                Some(Transition {
                    a: S::Paired,
                    b: S::Paired,
                    bond: true,
                })
            } else {
                None
            }
        }
    }

    #[test]
    fn uniform_scheduler_is_reproducible() {
        for mode in [SamplingMode::Adaptive, SamplingMode::Legacy] {
            let world = World::new(Pairing, 6);
            let mut s1 = UniformScheduler::with_mode(42, mode);
            let mut s2 = UniformScheduler::with_mode(42, mode);
            for _ in 0..20 {
                assert_eq!(s1.next_interaction(&world), s2.next_interaction(&world));
            }
        }
    }

    #[test]
    fn adaptive_and_legacy_agree_before_the_switch() {
        // On a dense configuration the adaptive sampler never collapses, so it consumes
        // the seeded stream exactly like the legacy sampler.
        let world = World::new(Pairing, 8);
        let mut legacy = UniformScheduler::with_mode(9, SamplingMode::Legacy);
        let mut adaptive = UniformScheduler::with_mode(9, SamplingMode::Adaptive);
        for _ in 0..50 {
            assert_eq!(
                legacy.next_interaction(&world),
                adaptive.next_interaction(&world)
            );
        }
    }

    #[test]
    fn uniform_scheduler_returns_none_for_singleton_population() {
        let world = World::new(Pairing, 1);
        let mut s = UniformScheduler::seeded(1);
        assert_eq!(s.next_interaction(&world), None);
    }

    #[test]
    fn uniform_scheduler_only_returns_permissible_pairs() {
        for mode in [SamplingMode::Adaptive, SamplingMode::Legacy] {
            let mut world = World::new(Pairing, 8);
            let mut s = UniformScheduler::with_mode(7, mode);
            for _ in 0..200 {
                let interaction = s.next_interaction(&world).expect("pairs exist");
                assert!(world
                    .permissibility(interaction.a, interaction.pa, interaction.b, interaction.pb)
                    .is_some());
                world.apply(&interaction);
                assert!(world.check_invariants());
            }
        }
    }

    /// A head absorbs free nodes right-port-to-left-port into one straight chain.
    struct Chain;

    #[derive(Clone, PartialEq, Debug)]
    enum C {
        Head,
        Body,
        Free,
    }

    impl Protocol for Chain {
        type State = C;

        fn initial_state(&self, node: NodeId, _n: usize) -> C {
            if node.index() == 0 {
                C::Head
            } else {
                C::Free
            }
        }

        fn transition(
            &self,
            a: &C,
            pa: Dir,
            b: &C,
            _pb: Dir,
            bonded: bool,
        ) -> Option<Transition<C>> {
            if !bonded && *a == C::Head && pa == Dir::Right && *b == C::Free {
                Some(Transition {
                    a: C::Body,
                    b: C::Head,
                    bond: true,
                })
            } else {
                None
            }
        }
    }

    #[test]
    fn enumerated_mode_kicks_in_on_sparse_configurations() {
        // A complete 16-node chain is a single component whose only permissible pairs
        // are the 15 bonded ones: acceptance ≈ 15 / 2016, so a few hundred draws push
        // the adaptive sampler into enumerated mode, which must keep producing exactly
        // the bonded pairs (the uniform distribution over the permissible set).
        let n = 16;
        let mut world = World::new(Chain, n);
        for k in 1..n as u32 {
            let i = world
                .interaction(NodeId::new(k - 1), Dir::Right, NodeId::new(k), Dir::Left)
                .expect("chain step is permissible");
            assert!(world.apply(&i).effective);
        }
        let mut s = UniformScheduler::seeded(3);
        let mut bonded_seen = std::collections::HashSet::new();
        for _ in 0..2_000 {
            let interaction = s.next_interaction(&world).expect("bonded pairs remain");
            assert!(matches!(
                interaction.permissibility,
                crate::Permissibility::Bonded
            ));
            bonded_seen.insert((
                interaction.a.min(interaction.b),
                interaction.a.max(interaction.b),
            ));
        }
        assert!(s.collapsed || s.cache_valid, "sampler should have switched");
        assert_eq!(
            bonded_seen.len(),
            n - 1,
            "every bonded pair must be reachable"
        );
    }

    #[test]
    fn greedy_scheduler_finds_effective_until_stable() {
        let mut world = World::new(Pairing, 6);
        let mut greedy = GreedyScheduler;
        let mut effective = 0;
        while let Some(i) = greedy.next_interaction(&world) {
            let outcome = world.apply(&i);
            assert!(outcome.effective);
            effective += 1;
            assert!(effective <= 3, "at most n/2 pairings possible");
        }
        assert_eq!(effective, 3);
        assert!(world.is_stable());
    }
}
