//! The protocol trait (Definition 1 of the paper).

use crate::NodeId;
use nc_geometry::{Dim, Dir};
use std::fmt::Debug;

/// The outcome of an effective interaction: the new state of the two participants and the
/// new state of the bond joining the two interacting ports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transition<S> {
    /// New state of the first participant (the one whose `(state, port)` matched the
    /// first argument of [`Protocol::transition`]).
    pub a: S,
    /// New state of the second participant.
    pub b: S,
    /// New state of the bond between the two interacting ports (`true` = active).
    pub bond: bool,
}

/// A 2D or 3D protocol: `(Q, q0, Q_out, δ)` in the paper's notation, possibly with a
/// distinguished initial leader state.
///
/// Interactions are *unordered*: when the scheduler selects the pair
/// `((v₁, p₁), (v₂, p₂))`, the simulator first asks
/// `transition(state(v₁), p₁, state(v₂), p₂, bonded)` and, if that returns `None`, the
/// symmetric `transition(state(v₂), p₂, state(v₁), p₁, bonded)`. Returning `None` from
/// both means the interaction is *ineffective* — nothing changes.
///
/// States may be rich Rust types; the basic constructors of Section 4 use small
/// finite-state enums, whereas the counting and universal constructors of Sections 5–6
/// intentionally give the unique leader an unbounded local state (the paper stores that
/// information distributedly on a line; see the `nc-protocols` crate for both styles).
///
/// Protocols (and their states) are `Send + Sync`: the transition function is a pure
/// table lookup shared by every node, and the sharded world fans index maintenance out
/// across threads while holding the protocol by shared reference. All protocols in this
/// workspace are plain data; protocols owning shared computers hold them through `Arc`.
pub trait Protocol: Send + Sync {
    /// Per-node state type (`Q` plus any leader bookkeeping).
    type State: Clone + PartialEq + Debug + Send + Sync;

    /// The dimensionality of the model this protocol runs in (ports per node).
    fn dim(&self) -> Dim {
        Dim::Two
    }

    /// The initial state of `node` in a population of size `n`.
    ///
    /// Protocols with a pre-elected unique leader conventionally make node 0 the leader;
    /// leaderless protocols ignore `node`. `n` is provided only so that UID-based
    /// protocols can assign identifiers — anonymous protocols must not peek at it.
    fn initial_state(&self, node: NodeId, n: usize) -> Self::State;

    /// The transition function `δ((a, p₁), (b, p₂), bonded)`.
    ///
    /// Return `None` for ineffective interactions. The simulator never calls this for
    /// halted participants (see [`Protocol::is_halted`]).
    fn transition(
        &self,
        a: &Self::State,
        pa: Dir,
        b: &Self::State,
        pb: Dir,
        bonded: bool,
    ) -> Option<Transition<Self::State>>;

    /// Whether `state` is an *output* state (`Q_out`). The output shape of a
    /// configuration consists of the nodes in output states and the active bonds between
    /// them.
    fn is_output(&self, _state: &Self::State) -> bool {
        true
    }

    /// Whether `state` is a *halted* state (`Q_halt`): every rule involving a halted node
    /// is ineffective, which the simulator enforces regardless of what
    /// [`Protocol::transition`] would return.
    fn is_halted(&self, _state: &Self::State) -> bool {
        false
    }

    /// A short human-readable protocol name (used in reports and experiment tables).
    fn name(&self) -> &str {
        "protocol"
    }
}

impl<P: Protocol + ?Sized> Protocol for &P {
    type State = P::State;

    fn dim(&self) -> Dim {
        (**self).dim()
    }

    fn initial_state(&self, node: NodeId, n: usize) -> Self::State {
        (**self).initial_state(node, n)
    }

    fn transition(
        &self,
        a: &Self::State,
        pa: Dir,
        b: &Self::State,
        pb: Dir,
        bonded: bool,
    ) -> Option<Transition<Self::State>> {
        (**self).transition(a, pa, b, pb, bonded)
    }

    fn is_output(&self, state: &Self::State) -> bool {
        (**self).is_output(state)
    }

    fn is_halted(&self, state: &Self::State) -> bool {
        (**self).is_halted(state)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;

    impl Protocol for Nop {
        type State = u8;

        fn initial_state(&self, _node: NodeId, _n: usize) -> u8 {
            0
        }

        fn transition(
            &self,
            _a: &u8,
            _pa: Dir,
            _b: &u8,
            _pb: Dir,
            _c: bool,
        ) -> Option<Transition<u8>> {
            None
        }
    }

    #[test]
    fn defaults() {
        let p = Nop;
        assert_eq!(p.dim(), Dim::Two);
        assert!(p.is_output(&0));
        assert!(!p.is_halted(&0));
        assert_eq!(p.name(), "protocol");
        // Blanket impl for references.
        let r = &p;
        assert_eq!(r.initial_state(NodeId::new(0), 5), 0);
        assert!(r.transition(&0, Dir::Up, &0, Dir::Down, false).is_none());
    }
}
