//! Error type of the core crate.

use crate::NodeId;
use std::error::Error;
use std::fmt;

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A population of at least the stated size is required.
    PopulationTooSmall {
        /// Required minimum population.
        required: usize,
        /// Actual population.
        actual: usize,
    },
    /// A node index outside the population was referenced.
    UnknownNode(NodeId),
    /// A port was used that does not exist in the configured dimension.
    InvalidPort {
        /// The offending node.
        node: NodeId,
        /// The port name.
        port: &'static str,
    },
    /// The run hit its step budget before reaching the requested condition.
    StepBudgetExhausted {
        /// The number of steps executed.
        steps: u64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::PopulationTooSmall { required, actual } => write!(
                f,
                "population of {actual} nodes is too small, at least {required} required"
            ),
            CoreError::UnknownNode(n) => write!(f, "unknown node {n}"),
            CoreError::InvalidPort { node, port } => {
                write!(
                    f,
                    "port {port} does not exist on node {node} in this dimension"
                )
            }
            CoreError::StepBudgetExhausted { steps } => {
                write!(f, "step budget exhausted after {steps} steps")
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = CoreError::PopulationTooSmall {
            required: 4,
            actual: 1,
        };
        assert!(e.to_string().contains("too small"));
        assert!(CoreError::UnknownNode(NodeId::new(3))
            .to_string()
            .contains("n3"));
        assert!(CoreError::StepBudgetExhausted { steps: 10 }
            .to_string()
            .contains("10"));
    }
}
