//! Error type of the core crate.

use crate::NodeId;
use std::error::Error;
use std::fmt;

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A population of at least the stated size is required.
    PopulationTooSmall {
        /// Required minimum population.
        required: usize,
        /// Actual population.
        actual: usize,
    },
    /// A node index outside the population was referenced.
    UnknownNode(NodeId),
    /// A port was used that does not exist in the configured dimension.
    InvalidPort {
        /// The offending node.
        node: NodeId,
        /// The port name.
        port: &'static str,
    },
    /// The run hit its step budget before reaching the requested condition.
    StepBudgetExhausted {
        /// The number of steps executed.
        steps: u64,
    },
    /// Rollback or release of a delta-log epoch that is not open (already rolled
    /// back, already released, or belonging to a different world).
    EpochNotOpen,
    /// A snapshot buffer ended before the decoder finished reading.
    SnapshotTruncated {
        /// Byte offset at which the decoder ran out of input.
        offset: usize,
    },
    /// A snapshot buffer does not start with the snapshot magic bytes.
    SnapshotBadMagic,
    /// A snapshot was written by an unsupported format version.
    SnapshotVersionUnsupported {
        /// The format version found in the header.
        version: u16,
    },
    /// A snapshot's trailing checksum does not match its contents.
    SnapshotChecksumMismatch {
        /// Checksum stored in the snapshot.
        stored: u64,
        /// Checksum computed over the snapshot contents.
        computed: u64,
    },
    /// A snapshot decoded structurally but failed a semantic validity check.
    SnapshotCorrupt {
        /// Which validity check failed.
        what: &'static str,
    },
    /// A snapshot was taken with a different protocol than the one resuming it.
    SnapshotProtocolMismatch {
        /// Protocol name stored in the snapshot.
        snapshot: String,
        /// Name of the protocol attempting to resume.
        protocol: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::PopulationTooSmall { required, actual } => write!(
                f,
                "population of {actual} nodes is too small, at least {required} required"
            ),
            CoreError::UnknownNode(n) => write!(f, "unknown node {n}"),
            CoreError::InvalidPort { node, port } => {
                write!(
                    f,
                    "port {port} does not exist on node {node} in this dimension"
                )
            }
            CoreError::StepBudgetExhausted { steps } => {
                write!(f, "step budget exhausted after {steps} steps")
            }
            CoreError::EpochNotOpen => {
                write!(f, "rollback/release of an epoch that is not open")
            }
            CoreError::SnapshotTruncated { offset } => {
                write!(f, "snapshot truncated: input ended at byte {offset}")
            }
            CoreError::SnapshotBadMagic => write!(f, "not a snapshot: bad magic bytes"),
            CoreError::SnapshotVersionUnsupported { version } => {
                write!(f, "unsupported snapshot format version {version}")
            }
            CoreError::SnapshotChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            CoreError::SnapshotCorrupt { what } => {
                write!(f, "corrupt snapshot: {what}")
            }
            CoreError::SnapshotProtocolMismatch { snapshot, protocol } => write!(
                f,
                "snapshot was taken with protocol {snapshot:?}, cannot resume with {protocol:?}"
            ),
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = CoreError::PopulationTooSmall {
            required: 4,
            actual: 1,
        };
        assert!(e.to_string().contains("too small"));
        assert!(CoreError::UnknownNode(NodeId::new(3))
            .to_string()
            .contains("n3"));
        assert!(CoreError::StepBudgetExhausted { steps: 10 }
            .to_string()
            .contains("10"));
    }

    #[test]
    fn display_covers_every_variant() {
        // One instance per variant; each message must be non-empty and name its
        // distinguishing payload so error reports are actionable.
        let cases: Vec<(CoreError, &str)> = vec![
            (
                CoreError::PopulationTooSmall {
                    required: 4,
                    actual: 1,
                },
                "at least 4",
            ),
            (CoreError::UnknownNode(NodeId::new(7)), "n7"),
            (
                CoreError::InvalidPort {
                    node: NodeId::new(2),
                    port: "Up",
                },
                "Up",
            ),
            (CoreError::StepBudgetExhausted { steps: 99 }, "99"),
            (CoreError::EpochNotOpen, "not open"),
            (CoreError::SnapshotTruncated { offset: 12 }, "byte 12"),
            (CoreError::SnapshotBadMagic, "magic"),
            (
                CoreError::SnapshotVersionUnsupported { version: 9 },
                "version 9",
            ),
            (
                CoreError::SnapshotChecksumMismatch {
                    stored: 1,
                    computed: 2,
                },
                "checksum",
            ),
            (
                CoreError::SnapshotCorrupt {
                    what: "node id out of range",
                },
                "node id out of range",
            ),
            (
                CoreError::SnapshotProtocolMismatch {
                    snapshot: "square".into(),
                    protocol: "global-line".into(),
                },
                "global-line",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(
                msg.contains(needle),
                "{err:?} rendered as {msg:?}, expected it to contain {needle:?}"
            );
        }
    }
}
