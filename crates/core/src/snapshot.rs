//! Versioned, checksummed snapshots of a running [`crate::Simulation`]: the *ship*
//! half of the robustness story (the delta log of [`crate::delta`] is the *rewind*
//! half).
//!
//! # Format
//!
//! A snapshot is a single flat byte buffer, hand-rolled (the build environment is
//! offline, so no serde):
//!
//! ```text
//! magic   b"NCSS"                              4 bytes
//! version u16                                  format version (currently 1)
//! name    u16 length + UTF-8 bytes             protocol name (replay dispatch)
//! config  n, seed, max_steps, sampling, shards, speculation
//! stats   the 7 ExecutionStats counters
//! sched   RNG state, substream ordinal, adaptive/batched flags, pending skips
//! world   states, placements, comp_of, links, component slots, pinned class table
//! crc     u64                                  FNV-1a over everything above
//! ```
//!
//! All integers are little-endian fixed width. Every enum is written as a validated
//! tag; decoding arbitrary bytes can fail with a typed [`CoreError`] but never panic
//! (bit-flip and truncation fuzzing in `tests/crash_resume.rs` pins this).
//!
//! # Exactness: what is persisted and what is recomputed
//!
//! The contract is that an interrupted-and-resumed run is **byte-identical** to an
//! uninterrupted one, in every sampling mode and at every shard count. Snapshots are
//! taken *between* steps — at the serialization points of the execution — where the
//! sampler-visible state is exactly:
//!
//! * the configuration itself (states, bonds, embeddings), including the
//!   **component-slot layout** and per-component **membership order** (cross-pair
//!   enumeration iterates slots and members in storage order, and freed slots are
//!   reused first-fit, so the layout is execution-history dependent);
//! * the **class-table layout** of the permissible-pair index when it is active
//!   (class ids are allocation-history dependent through free-slot reuse, and the
//!   canonical sampling walks iterate live class ids in ascending order) — the
//!   snapshot pins the slot assignment and the free-slot stack, and the restore
//!   re-registers every node against that pinned table, rebuilding refcounts,
//!   buckets and running aggregates exactly;
//! * the scheduler's RNG state, its substream ordinal (`sharded_draws`), the sticky
//!   adaptive/batched flags (`collapsed`, `batch_overflow`), and whether its
//!   enumeration cache was warm for the frozen configuration (the cache *contents*
//!   are deterministically re-enumerated on resume);
//! * the [`ExecutionStats`] counters (logical step accounting) and the
//!   cross-shard-event counter (deterministic given the trajectory).
//!
//! Everything else is genuinely derived state and is rebuilt conservatively:
//! `halted` flags (a pure function of states), the dirty frontier (fresh all-dirty —
//! the uniform samplers never read `find_effective_interaction`, and `is_stable` is
//! a state-determined boolean), per-version count caches (recomputed without
//! consuming randomness), and the speculation window (speculative applies are always
//! rolled back before the serialization point, so dropping the window only discards
//! prediction work, never trajectory state). Work counters ([`crate::IndexStats`],
//! [`crate::SpeculationStats`]) are *not* persisted, mirroring the delta-log policy:
//! they report lifetime work, not logical state. That exclusion is what lets the
//! crash harness use whole-snapshot byte equality as its trajectory oracle.

use crate::error::CoreError;
use crate::Protocol;

/// Magic bytes every snapshot starts with ("network-constructor simulation state").
pub(crate) const MAGIC: [u8; 4] = *b"NCSS";

/// Current snapshot format version. Bump on any layout change; decoders reject
/// versions they do not understand instead of misreading them.
pub(crate) const FORMAT_VERSION: u16 = 1;

/// FNV-1a 64-bit checksum over a byte slice (the same deterministic hash family the
/// component occupancy maps use; collision resistance against *random* corruption is
/// all a checksum needs — this is an integrity check, not an authentication tag).
pub(crate) fn checksum(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A protocol whose states can be serialized into a snapshot.
///
/// Implementations must round-trip exactly: `decode_state(encode_state(s)) == s` for
/// every state the protocol can reach, and `decode_state` must reject malformed
/// bytes with a [`CoreError`] (typically [`CoreError::SnapshotCorrupt`]) rather than
/// panicking — corrupt snapshots are expected inputs, not bugs.
pub trait SnapshotProtocol: Protocol {
    /// Appends the serialized form of `state` to `out`.
    fn encode_state(&self, state: &Self::State, out: &mut SnapshotWriter);

    /// Decodes one state from the reader's current position.
    ///
    /// # Errors
    /// A typed [`CoreError`] when the bytes are truncated or malformed.
    fn decode_state(&self, r: &mut SnapshotReader<'_>) -> crate::Result<Self::State>;
}

/// Little-endian byte-buffer writer used by snapshot encoders.
#[derive(Default)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> SnapshotWriter {
        SnapshotWriter::default()
    }

    /// Appends a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i32`.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a boolean as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends raw bytes (caller is responsible for length framing).
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Appends a length-prefixed string (`u16` length + UTF-8 bytes).
    ///
    /// # Errors
    /// [`CoreError::SnapshotCorrupt`] when the string exceeds `u16::MAX` bytes —
    /// the field cannot represent it, and a worker checkpointing a job mid-run must
    /// get a typed failure it can surface, never a panic that takes the process
    /// down (protocol names are attacker-influenced in the service tier).
    pub fn str16(&mut self, s: &str) -> crate::Result<()> {
        let len = u16::try_from(s.len()).map_err(|_| CoreError::SnapshotCorrupt {
            what: "string too long for a u16 length prefix",
        })?;
        self.u16(len);
        self.bytes(s.as_bytes());
        Ok(())
    }

    /// Number of bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the buffer.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// Bounds-checked little-endian reader over a snapshot buffer. Every read fails with
/// [`CoreError::SnapshotTruncated`] instead of panicking when the buffer runs out.
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// Creates a reader over `buf`, starting at offset 0.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> SnapshotReader<'a> {
        SnapshotReader { buf, pos: 0 }
    }

    /// Current read offset.
    #[must_use]
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `len` raw bytes.
    ///
    /// # Errors
    /// [`CoreError::SnapshotTruncated`] when fewer than `len` bytes remain.
    pub fn take(&mut self, len: usize) -> crate::Result<&'a [u8]> {
        if self.remaining() < len {
            return Err(CoreError::SnapshotTruncated { offset: self.pos });
        }
        let out = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    /// [`CoreError::SnapshotTruncated`] at end of input.
    pub fn u8(&mut self) -> crate::Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    ///
    /// # Errors
    /// [`CoreError::SnapshotTruncated`] at end of input.
    pub fn u16(&mut self) -> crate::Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Reads a `u32`.
    ///
    /// # Errors
    /// [`CoreError::SnapshotTruncated`] at end of input.
    pub fn u32(&mut self) -> crate::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    /// [`CoreError::SnapshotTruncated`] at end of input.
    pub fn u64(&mut self) -> crate::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads an `i32`.
    ///
    /// # Errors
    /// [`CoreError::SnapshotTruncated`] at end of input.
    pub fn i32(&mut self) -> crate::Result<i32> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a strict boolean (must be 0 or 1 — anything else is corruption).
    ///
    /// # Errors
    /// [`CoreError::SnapshotTruncated`] or [`CoreError::SnapshotCorrupt`].
    pub fn bool(&mut self) -> crate::Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CoreError::SnapshotCorrupt {
                what: "boolean byte is neither 0 nor 1",
            }),
        }
    }

    /// Reads a `u64` that will be used as an element count for elements of at least
    /// `min_element_bytes` each, rejecting counts the remaining input cannot possibly
    /// hold — this bounds allocations on crafted inputs.
    ///
    /// # Errors
    /// [`CoreError::SnapshotTruncated`] when the implied payload exceeds the input.
    pub fn count(&mut self, min_element_bytes: usize) -> crate::Result<usize> {
        let raw = self.u64()?;
        let count =
            usize::try_from(raw).map_err(|_| CoreError::SnapshotTruncated { offset: self.pos })?;
        if count.saturating_mul(min_element_bytes.max(1)) > self.remaining() {
            return Err(CoreError::SnapshotTruncated { offset: self.pos });
        }
        Ok(count)
    }

    /// Reads a length-prefixed string written by [`SnapshotWriter::str16`].
    ///
    /// # Errors
    /// [`CoreError::SnapshotTruncated`] or [`CoreError::SnapshotCorrupt`] (invalid
    /// UTF-8).
    pub fn str16(&mut self) -> crate::Result<&'a str> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| CoreError::SnapshotCorrupt {
            what: "string is not valid UTF-8",
        })
    }
}

/// A validated snapshot buffer: magic, format version and trailing checksum have
/// been verified (structural decoding happens at [`crate::Simulation::resume`]).
///
/// The buffer is plain bytes — write it to a file, ship it over a socket, compare it
/// for equality. Byte equality of two snapshots of the same format version implies
/// equality of every piece of persisted runtime state, which is exactly the
/// trajectory oracle the crash-injection suite uses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    bytes: Vec<u8>,
}

impl Snapshot {
    /// Wraps and validates a snapshot buffer: checks the magic bytes, the format
    /// version, the protocol-name framing and the trailing checksum. Structural
    /// validity of the body is checked by [`crate::Simulation::resume`].
    ///
    /// # Errors
    /// [`CoreError::SnapshotTruncated`], [`CoreError::SnapshotBadMagic`],
    /// [`CoreError::SnapshotVersionUnsupported`] or
    /// [`CoreError::SnapshotChecksumMismatch`].
    pub fn from_bytes(bytes: Vec<u8>) -> crate::Result<Snapshot> {
        // Header (magic + version) + trailing checksum is the minimum credible size.
        if bytes.len() < MAGIC.len() + 2 + 8 {
            return Err(CoreError::SnapshotTruncated {
                offset: bytes.len(),
            });
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(crc_bytes.try_into().expect("len 8"));
        let computed = checksum(body);
        if stored != computed {
            return Err(CoreError::SnapshotChecksumMismatch { stored, computed });
        }
        let mut r = SnapshotReader::new(body);
        if r.take(MAGIC.len())? != MAGIC {
            return Err(CoreError::SnapshotBadMagic);
        }
        let version = r.u16()?;
        if version != FORMAT_VERSION {
            return Err(CoreError::SnapshotVersionUnsupported { version });
        }
        // Validate the name framing now so `protocol_name` cannot fail later.
        r.str16()?;
        Ok(Snapshot { bytes })
    }

    /// Builds a snapshot from an already-encoded body (no checksum yet): appends the
    /// checksum. Callers are the encoders in this crate, which produce valid bodies.
    pub(crate) fn seal(mut writer: SnapshotWriter) -> Snapshot {
        let crc = checksum(writer.as_slice());
        writer.u64(crc);
        Snapshot {
            bytes: writer.into_bytes(),
        }
    }

    /// The raw snapshot bytes (checksum included).
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the snapshot, returning the raw bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Total size in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// A snapshot buffer is never empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The name of the protocol this snapshot was taken with (for dispatch in replay
    /// tools). Validated at construction, so this cannot fail.
    #[must_use]
    pub fn protocol_name(&self) -> &str {
        let mut r = SnapshotReader::new(&self.bytes);
        r.take(MAGIC.len() + 2).expect("validated at construction");
        r.str16().expect("validated at construction")
    }

    /// A reader positioned just past the magic and format version (at the protocol
    /// name field).
    pub(crate) fn body_reader(&self) -> SnapshotReader<'_> {
        let mut r = SnapshotReader::new(&self.bytes[..self.bytes.len() - 8]);
        r.take(MAGIC.len() + 2).expect("validated at construction");
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_round_trip() {
        let mut w = SnapshotWriter::new();
        w.u8(7);
        w.u16(300);
        w.u32(70_000);
        w.u64(u64::MAX - 1);
        w.i32(-42);
        w.bool(true);
        w.str16("counting-on-a-line").unwrap();
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i32().unwrap(), -42);
        assert!(r.bool().unwrap());
        assert_eq!(r.str16().unwrap(), "counting-on-a-line");
        assert_eq!(r.remaining(), 0);
        assert!(matches!(r.u8(), Err(CoreError::SnapshotTruncated { .. })));
    }

    #[test]
    fn reader_rejects_bad_booleans_and_oversized_counts() {
        let bytes = [2u8];
        let mut r = SnapshotReader::new(&bytes);
        assert!(matches!(r.bool(), Err(CoreError::SnapshotCorrupt { .. })));

        let mut w = SnapshotWriter::new();
        w.u64(1_000_000); // claims a million elements with almost no payload
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert!(matches!(
            r.count(4),
            Err(CoreError::SnapshotTruncated { .. })
        ));
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(matches!(
            Snapshot::from_bytes(vec![]),
            Err(CoreError::SnapshotTruncated { .. })
        ));
        assert!(matches!(
            Snapshot::from_bytes(vec![0; 64]),
            Err(CoreError::SnapshotChecksumMismatch { .. })
        ));
        // Valid checksum, wrong magic.
        let mut w = SnapshotWriter::new();
        w.bytes(b"XXXX");
        w.u16(FORMAT_VERSION);
        w.str16("p").unwrap();
        let snap = Snapshot::seal(w);
        assert_eq!(
            Snapshot::from_bytes(snap.into_bytes()),
            Err(CoreError::SnapshotBadMagic)
        );
        // Valid magic, future version.
        let mut w = SnapshotWriter::new();
        w.bytes(&MAGIC);
        w.u16(FORMAT_VERSION + 9);
        w.str16("p").unwrap();
        let snap = Snapshot::seal(w);
        assert_eq!(
            Snapshot::from_bytes(snap.into_bytes()),
            Err(CoreError::SnapshotVersionUnsupported {
                version: FORMAT_VERSION + 9
            })
        );
    }

    #[test]
    fn sealed_snapshots_validate_and_expose_the_protocol_name() {
        let mut w = SnapshotWriter::new();
        w.bytes(&MAGIC);
        w.u16(FORMAT_VERSION);
        w.str16("global-line").unwrap();
        w.u64(123);
        let snap = Snapshot::seal(w);
        let reparsed = Snapshot::from_bytes(snap.as_bytes().to_vec()).unwrap();
        assert_eq!(reparsed.protocol_name(), "global-line");
        let mut body = reparsed.body_reader();
        assert_eq!(body.str16().unwrap(), "global-line");
        assert_eq!(body.u64().unwrap(), 123);
        assert_eq!(body.remaining(), 0);
    }

    #[test]
    fn str16_rejects_oversized_strings_with_a_typed_error() {
        let mut w = SnapshotWriter::new();
        let huge = "x".repeat(usize::from(u16::MAX) + 1);
        assert_eq!(
            w.str16(&huge),
            Err(CoreError::SnapshotCorrupt {
                what: "string too long for a u16 length prefix"
            })
        );
        // The failed write must leave no partial framing behind: the writer stays
        // usable, so a worker can surface the error and carry on with other jobs.
        assert!(w.is_empty());
        w.str16("ok").unwrap();
        let bytes = w.into_bytes();
        assert_eq!(SnapshotReader::new(&bytes).str16().unwrap(), "ok");
    }

    #[test]
    fn checksum_is_order_sensitive() {
        assert_ne!(checksum(b"ab"), checksum(b"ba"));
        assert_ne!(checksum(b""), checksum(b"\0"));
    }
}
