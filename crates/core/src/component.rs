//! Rigid connected components and their grid embeddings.

use crate::NodeId;
use nc_geometry::{Coord, Rotation};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a, used as a *deterministic* hasher for component occupancy maps.
///
/// The interaction index and the enumerated permissible set iterate these maps, so their
/// iteration order feeds into which candidate interaction a scan reports first and into
/// the order of the sampler's enumerated set. `RandomState` would make seeded executions
/// differ between runs; a fixed hash function keeps them reproducible.
#[derive(Default)]
pub struct DeterministicHasher(u64);

impl Hasher for DeterministicHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = if self.0 == 0 { FNV_OFFSET } else { self.0 };
        for &byte in bytes {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        self.0 = hash;
    }
}

/// Deterministic `BuildHasher` for occupancy maps.
pub type DeterministicState = BuildHasherDefault<DeterministicHasher>;

/// The pose of a node inside its component's frame: a grid position and the rotation
/// mapping the node's local port directions to component-frame directions.
///
/// A free node (singleton component) sits at the origin of its own frame with the
/// identity rotation; because the solution is well mixed, its *global* orientation is
/// irrelevant and is only fixed (relative to the other participant) at interaction time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Placement {
    /// Grid position in the component frame.
    pub pos: Coord,
    /// Rotation from the node's local frame to the component frame.
    pub rot: Rotation,
}

impl Placement {
    /// The placement of a freshly created free node.
    #[must_use]
    pub fn origin() -> Placement {
        Placement {
            pos: Coord::ORIGIN,
            rot: Rotation::IDENTITY,
        }
    }
}

impl Default for Placement {
    fn default() -> Self {
        Placement::origin()
    }
}

/// A connected component: the set of member nodes and the occupancy map of its frame.
///
/// The component does not store bonds — those live in the [`crate::World`]'s per-node
/// port tables — only which grid cell of the component frame each member occupies, which
/// is what the geometric permissibility checks need.
#[derive(Clone, Debug, Default)]
pub struct Component {
    members: Vec<NodeId>,
    occupied: HashMap<Coord, NodeId, DeterministicState>,
}

impl Component {
    /// Creates a singleton component containing `node` at the origin of its frame.
    #[must_use]
    pub fn singleton(node: NodeId) -> Component {
        let mut occupied = HashMap::default();
        occupied.insert(Coord::ORIGIN, node);
        Component {
            members: vec![node],
            occupied,
        }
    }

    /// Creates an empty component (used when splitting).
    #[must_use]
    pub fn empty() -> Component {
        Component::default()
    }

    /// The member nodes (unsorted).
    #[must_use]
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Number of member nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the component has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The node occupying `pos` in the component frame, if any.
    #[must_use]
    pub fn node_at(&self, pos: Coord) -> Option<NodeId> {
        self.occupied.get(&pos).copied()
    }

    /// Whether `pos` is occupied in the component frame.
    #[must_use]
    pub fn is_occupied(&self, pos: Coord) -> bool {
        self.occupied.contains_key(&pos)
    }

    /// Adds a member at `pos`.
    ///
    /// # Panics
    /// Panics if `pos` is already occupied (that would mean two nodes falling onto the
    /// same grid cell, which the model forbids).
    pub fn insert(&mut self, node: NodeId, pos: Coord) {
        let prev = self.occupied.insert(pos, node);
        assert!(prev.is_none(), "cell {pos} already occupied");
        self.members.push(node);
    }

    /// Removes a member (by value) located at `pos`.
    ///
    /// # Panics
    /// Panics if the node is not a member at that position.
    pub fn remove(&mut self, node: NodeId, pos: Coord) {
        let at = self.occupied.remove(&pos);
        assert_eq!(at, Some(node), "node {node} was not at {pos}");
        let idx = self
            .members
            .iter()
            .position(|&m| m == node)
            .expect("node must be a member");
        self.members.swap_remove(idx);
    }

    /// Iterates over `(node, position)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Coord)> + '_ {
        self.occupied.iter().map(|(&pos, &node)| (node, pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton() {
        let c = Component::singleton(NodeId::new(4));
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
        assert_eq!(c.node_at(Coord::ORIGIN), Some(NodeId::new(4)));
        assert!(c.is_occupied(Coord::ORIGIN));
        assert!(!c.is_occupied(Coord::new2(1, 0)));
    }

    #[test]
    fn insert_and_remove() {
        let mut c = Component::singleton(NodeId::new(0));
        c.insert(NodeId::new(1), Coord::new2(1, 0));
        assert_eq!(c.len(), 2);
        assert_eq!(c.iter().count(), 2);
        c.remove(NodeId::new(0), Coord::ORIGIN);
        assert_eq!(c.len(), 1);
        assert_eq!(c.node_at(Coord::ORIGIN), None);
        assert_eq!(c.node_at(Coord::new2(1, 0)), Some(NodeId::new(1)));
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn double_occupancy_panics() {
        let mut c = Component::singleton(NodeId::new(0));
        c.insert(NodeId::new(1), Coord::ORIGIN);
    }

    #[test]
    fn default_placement_is_origin() {
        assert_eq!(Placement::default(), Placement::origin());
        assert_eq!(Placement::origin().pos, Coord::ORIGIN);
        assert_eq!(Placement::origin().rot, Rotation::IDENTITY);
    }
}
