//! The incremental indexes of the runtime: the *interaction index* (dirty frontier)
//! that makes stability detection and effective-pair lookup amortised `O(active)`
//! instead of `O(n² · ports²)`, and — further down in this module — the sharded
//! *permissible-pair index* that maintains exact permissible/effective pair counts for
//! the batched and sharded geometric-jump samplers.
//!
//! # Design (interaction index)
//!
//! A pair of node-ports can only *become* effective when something about one of its
//! endpoints changes: a state, the bond between the two ports, or the geometry of an
//! endpoint's component. [`crate::World::apply`] translates every delta it produces into
//! *dirty* marks on exactly the nodes whose pairs may have become effective:
//!
//! * a state change or a bond flip marks the two participants;
//! * a merge marks every *moved* node (the members of the absorbed component — the
//!   surviving component's cells only gain neighbours, which can remove permissible
//!   pairs but never create effective ones);
//! * a split marks every member of the pre-split component (both halves shrink, which
//!   can unlock merge placements for all of them).
//!
//! A stability query drains the dirty queues: each dirty node is scanned against the
//! whole population; a node is cleaned only when its scan finds nothing. Because every
//! effective pair must keep at least one dirty endpoint (or be the cached candidate from
//! a previous scan), empty queues with no valid candidate prove stability. Each dirty
//! mark is therefore paid for **once**, regardless of how often stability is queried —
//! which is what lets [`crate::Simulation::run_until_stable`] check for stability after
//! every step and stop exactly at stabilisation.
//!
//! Since the sharding refactor each shard owns its slice of the dirty frontier (one
//! queue per contiguous node-id range, drained in shard order, which at one shard is
//! byte-identical to the previous single queue), and the interior mutability that lets
//! read-only queries (`is_stable` takes `&self`) update the memoisation is a [`Mutex`]
//! plus an atomic version counter instead of the former `RefCell`/`Cell` pair — so
//! [`crate::World`] is `Sync` and concurrent read-side queries are safe.

use crate::component::{Component, DeterministicState};
use crate::shard::{ShardMap, PARALLEL_FLUSH_MIN};
use crate::{Interaction, NodeId, Placement, Protocol};
use nc_geometry::{Dim, Dir};
use nc_obs::{Telemetry, TraceEventKind};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Counters describing how much work the index has done (and saved).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Nodes marked dirty since creation (includes re-marks of already-dirty nodes).
    pub dirty_marks: u64,
    /// Full per-node scans performed while draining the dirty queues.
    pub node_scans: u64,
    /// Queries answered by revalidating the cached candidate interaction.
    pub candidate_hits: u64,
    /// Queries answered immediately by the quiescent flag (configuration known stable).
    pub quiescent_hits: u64,
}

/// The mutable part of the index (see the module docs for the invariant).
pub(crate) struct IndexState {
    /// Per-node dirty flag; `true` iff the node is in its shard's queue.
    pub(crate) dirty: Vec<bool>,
    /// Per-shard queues of nodes whose pairs must be rescanned before stability can be
    /// concluded. Drained in shard order; with one shard this is the historical single
    /// queue.
    pub(crate) queues: Vec<Vec<NodeId>>,
    /// The most recently found effective interaction; revalidated in `O(1)` before any
    /// scan work happens.
    pub(crate) candidate: Option<Interaction>,
    /// `true` once a drain proved that no effective pair exists; reset by any dirty mark.
    pub(crate) quiescent: bool,
    /// Work counters.
    pub(crate) stats: IndexStats,
}

/// Interior-mutable wrapper so `&World` queries can memoise their progress. `Sync`:
/// the drain state sits behind a [`Mutex`], the version counter is atomic.
pub(crate) struct InteractionIndex {
    inner: Mutex<IndexState>,
    /// Monotonically increasing configuration version: bumped on every observable world
    /// change so that samplers can cache derived structures (e.g. the enumerated
    /// permissible set) and invalidate them precisely. The version starts at a
    /// process-unique value (see `new`), so versions from two different worlds never
    /// collide — a scheduler driven against several worlds cannot replay a cached
    /// structure into the wrong one.
    version: AtomicU64,
}

impl InteractionIndex {
    /// Creates the index for the given shard layout with every node dirty (nothing
    /// proven yet).
    pub(crate) fn new(map: ShardMap) -> InteractionIndex {
        // Disjoint per-world version ranges: each world claims a 2⁴⁰-wide window, far
        // beyond any realistic number of configuration changes.
        static NEXT_WORLD: AtomicU64 = AtomicU64::new(0);
        let base = NEXT_WORLD.fetch_add(1, Ordering::Relaxed) << 40;
        let n: usize = (0..map.count()).map(|s| map.range(s).len()).sum();
        let queues = (0..map.count())
            .map(|s| map.range(s).map(|i| NodeId::new(i as u32)).collect())
            .collect();
        InteractionIndex {
            inner: Mutex::new(IndexState {
                dirty: vec![true; n],
                queues,
                candidate: None,
                quiescent: false,
                stats: IndexStats::default(),
            }),
            version: AtomicU64::new(base),
        }
    }

    /// The current configuration version.
    pub(crate) fn version(&self) -> u64 {
        self.version.load(Ordering::Relaxed)
    }

    /// Records an observable world change (invalidates samplers' caches).
    pub(crate) fn bump_version(&self) {
        self.version.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks a node dirty in its shard's queue: some pair involving it may have become
    /// effective.
    pub(crate) fn mark_dirty(&self, map: ShardMap, node: NodeId) {
        let mut state = self.lock();
        state.stats.dirty_marks += 1;
        state.quiescent = false;
        if !state.dirty[node.index()] {
            state.dirty[node.index()] = true;
            state.queues[map.shard_of(node)].push(node);
        }
    }

    /// Exclusive access to the drain state for the scan loop in `World`.
    pub(crate) fn lock(&self) -> MutexGuard<'_, IndexState> {
        crate::lock::relock(&self.inner)
    }

    /// A snapshot of the work counters.
    pub(crate) fn stats(&self) -> IndexStats {
        self.lock().stats
    }
}

// =======================================================================================
// The sharded incremental permissible-pair index
// =======================================================================================
//
// While the dirty-frontier index above answers "does *some* effective pair exist?",
// the batched and sharded samplers need the exact *counts* of permissible and effective
// pairs of a frozen configuration — and the ability to draw uniformly from either set —
// without re-enumerating `O(n²·ports²)` candidates per configuration version. The
// [`PairIndex`] below maintains those counts in `O(changed)` per world delta, fed from
// the same delta stream that feeds the dirty frontier (state writes, bond flips,
// merges, splits).
//
// # Decomposition
//
// The permissible set splits into classes whose sizes are maintainable exactly:
//
// 1. **Intra-component pairs** (bonded, or facing-adjacent in the same component):
//    purely local — whether `(x, pa)` participates depends only on `x`'s links and the
//    occupancy of the single cell its port faces. Stored as canonical pair keys, sorted,
//    in the sub-index of the shard owning the pair's smaller endpoint.
// 2. **Multi-component node × free singleton**: a port of a node in a ≥2-node component
//    whose facing cell is unoccupied accepts *any* free singleton through *any* of its
//    ports (singletons are arbitrarily rotatable and have no other cells to collide),
//    so these pairs are counted as `free_ports · ports · singletons` without being
//    materialised. Effectiveness only depends on the two states and the two ports, so
//    grouping singletons (and free ports) by *state class* turns the effective count
//    into a small sum over class pairs.
// 3. **Singleton × singleton**: always permissible (any ports, a rotation always
//    exists, nothing can collide), counted as `ports² · C(s, 2)`; effectiveness again
//    per class pair.
// 4. **Multi × multi cross-component pairs**: the only class whose permissibility
//    depends on non-local geometry (collision between two rigid shapes). These are
//    *not* maintained incrementally — [`crate::World::enumerate_cross_multi`]
//    enumerates them per frozen version under a budget, and the caller falls back to
//    rejection sampling when the budget is exceeded. In the growth workloads this
//    index optimises (one growing component absorbing free nodes) this class is empty.
//
// Exactness of the merge case is worth spelling out: when a component grows, pairs
// anchored at its *unmoved* members can silently lose permissibility (the new cells
// block previously valid placements), which is why class 4 cannot ride the dirty
// stream. Classes 1–3 are immune: intra adjacency is rigid under merges, and the
// singleton classes only depend on the facing cell of one port — the world marks the
// neighbours of every newly inserted cell as touched, which is exactly the set whose
// free-port flags can flip.
//
// # Sharded layout and the shared class-count aggregate
//
// Registrations are split by node across **shards** (contiguous id ranges,
// [`ShardMap`]): each shard owns the sorted singleton/free-port buckets of its nodes
// (per state class) and the sorted canonical keys of the intra pairs whose smaller
// endpoint it owns. On top of the per-shard sub-indices one **shared aggregate** keeps,
// per state class, the population-wide bucket sizes (`g[class][port]`, `s[class]`) and
// a running total of the effective pair count, updated with an exact `O(classes·ports)`
// delta on every single registration change — the "sum of per-shard rates" the sharded
// sampler composes its geometric jumps from. Class-pair effectiveness lives in dense
// tables filled when a class is allocated, so both the delta maintenance and the
// uniform sampling walk touch plain arrays, never a hash map.
//
// # Shard-count invariance (the parallel-equivalence property)
//
// Every ordering the samplers can observe is canonical in the *configuration*, not in
// the shard layout:
//
// * per-shard bucket and key lists are sorted, and shards are contiguous id ranges, so
//   concatenating them in shard order yields the global sorted order for any shard
//   count;
// * state-class ids are allocated in the order classes are first seen, and nodes are
//   re-derived in ascending id order (`World::flush_pairs` sorts its batch), so the
//   class table is identical for any shard count;
// * the uniform draws map an index `idx ∈ 0..E` through a deterministic cell walk
//   (intra keys, then class-2 cells, then class-3 cells, in class/port order) with
//   arithmetic decomposition inside each cell — no storage-order-dependent choice
//   remains.
//
// Hence an execution driven by a seeded scheduler is byte-identical across 1, 2 or 4
// shards — the property `tests/sharded.rs` pins.
//
// The pre-existing full enumeration ([`crate::World::enumerate_permissible`]) is kept
// as the validation oracle; [`crate::World::validate_pair_index`] compares the
// recounted totals, the incrementally maintained aggregate and the exact effective
// sets after arbitrary delta sequences.

/// Hard cap on simultaneously *live* state classes. Protocols whose live state
/// diversity exceeds this (e.g. universal TM constructors) overflow the index, which
/// permanently falls back to the adaptive sampler — a soundness valve, not an error.
pub const CLASS_CAP: usize = 64;

/// Ports per node in the widest (3D) model; dense per-class tables are sized by it.
const PORT_CAP: usize = 6;

/// Sentinel for "not a member" positions.
const NONE: u32 = u32::MAX;

/// Packs an unordered node-port pair into a canonical `u64` key. The smaller
/// `(node, port)` endpoint occupies the high bits, so sorting keys sorts by owner node
/// — which is what makes per-shard sorted key lists concatenate into the global sorted
/// order (shards are contiguous id ranges).
pub(crate) fn pair_key(a: NodeId, pa: Dir, b: NodeId, pb: Dir) -> u64 {
    // Node ids get 24 bits each; beyond that the keys would alias silently.
    debug_assert!(
        a.index() < (1 << 24) && b.index() < (1 << 24),
        "pair keys support at most 2^24 nodes"
    );
    let (lo, hi) = if (a.index(), pa.index()) <= (b.index(), pb.index()) {
        ((a, pa), (b, pb))
    } else {
        ((b, pb), (a, pa))
    };
    ((lo.0.index() as u64) << 40)
        | ((lo.1.index() as u64) << 32)
        | ((hi.0.index() as u64) << 8)
        | hi.1.index() as u64
}

fn unpack_key(key: u64) -> (NodeId, Dir, NodeId, Dir) {
    (
        NodeId::new(((key >> 40) & 0xFF_FFFF) as u32),
        Dir::from_index(((key >> 32) & 0xFF) as usize),
        NodeId::new(((key >> 8) & 0xFF_FFFF) as u32),
        Dir::from_index((key & 0xFF) as usize),
    )
}

/// The smaller endpoint of a canonical pair key (decides the owning shard).
fn key_owner(key: u64) -> NodeId {
    NodeId::new(((key >> 40) & 0xFF_FFFF) as u32)
}

/// A read-only view of the world geometry the pair index derives its entries from.
/// Bundled so the index can live beside the `World` fields it reads without borrow
/// conflicts; `Sync` (all fields are shared slices), so the flush can fan the
/// geometry derivation out across shards.
pub(crate) struct GeomView<'a, S> {
    pub(crate) dim: Dim,
    pub(crate) states: &'a [S],
    pub(crate) halted: &'a [bool],
    pub(crate) comp_of: &'a [usize],
    pub(crate) components: &'a [Option<Component>],
    pub(crate) placements: &'a [Placement],
    pub(crate) links: &'a [[Option<(NodeId, Dir)>; 6]],
}

impl<S> GeomView<'_, S> {
    fn comp(&self, x: NodeId) -> &Component {
        self.components[self.comp_of[x.index()]]
            .as_ref()
            .expect("component slot of a live node must be occupied")
    }

    fn is_singleton(&self, x: NodeId) -> bool {
        self.comp(x).len() == 1
    }

    /// Whether the cell faced by `x`'s port `pa` is unoccupied in `x`'s component.
    fn port_free(&self, x: NodeId, pa: Dir) -> bool {
        let pl = self.placements[x.index()];
        let target = pl.pos + pl.rot.apply_dir(pa).unit();
        !self.comp(x).is_occupied(target)
    }

    /// The intra-component pair `x`'s port `pa` currently participates in, if any:
    /// the bonded peer, or the same-component node whose facing cell it touches.
    fn intra_entry_at(&self, x: NodeId, pa: Dir) -> Option<IntraEntry> {
        if let Some((peer, pport)) = self.links[x.index()][pa.index()] {
            return Some(IntraEntry {
                peer,
                pport,
                bonded: true,
            });
        }
        let pl = self.placements[x.index()];
        let facing = pl.rot.apply_dir(pa);
        let target = pl.pos + facing.unit();
        let peer = self.comp(x).node_at(target)?;
        let pport = self.placements[peer.index()]
            .rot
            .inverse()
            .apply_dir(facing.opposite());
        Some(IntraEntry {
            peer,
            pport,
            bonded: false,
        })
    }
}

/// One intra-component pair as seen from one of its endpoints.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct IntraEntry {
    peer: NodeId,
    pport: Dir,
    bonded: bool,
}

/// The geometry-derived facts a re-derivation of one node needs: computed read-only
/// (and therefore in parallel across shards when a flush batch is large), applied to
/// the index sequentially in ascending node order.
struct NodeFacts {
    singleton: bool,
    /// Bit `p` set ⇔ the node is multi-component and its port `p` faces a free cell.
    free_mask: u8,
    intra: [Option<IntraEntry>; 6],
}

fn derive_facts<S>(view: &GeomView<'_, S>, x: NodeId) -> NodeFacts {
    let singleton = view.is_singleton(x);
    let mut free_mask = 0u8;
    let mut intra = [None; 6];
    for &pa in view.dim.dirs() {
        if !singleton && view.port_free(x, pa) {
            free_mask |= 1 << pa.index();
        }
        intra[pa.index()] = view.intra_entry_at(x, pa);
    }
    NodeFacts {
        singleton,
        free_mask,
        intra,
    }
}

/// A live state class of the shared class table.
struct ClassSlot<S> {
    state: S,
    halted: bool,
    /// Number of nodes registered with this class (frees the slot at zero).
    refs: u32,
}

/// Exact base counts of the frozen configuration, excluding multi×multi cross pairs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct BaseCounts {
    /// Permissible pairs in classes 1–3 of the decomposition.
    pub(crate) permissible: u64,
    /// Effective pairs in classes 1–3.
    pub(crate) effective: u64,
}

/// One shard's sub-index: the registrations of its contiguous node-id range, every
/// list sorted so shard-order concatenation is the global canonical order.
#[derive(Default)]
struct Shard {
    /// Canonical keys of the intra pairs whose smaller endpoint this shard owns.
    intra: Vec<u64>,
    /// The effective subset of `intra`.
    intra_eff: Vec<u64>,
    /// Per state class: this shard's free singletons, ascending by node id.
    singletons: Vec<Vec<NodeId>>,
    /// Per state class and port: this shard's multi-component nodes in that state whose
    /// port faces a free cell, ascending by node id.
    free_ports: Vec<[Vec<NodeId>; 6]>,
}

impl Shard {
    fn singleton_bucket(&self, class: u32) -> &[NodeId] {
        self.singletons
            .get(class as usize)
            .map_or(&[], Vec::as_slice)
    }

    fn free_bucket(&self, class: u32, pa: Dir) -> &[NodeId] {
        self.free_ports
            .get(class as usize)
            .map_or(&[], |ports| ports[pa.index()].as_slice())
    }

    fn singleton_bucket_mut(&mut self, class: u32) -> &mut Vec<NodeId> {
        if self.singletons.len() <= class as usize {
            self.singletons.resize_with(class as usize + 1, Vec::new);
        }
        &mut self.singletons[class as usize]
    }

    fn free_bucket_mut(&mut self, class: u32, pa: Dir) -> &mut Vec<NodeId> {
        if self.free_ports.len() <= class as usize {
            self.free_ports
                .resize_with(class as usize + 1, || std::array::from_fn(|_| Vec::new()));
        }
        &mut self.free_ports[class as usize][pa.index()]
    }
}

/// Inserts into a sorted vector (no-op when present); returns whether it was new.
fn sorted_insert<T: Ord + Copy>(list: &mut Vec<T>, value: T) -> bool {
    match list.binary_search(&value) {
        Ok(_) => false,
        Err(at) => {
            list.insert(at, value);
            true
        }
    }
}

/// Removes from a sorted vector; returns whether it was present.
fn sorted_remove<T: Ord + Copy>(list: &mut Vec<T>, value: T) -> bool {
    match list.binary_search(&value) {
        Ok(at) => {
            list.remove(at);
            true
        }
        Err(_) => false,
    }
}

/// One undoable mutation of the pair index, appended to the operation log while a
/// [`crate::World`] checkpoint is open. Every variant names the *registration-level*
/// primitive that ran (not the slot it touched), so the undo in
/// [`PairIndex::rollback_ops`] can call the symmetric primitive — which replays the
/// exact aggregate-delta formulas (`free_port_rate`, `singleton_class*_rate`) at the
/// exact totals they were originally evaluated against, keeping the running
/// `class2_eff`/`class3_eff` aggregates bit-exact under rollback.
pub(crate) enum IndexOp<S> {
    /// `register_singleton(class, x)` ran.
    RegSingleton { x: NodeId, class: u32 },
    /// `drop_singleton_reg(x)` removed a registration of `class`.
    DropSingleton { x: NodeId, class: u32 },
    /// `register_free_port(class, x, pa)` ran.
    RegFreePort { x: NodeId, pa: Dir, class: u32 },
    /// `drop_free_port_reg(x, pa)` removed a registration of `class`.
    DropFreePort { x: NodeId, pa: Dir, class: u32 },
    /// `key` was inserted into its shard's intra list.
    IntraInsert { key: u64 },
    /// `key` was removed from its shard's intra list.
    IntraRemove { key: u64 },
    /// `key` was inserted into its shard's effective-intra list.
    IntraEffInsert { key: u64 },
    /// `key` was removed from its shard's effective-intra list.
    IntraEffRemove { key: u64 },
    /// `intra[x][pa]` was overwritten; `old` is the previous cell value.
    IntraCell {
        x: NodeId,
        pa: Dir,
        old: Option<IntraEntry>,
    },
    /// `node_class[x]` was overwritten.
    NodeClass { x: NodeId, old: u32 },
    /// `classes[class].refs` was incremented (class-switch re-registration).
    RefsInc { class: u32 },
    /// `class_for` allocated a fresh class slot (`reused_slot`: popped from the free
    /// list rather than pushed).
    AllocClass { class: u32, reused_slot: bool },
    /// `release_class(class)` decremented the refcount without freeing the slot.
    ReleaseDec { class: u32 },
    /// `release_class(class)` freed the slot; `state`/`halted` restore it.
    ReleaseFree { class: u32, state: S, halted: bool },
}

/// The sharded incremental permissible-pair index. See the section comment above for
/// the decomposition, the shared aggregate and the shard-count-invariance argument.
pub(crate) struct PairIndex<S> {
    map: ShardMap,
    shards: Vec<Shard>,
    /// Class id each node is registered under (`NONE` before `build`).
    node_class: Vec<u32>,
    /// Whether the node is registered as a free singleton.
    reg_singleton: Vec<bool>,
    /// Bit `p` set ⇔ the node is registered as a free port on `p`.
    reg_free: Vec<u8>,
    /// Per node-port: the intra-component pair the port participates in.
    intra: Vec<[Option<IntraEntry>; 6]>,
    /// The shared class table.
    classes: Vec<Option<ClassSlot<S>>>,
    free_class_slots: Vec<u32>,
    /// Live class ids, ascending — the canonical cell-walk order.
    live_ids: Vec<u32>,
    // --- the shared class-count aggregate -------------------------------------------
    /// Per class and port: population-wide free-port bucket size (Σ over shards).
    g: Vec<[u64; PORT_CAP]>,
    /// Per class: population-wide singleton count (Σ over shards).
    s: Vec<u64>,
    free_total: u64,
    singleton_total: u64,
    intra_total: u64,
    intra_eff_total: u64,
    /// Running effective count of class 2 (free port × singleton) pairs.
    class2_eff: u64,
    /// Running effective count of class 3 (singleton × singleton) pairs.
    class3_eff: u64,
    /// Dense per-(class, port, class) bitmask over the peer port: bit `pb` set ⇔ an
    /// unbonded cross pair of those states/ports is effective. Filled when a class is
    /// allocated; lets the aggregate deltas and the sampling walk avoid hashing.
    effmask: Vec<u8>,
    /// Dense per-class-pair count of effective ordered port pairs (`Σ popcount`).
    epc: Vec<u16>,
    /// Effectiveness memo for the *recount* path ([`PairIndex::counts`]), kept
    /// hash-based and independent of the dense tables so the two computations
    /// cross-validate each other.
    memo: HashMap<u64, bool, DeterministicState>,
    /// Undo log of registration-level mutations, appended while `logging` (i.e. while
    /// a world checkpoint is open). Positions into it are recorded by the world's
    /// epoch frames; `rollback_ops` unwinds a suffix.
    oplog: Vec<IndexOp<S>>,
    logging: bool,
    /// Telemetry handle shared with the owning world (disabled by default): class
    /// allocations/retirements are sampler-visible, deterministic events — they
    /// happen only on the strictly sequential `apply_facts` path of a flush, in
    /// ascending node order — and are worth a step-indexed trace entry each.
    obs: Telemetry,
}

/// Raised when the live class count exceeds [`CLASS_CAP`]; the world then abandons the
/// index for the rest of the execution.
pub(crate) struct ClassOverflow;

impl<S: Clone + PartialEq + Sync> PairIndex<S> {
    pub(crate) fn new(map: ShardMap) -> PairIndex<S> {
        PairIndex {
            map,
            shards: Vec::new(),
            node_class: Vec::new(),
            reg_singleton: Vec::new(),
            reg_free: Vec::new(),
            intra: Vec::new(),
            classes: Vec::new(),
            free_class_slots: Vec::new(),
            live_ids: Vec::new(),
            g: Vec::new(),
            s: Vec::new(),
            free_total: 0,
            singleton_total: 0,
            intra_total: 0,
            intra_eff_total: 0,
            class2_eff: 0,
            class3_eff: 0,
            effmask: Vec::new(),
            epc: Vec::new(),
            memo: HashMap::default(),
            oplog: Vec::new(),
            logging: false,
            obs: Telemetry::disabled(),
        }
    }

    /// Attaches the world's telemetry handle (see the `obs` field docs).
    pub(crate) fn set_telemetry(&mut self, obs: Telemetry) {
        self.obs = obs;
    }

    /// Appends an operation if logging is enabled (the hot-path guard).
    #[inline]
    fn log(&mut self, op: impl FnOnce() -> IndexOp<S>) {
        if self.logging {
            self.oplog.push(op());
        }
    }

    /// Enables/disables the operation log (driven by the world's checkpoint stack).
    pub(crate) fn set_logging(&mut self, on: bool) {
        self.logging = on;
    }

    /// Whether the operation log is currently being appended to.
    pub(crate) fn is_logging(&self) -> bool {
        self.logging
    }

    /// Current length of the operation log.
    pub(crate) fn oplog_len(&self) -> usize {
        self.oplog.len()
    }

    /// Discards the operation log.
    pub(crate) fn clear_oplog(&mut self) {
        self.oplog.clear();
    }

    /// Number of live state classes.
    pub(crate) fn live_class_count(&self) -> usize {
        self.live_ids.len()
    }

    /// The shard whose effective-intra list holds global rank `idx` of the canonical
    /// effective walk, or `None` when `idx` falls past the intra segment (a class-cell
    /// pair, resolved from the shared aggregate instead of any one shard).
    pub(crate) fn intra_eff_shard_of(&self, mut idx: u64) -> Option<usize> {
        for (s, shard) in self.shards.iter().enumerate() {
            if (idx as usize) < shard.intra_eff.len() {
                return Some(s);
            }
            idx -= shard.intra_eff.len() as u64;
        }
        None
    }

    /// Builds the index from scratch for the current configuration.
    pub(crate) fn build<P: Protocol<State = S>>(
        &mut self,
        view: &GeomView<'_, S>,
        protocol: &P,
    ) -> Result<(), ClassOverflow> {
        let n = view.states.len();
        let map = self.map;
        let obs = self.obs.clone();
        *self = PairIndex::new(map);
        self.obs = obs;
        self.shards = (0..map.count()).map(|_| Shard::default()).collect();
        self.node_class = vec![NONE; n];
        self.reg_singleton = vec![false; n];
        self.reg_free = vec![0; n];
        self.intra = vec![[None; 6]; n];
        self.g = vec![[0; PORT_CAP]; CLASS_CAP];
        self.s = vec![0; CLASS_CAP];
        self.effmask = vec![0; CLASS_CAP * PORT_CAP * CLASS_CAP];
        self.epc = vec![0; CLASS_CAP * CLASS_CAP];
        let all: Vec<NodeId> = (0..n as u32).map(NodeId::new).collect();
        self.flush_batch(view, protocol, &all)
    }

    /// Drops every registration (after an overflow: the index stays unusable).
    pub(crate) fn clear(&mut self) {
        let obs = self.obs.clone();
        *self = PairIndex::new(self.map);
        self.obs = obs;
    }

    /// The pinned class-table layout for a snapshot: per slot the live class's state
    /// (`None` for freed slots awaiting reuse) plus the free-slot stack in pop order.
    /// Class ids are allocation-history dependent (freed slots are reused LIFO) and
    /// the canonical sampling walks iterate live ids in ascending order, so a resumed
    /// run must reproduce this layout exactly, not just an equivalent one.
    pub(crate) fn snapshot_class_layout(&self) -> (Vec<Option<S>>, Vec<u32>) {
        let slots = self
            .classes
            .iter()
            .map(|slot| slot.as_ref().map(|class| class.state.clone()))
            .collect();
        (slots, self.free_class_slots.clone())
    }

    /// Rebuilds the index from scratch for the current configuration while pinning
    /// the class table to a snapshot's layout: the slots are pre-seeded (with zero
    /// refcounts and recomputed halted flags) so that `class_for` resolves every node
    /// to its snapshot-time class id by state equality, and the free-slot stack is
    /// restored in pop order. Registering the whole population then rebuilds the
    /// refcounts, the per-shard buckets and the running aggregates exactly.
    ///
    /// # Errors
    /// A static description when the layout is internally inconsistent or does not
    /// cover the configuration's states (the decoder maps it into
    /// [`crate::CoreError::SnapshotCorrupt`]); the index is left cleared.
    pub(crate) fn restore_pinned<P: Protocol<State = S>>(
        &mut self,
        view: &GeomView<'_, S>,
        protocol: &P,
        slots: Vec<Option<S>>,
        free_slots: Vec<u32>,
    ) -> Result<(), &'static str> {
        if slots.len() > CLASS_CAP {
            return Err("class table exceeds the class cap");
        }
        // The free stack must list exactly the empty slots, each once.
        let mut freed = vec![false; slots.len()];
        for &id in &free_slots {
            let Some(flag) = freed.get_mut(id as usize) else {
                return Err("free class slot out of range");
            };
            if *flag {
                return Err("free class slot listed twice");
            }
            *flag = true;
        }
        for (slot, &free) in slots.iter().zip(&freed) {
            if slot.is_none() != free {
                return Err("free-slot stack disagrees with the slot list");
            }
        }
        // `class_for` resolves nodes by state equality against ascending live ids:
        // duplicate states would alias two pinned ids (and can never arise in a
        // genuine run, which allocates a class only when no live one matches).
        let live_states: Vec<&S> = slots.iter().flatten().collect();
        for (i, a) in live_states.iter().enumerate() {
            if live_states.iter().skip(i + 1).any(|b| **a == **b) {
                return Err("two live classes share one state");
            }
        }
        let n = view.states.len();
        let map = self.map;
        let obs = self.obs.clone();
        *self = PairIndex::new(map);
        self.obs = obs;
        self.shards = (0..map.count()).map(|_| Shard::default()).collect();
        self.node_class = vec![NONE; n];
        self.reg_singleton = vec![false; n];
        self.reg_free = vec![0; n];
        self.intra = vec![[None; 6]; n];
        self.g = vec![[0; PORT_CAP]; CLASS_CAP];
        self.s = vec![0; CLASS_CAP];
        self.effmask = vec![0; CLASS_CAP * PORT_CAP * CLASS_CAP];
        self.epc = vec![0; CLASS_CAP * CLASS_CAP];
        self.classes = slots
            .into_iter()
            .map(|slot| {
                slot.map(|state| ClassSlot {
                    halted: protocol.is_halted(&state),
                    state,
                    refs: 0,
                })
            })
            .collect();
        self.free_class_slots = free_slots;
        self.live_ids = (0..self.classes.len() as u32)
            .filter(|&id| self.classes[id as usize].is_some())
            .collect();
        for &id in &self.live_ids.clone() {
            self.fill_class_tables(protocol, view.dim, id);
        }
        let pinned_live = self.live_ids.clone();
        let pinned_free = self.free_class_slots.clone();
        let pinned_len = self.classes.len();
        let all: Vec<NodeId> = (0..n as u32).map(NodeId::new).collect();
        if self.flush_batch(view, protocol, &all).is_err() {
            self.clear();
            return Err("class table overflowed while re-registering the population");
        }
        // Registration must not have disturbed the pinned layout: every node found
        // its class in the table (no fresh allocation popped the free stack or grew
        // the slot list), and every pinned class is actually referenced.
        if self.live_ids != pinned_live
            || self.free_class_slots != pinned_free
            || self.classes.len() != pinned_len
        {
            self.clear();
            return Err("node states do not match the pinned class table");
        }
        if self.live_ids.iter().any(|&id| self.class(id).refs == 0) {
            self.clear();
            return Err("pinned class has no member nodes");
        }
        Ok(())
    }

    /// Number of free singleton nodes (= singleton components).
    pub(crate) fn singleton_count(&self) -> usize {
        self.singleton_total as usize
    }

    /// The incrementally maintained aggregate counts (exact at every configuration).
    pub(crate) fn aggregate_counts(&self, dim: Dim) -> BaseCounts {
        let p = dim.port_count() as u64;
        let s = self.singleton_total;
        BaseCounts {
            permissible: self.intra_total
                + self.free_total * p * s
                + p * p * s.saturating_sub(1) * s / 2,
            effective: self.intra_eff_total + self.class2_eff + self.class3_eff,
        }
    }

    /// Re-derives a batch of nodes (ascending, deduplicated). When the batch is large
    /// the geometry derivation fans out to one task per shard on the vendored pool —
    /// the application to the index stays sequential in ascending node order, so the
    /// resulting structures are identical to a sequential flush.
    pub(crate) fn flush_batch<P: Protocol<State = S>>(
        &mut self,
        view: &GeomView<'_, S>,
        protocol: &P,
        nodes: &[NodeId],
    ) -> Result<(), ClassOverflow> {
        debug_assert!(
            nodes.windows(2).all(|w| w[0] < w[1]),
            "batch must be sorted"
        );
        if nodes.len() >= PARALLEL_FLUSH_MIN && self.map.count() > 1 {
            // Contiguous shard ranges + sorted batch ⇒ the batch splits into per-shard
            // runs whose concatenation is the original order.
            let map = self.map;
            let mut parts: Vec<&[NodeId]> = Vec::with_capacity(map.count());
            let mut rest = nodes;
            for shard in 0..map.count() {
                let end = rest.partition_point(|&x| map.shard_of(x) <= shard);
                let (part, tail) = rest.split_at(end);
                parts.push(part);
                rest = tail;
            }
            let mut facts: Vec<Vec<NodeFacts>> = parts
                .iter()
                .map(|part| Vec::with_capacity(part.len()))
                .collect();
            rayon::scope(|scope| {
                for (part, out) in parts.iter().zip(facts.iter_mut()) {
                    scope.spawn(move |_| {
                        out.extend(part.iter().map(|&x| derive_facts(view, x)));
                    });
                }
            });
            for (part, shard_facts) in parts.iter().zip(facts) {
                for (&x, f) in part.iter().zip(shard_facts) {
                    self.apply_facts(view, protocol, x, &f)?;
                }
            }
            Ok(())
        } else {
            for &x in nodes {
                self.reindex(view, protocol, x)?;
            }
            Ok(())
        }
    }

    /// Re-derives every registration of `x` from the current geometry. Idempotent; the
    /// world calls it (via [`PairIndex::flush_batch`]) for exactly the nodes a delta
    /// may have re-classified: participants, moved nodes, split members, and the
    /// neighbours of newly inserted cells.
    pub(crate) fn reindex<P: Protocol<State = S>>(
        &mut self,
        view: &GeomView<'_, S>,
        protocol: &P,
        x: NodeId,
    ) -> Result<(), ClassOverflow> {
        let facts = derive_facts(view, x);
        self.apply_facts(view, protocol, x, &facts)
    }

    fn apply_facts<P: Protocol<State = S>>(
        &mut self,
        view: &GeomView<'_, S>,
        protocol: &P,
        x: NodeId,
        facts: &NodeFacts,
    ) -> Result<(), ClassOverflow> {
        let xi = x.index();
        let dim = view.dim;
        let halted = view.halted[xi];
        let class = match self.class_for(protocol, dim, &view.states[xi], halted) {
            Ok(class) => class,
            Err(ClassOverflow) => {
                // If `x` is the sole member of its current class, that class is about
                // to be retired anyway: retiring it first frees a slot, so protocols
                // whose *steady-state* diversity sits exactly at the cap (one node
                // churning through fresh states) do not spuriously overflow.
                let old = self.node_class[xi];
                if old == NONE || self.class(old).refs > 1 {
                    return Err(ClassOverflow);
                }
                self.drop_singleton_reg(dim, x);
                for &pa in dim.dirs() {
                    self.drop_free_port_reg(x, pa);
                }
                self.log(|| IndexOp::NodeClass { x, old });
                self.node_class[xi] = NONE;
                self.release_class(old);
                self.class_for(protocol, dim, &view.states[xi], halted)?
            }
        };
        let old_class = self.node_class[xi];
        if old_class != class {
            // Memberships are keyed by class: detach them before re-registering.
            self.drop_singleton_reg(dim, x);
            for &pa in dim.dirs() {
                self.drop_free_port_reg(x, pa);
            }
            self.log(|| IndexOp::RefsInc { class });
            self.class_mut(class).refs += 1;
            self.log(|| IndexOp::NodeClass { x, old: old_class });
            self.node_class[xi] = class;
            if old_class != NONE {
                self.release_class(old_class);
            }
        }
        if facts.singleton != self.reg_singleton[xi] {
            if facts.singleton {
                self.register_singleton(dim, class, x);
            } else {
                self.drop_singleton_reg(dim, x);
            }
        }
        for &pa in dim.dirs() {
            let free = !facts.singleton && facts.free_mask & (1 << pa.index()) != 0;
            let registered = self.reg_free[xi] & (1 << pa.index()) != 0;
            if free && !registered {
                self.register_free_port(class, x, pa);
            } else if !free && registered {
                self.drop_free_port_reg(x, pa);
            }
            // Intra pair at this port.
            let desired = facts.intra[pa.index()];
            let stored = self.intra[xi][pa.index()];
            if stored != desired {
                if let Some(old) = stored {
                    self.unlink_intra(x, pa, old);
                }
                if let Some(new) = desired {
                    if let Some(stale) = self.intra[new.peer.index()][new.pport.index()] {
                        if stale.peer != x || stale.pport != pa {
                            self.unlink_intra(new.peer, new.pport, stale);
                        }
                    }
                    self.intra_cell_set(x, pa, Some(new));
                    self.intra_cell_set(
                        new.peer,
                        new.pport,
                        Some(IntraEntry {
                            peer: x,
                            pport: pa,
                            bonded: new.bonded,
                        }),
                    );
                    self.intra_insert(pair_key(x, pa, new.peer, new.pport));
                }
            }
            if let Some(entry) = self.intra[xi][pa.index()] {
                let key = pair_key(x, pa, entry.peer, entry.pport);
                let eff = !view.halted[xi]
                    && !view.halted[entry.peer.index()]
                    && crate::world::transition_effective(
                        protocol,
                        &view.states[xi],
                        pa,
                        &view.states[entry.peer.index()],
                        entry.pport,
                        entry.bonded,
                    );
                if eff {
                    self.intra_eff_insert(key);
                } else {
                    self.intra_eff_remove(key);
                }
            }
        }
        Ok(())
    }

    // --- class table -------------------------------------------------------------------

    fn class(&self, id: u32) -> &ClassSlot<S> {
        self.classes[id as usize]
            .as_ref()
            .expect("class id must be live")
    }

    fn class_mut(&mut self, id: u32) -> &mut ClassSlot<S> {
        self.classes[id as usize]
            .as_mut()
            .expect("class id must be live")
    }

    fn class_for<P: Protocol<State = S>>(
        &mut self,
        protocol: &P,
        dim: Dim,
        state: &S,
        halted: bool,
    ) -> Result<u32, ClassOverflow> {
        for &id in &self.live_ids {
            if self.class(id).state == *state {
                return Ok(id);
            }
        }
        if self.live_ids.len() == CLASS_CAP {
            return Err(ClassOverflow);
        }
        let slot = ClassSlot {
            state: state.clone(),
            halted,
            refs: 0,
        };
        let (id, reused_slot) = if let Some(id) = self.free_class_slots.pop() {
            self.classes[id as usize] = Some(slot);
            (id, true)
        } else {
            self.classes.push(Some(slot));
            (self.classes.len() as u32 - 1, false)
        };
        sorted_insert(&mut self.live_ids, id);
        self.obs.trace(0, TraceEventKind::ClassAlloc { class: id });
        self.log(|| IndexOp::AllocClass {
            class: id,
            reused_slot,
        });
        self.fill_class_tables(protocol, dim, id);
        Ok(id)
    }

    /// Fills the dense effectiveness tables of class `id` against every live class
    /// (including itself). Called on allocation, and again when a rollback resurrects
    /// a freed class whose rows a slot-reusing allocation may have overwritten.
    /// Totals of the class are zero at both call sites, so filling cannot disturb the
    /// running aggregate.
    fn fill_class_tables<P: Protocol<State = S>>(&mut self, protocol: &P, dim: Dim, id: u32) {
        debug_assert!(self.s[id as usize] == 0 && self.g[id as usize] == [0; PORT_CAP]);
        for &other in &self.live_ids.clone() {
            // `transition_effective` resolves the unordered pair by trying the
            // first-argument order first, so effectiveness is not automatically
            // symmetric in the two (state, port) roles: the tables are stored
            // *directionally* (`epc[x][y] = Σ eff(x, pa, y, pb)`), and every consumer
            // picks the same canonical orientation as the recount and the sampling
            // walks (lower live class id first).
            let mut pairs_fwd = 0u16;
            let mut pairs_rev = 0u16;
            for &pa in dim.dirs() {
                let mut mask_new_other = 0u8;
                let mut mask_other_new = 0u8;
                for &pb in dim.dirs() {
                    if self.raw_cross_effective(protocol, id, pa, other, pb) {
                        mask_new_other |= 1 << pb.index();
                    }
                    if self.raw_cross_effective(protocol, other, pa, id, pb) {
                        mask_other_new |= 1 << pb.index();
                    }
                }
                self.effmask[Self::mask_at(id, pa, other)] = mask_new_other;
                self.effmask[Self::mask_at(other, pa, id)] = mask_other_new;
                pairs_fwd += u16::from(mask_new_other.count_ones() as u8);
                pairs_rev += u16::from(mask_other_new.count_ones() as u8);
            }
            self.epc[id as usize * CLASS_CAP + other as usize] = pairs_fwd;
            self.epc[other as usize * CLASS_CAP + id as usize] = pairs_rev;
        }
    }

    fn mask_at(ca: u32, pa: Dir, cb: u32) -> usize {
        (ca as usize * PORT_CAP + pa.index()) * CLASS_CAP + cb as usize
    }

    /// Uncached effectiveness of an unbonded cross pair between the two classes.
    fn raw_cross_effective<P: Protocol<State = S>>(
        &self,
        protocol: &P,
        ca: u32,
        pa: Dir,
        cb: u32,
        pb: Dir,
    ) -> bool {
        let a = self.class(ca);
        let b = self.class(cb);
        !a.halted
            && !b.halted
            && crate::world::transition_effective(protocol, &a.state, pa, &b.state, pb, false)
    }

    fn release_class(&mut self, id: u32) {
        let slot = self.class_mut(id);
        slot.refs -= 1;
        if slot.refs == 0 {
            debug_assert_eq!(self.s[id as usize], 0);
            debug_assert_eq!(self.g[id as usize], [0; PORT_CAP]);
            let freed = self.classes[id as usize]
                .take()
                .expect("class id must be live");
            self.obs.trace(0, TraceEventKind::ClassRetire { class: id });
            self.log(|| IndexOp::ReleaseFree {
                class: id,
                state: freed.state,
                halted: freed.halted,
            });
            self.free_class_slots.push(id);
            sorted_remove(&mut self.live_ids, id);
            // Memo entries referencing a retired class id would alias its successor.
            self.memo.retain(|&key, _| {
                (key >> 40) as u32 != id && ((key >> 8) & 0xFF_FFFF) as u32 != id
            });
        } else {
            self.log(|| IndexOp::ReleaseDec { class: id });
        }
    }

    // --- registrations and the running aggregate ---------------------------------------

    /// `Σ_{cb live} s[cb] · |{pb : eff(ca, pa, cb, pb)}|` — the class-2 effective pairs
    /// one free port on `(ca, pa)` participates in.
    fn free_port_rate(&self, ca: u32, pa: Dir) -> u64 {
        let mut sum = 0;
        for &cb in &self.live_ids {
            let sc = self.s[cb as usize];
            if sc > 0 {
                sum += sc * u64::from(self.effmask[Self::mask_at(ca, pa, cb)].count_ones());
            }
        }
        sum
    }

    /// `Σ_{ca live, pa} g[ca][pa] · |{pb : eff(ca, pa, c, pb)}|` — the class-2
    /// effective pairs one singleton of class `c` participates in.
    fn singleton_class2_rate(&self, dim: Dim, c: u32) -> u64 {
        let mut sum = 0;
        for &ca in &self.live_ids {
            for &pa in dim.dirs() {
                let ga = self.g[ca as usize][pa.index()];
                if ga > 0 {
                    sum += ga * u64::from(self.effmask[Self::mask_at(ca, pa, c)].count_ones());
                }
            }
        }
        sum
    }

    /// `Σ_{cb live} s[cb] · epc[lo][hi]` (with `(lo, hi) = (min(c, cb), max(c, cb))`) —
    /// the class-3 effective pairs one singleton of class `c` forms with the currently
    /// registered singletons, evaluated in the same canonical orientation (lower live
    /// class id takes the `pa` role) as the recount and the sampling walk, so the
    /// running aggregate stays consistent with both even for protocols whose
    /// transition table is not symmetric in the two roles.
    fn singleton_class3_rate(&self, c: u32) -> u64 {
        let mut sum = 0;
        for &cb in &self.live_ids {
            let sc = self.s[cb as usize];
            if sc > 0 {
                let (lo, hi) = (c.min(cb) as usize, c.max(cb) as usize);
                sum += sc * u64::from(self.epc[lo * CLASS_CAP + hi]);
            }
        }
        sum
    }

    fn register_singleton(&mut self, dim: Dim, class: u32, x: NodeId) {
        debug_assert!(!self.reg_singleton[x.index()]);
        self.log(|| IndexOp::RegSingleton { x, class });
        // Deltas are computed against the *pre-registration* totals: the new singleton
        // pairs with every existing free port and singleton.
        self.class2_eff += self.singleton_class2_rate(dim, class);
        self.class3_eff += self.singleton_class3_rate(class);
        self.s[class as usize] += 1;
        self.singleton_total += 1;
        let shard = self.map.shard_of(x);
        let inserted = sorted_insert(self.shards[shard].singleton_bucket_mut(class), x);
        debug_assert!(inserted);
        self.reg_singleton[x.index()] = true;
    }

    fn drop_singleton_reg(&mut self, dim: Dim, x: NodeId) {
        if !self.reg_singleton[x.index()] {
            return;
        }
        let class = self.node_class[x.index()];
        self.log(|| IndexOp::DropSingleton { x, class });
        let shard = self.map.shard_of(x);
        let removed = sorted_remove(self.shards[shard].singleton_bucket_mut(class), x);
        debug_assert!(removed);
        self.reg_singleton[x.index()] = false;
        self.s[class as usize] -= 1;
        self.singleton_total -= 1;
        // Post-removal totals: exactly the pairs the departed singleton was part of.
        self.class2_eff -= self.singleton_class2_rate(dim, class);
        self.class3_eff -= self.singleton_class3_rate(class);
    }

    fn register_free_port(&mut self, class: u32, x: NodeId, pa: Dir) {
        self.log(|| IndexOp::RegFreePort { x, pa, class });
        self.class2_eff += self.free_port_rate(class, pa);
        self.g[class as usize][pa.index()] += 1;
        self.free_total += 1;
        let shard = self.map.shard_of(x);
        let inserted = sorted_insert(self.shards[shard].free_bucket_mut(class, pa), x);
        debug_assert!(inserted);
        self.reg_free[x.index()] |= 1 << pa.index();
    }

    fn drop_free_port_reg(&mut self, x: NodeId, pa: Dir) {
        if self.reg_free[x.index()] & (1 << pa.index()) == 0 {
            return;
        }
        let class = self.node_class[x.index()];
        self.log(|| IndexOp::DropFreePort { x, pa, class });
        let shard = self.map.shard_of(x);
        let removed = sorted_remove(self.shards[shard].free_bucket_mut(class, pa), x);
        debug_assert!(removed);
        self.reg_free[x.index()] &= !(1 << pa.index());
        self.g[class as usize][pa.index()] -= 1;
        self.free_total -= 1;
        self.class2_eff -= self.free_port_rate(class, pa);
    }

    fn intra_insert(&mut self, key: u64) {
        let shard = self.map.shard_of(key_owner(key));
        if sorted_insert(&mut self.shards[shard].intra, key) {
            self.intra_total += 1;
            self.log(|| IndexOp::IntraInsert { key });
        }
    }

    fn intra_eff_insert(&mut self, key: u64) {
        let shard = self.map.shard_of(key_owner(key));
        if sorted_insert(&mut self.shards[shard].intra_eff, key) {
            self.intra_eff_total += 1;
            self.log(|| IndexOp::IntraEffInsert { key });
        }
    }

    fn intra_eff_remove(&mut self, key: u64) {
        let shard = self.map.shard_of(key_owner(key));
        if sorted_remove(&mut self.shards[shard].intra_eff, key) {
            self.intra_eff_total -= 1;
            self.log(|| IndexOp::IntraEffRemove { key });
        }
    }

    /// Overwrites `intra[x][pa]`, logging the previous cell value.
    fn intra_cell_set(&mut self, x: NodeId, pa: Dir, value: Option<IntraEntry>) {
        let old = self.intra[x.index()][pa.index()];
        self.log(|| IndexOp::IntraCell { x, pa, old });
        self.intra[x.index()][pa.index()] = value;
    }

    /// Removes the stored intra pair anchored at `(x, pa)` from the lists and clears
    /// the mirror entry if it still points back.
    fn unlink_intra(&mut self, x: NodeId, pa: Dir, entry: IntraEntry) {
        let key = pair_key(x, pa, entry.peer, entry.pport);
        let shard = self.map.shard_of(key_owner(key));
        if sorted_remove(&mut self.shards[shard].intra, key) {
            self.intra_total -= 1;
            self.log(|| IndexOp::IntraRemove { key });
        }
        self.intra_eff_remove(key);
        self.intra_cell_set(x, pa, None);
        let mirror = self.intra[entry.peer.index()][entry.pport.index()];
        if mirror.is_some_and(|m| m.peer == x && m.pport == pa) {
            self.intra_cell_set(entry.peer, entry.pport, None);
        }
    }

    /// Unwinds the operation log back to length `to`, restoring the per-shard
    /// sub-index layouts, the class table and the running aggregates to their exact
    /// values at that position.
    ///
    /// Registration ops are undone by calling the *symmetric primitive* (with logging
    /// suspended): a `register` computes its aggregate delta against pre-registration
    /// totals and a `drop` against post-removal totals, which are the same totals —
    /// so a strict-reverse replay re-evaluates every delta formula at exactly the
    /// state it originally saw, and the running `class2_eff`/`class3_eff` come back
    /// bit-exact without storing the deltas. Slot-level ops (`intra` cells,
    /// `node_class`, class alloc/release) restore the recorded old values directly;
    /// the free-slot stack inverts exactly because pushes and pops alternate with
    /// their logged counterparts under strict reverse order.
    pub(crate) fn rollback_ops<P: Protocol<State = S>>(
        &mut self,
        to: usize,
        protocol: &P,
        dim: Dim,
    ) {
        let ops = self.oplog.split_off(to);
        let was_logging = self.logging;
        self.logging = false;
        for op in ops.into_iter().rev() {
            match op {
                IndexOp::RegSingleton { x, class } => {
                    debug_assert_eq!(self.node_class[x.index()], class);
                    self.drop_singleton_reg(dim, x);
                }
                IndexOp::DropSingleton { x, class } => {
                    self.register_singleton(dim, class, x);
                }
                IndexOp::RegFreePort { x, pa, class } => {
                    debug_assert_eq!(self.node_class[x.index()], class);
                    self.drop_free_port_reg(x, pa);
                }
                IndexOp::DropFreePort { x, pa, class } => {
                    self.register_free_port(class, x, pa);
                }
                IndexOp::IntraInsert { key } => {
                    let shard = self.map.shard_of(key_owner(key));
                    let removed = sorted_remove(&mut self.shards[shard].intra, key);
                    debug_assert!(removed);
                    self.intra_total -= 1;
                }
                IndexOp::IntraRemove { key } => {
                    let shard = self.map.shard_of(key_owner(key));
                    let inserted = sorted_insert(&mut self.shards[shard].intra, key);
                    debug_assert!(inserted);
                    self.intra_total += 1;
                }
                IndexOp::IntraEffInsert { key } => self.intra_eff_remove(key),
                IndexOp::IntraEffRemove { key } => self.intra_eff_insert(key),
                IndexOp::IntraCell { x, pa, old } => {
                    self.intra[x.index()][pa.index()] = old;
                }
                IndexOp::NodeClass { x, old } => {
                    self.node_class[x.index()] = old;
                }
                IndexOp::RefsInc { class } => {
                    self.class_mut(class).refs -= 1;
                }
                IndexOp::AllocClass { class, reused_slot } => {
                    debug_assert_eq!(self.class(class).refs, 0);
                    let removed = sorted_remove(&mut self.live_ids, class);
                    debug_assert!(removed);
                    if reused_slot {
                        self.classes[class as usize] = None;
                        self.free_class_slots.push(class);
                    } else {
                        debug_assert_eq!(class as usize, self.classes.len() - 1);
                        self.classes.pop();
                    }
                    // Recount memoisations inserted during the epoch may reference the
                    // retired id; purge them or they would alias its next tenant (the
                    // same guard `release_class` applies on the forward path).
                    self.memo.retain(|&key, _| {
                        (key >> 40) as u32 != class && ((key >> 8) & 0xFF_FFFF) as u32 != class
                    });
                }
                IndexOp::ReleaseDec { class } => {
                    self.class_mut(class).refs += 1;
                }
                IndexOp::ReleaseFree {
                    class,
                    state,
                    halted,
                } => {
                    let top = self.free_class_slots.pop();
                    debug_assert_eq!(top, Some(class));
                    sorted_insert(&mut self.live_ids, class);
                    self.classes[class as usize] = Some(ClassSlot {
                        state,
                        halted,
                        refs: 1,
                    });
                    // A slot-reusing allocation after the release may have overwritten
                    // this id's dense effectiveness rows; refill them against the
                    // restored live set.
                    self.fill_class_tables(protocol, dim, class);
                }
            }
        }
        self.logging = was_logging;
    }

    // --- the recount (validation twin of the aggregate) --------------------------------

    /// Memoised effectiveness of an unbonded cross pair between a node of class `ca`
    /// interacting through `pa` and a node of class `cb` through `pb`. Hash-memo based
    /// and deliberately independent of the dense `effmask` tables, so
    /// [`PairIndex::counts`] recounts cross-validate the running aggregate.
    fn cross_effective<P: Protocol<State = S>>(
        &mut self,
        protocol: &P,
        ca: u32,
        pa: Dir,
        cb: u32,
        pb: Dir,
    ) -> bool {
        let key = (u64::from(ca) << 40)
            | ((pa.index() as u64) << 32)
            | (u64::from(cb) << 8)
            | pb.index() as u64;
        if let Some(&v) = self.memo.get(&key) {
            return v;
        }
        let v = self.raw_cross_effective(protocol, ca, pa, cb, pb);
        self.memo.insert(key, v);
        v
    }

    /// Per-shard bucket sums, recomputed from the stored lists (not the aggregate).
    fn recount_bucket(&self, class: u32, port: Option<Dir>) -> u64 {
        self.shards
            .iter()
            .map(|shard| match port {
                Some(pa) => shard.free_bucket(class, pa).len() as u64,
                None => shard.singleton_bucket(class).len() as u64,
            })
            .sum()
    }

    /// Exact counts of the base classes (1–3) of the decomposition, recomputed from the
    /// per-shard lists and the hash memo in `O(classes²·ports²)`. This is the
    /// independent twin of [`PairIndex::aggregate_counts`]: the batched sampler derives
    /// its per-version counts here, and `validate` asserts both agree.
    pub(crate) fn counts<P: Protocol<State = S>>(&mut self, protocol: &P, dim: Dim) -> BaseCounts {
        let p = dim.port_count() as u64;
        let intra: u64 = self.shards.iter().map(|sh| sh.intra.len() as u64).sum();
        let intra_eff: u64 = self.shards.iter().map(|sh| sh.intra_eff.len() as u64).sum();
        let ids = self.live_ids.clone();
        let s_total: u64 = ids.iter().map(|&c| self.recount_bucket(c, None)).sum();
        let free_total: u64 = ids
            .iter()
            .flat_map(|&c| dim.dirs().iter().map(move |&pa| (c, pa)))
            .map(|(c, pa)| self.recount_bucket(c, Some(pa)))
            .sum();
        let permissible =
            intra + free_total * p * s_total + p * p * s_total.saturating_sub(1) * s_total / 2;
        let mut effective = intra_eff;
        // Class 2: multi-component free ports × singletons, by class pair.
        for &ca in &ids {
            for &pa in dim.dirs() {
                let g = self.recount_bucket(ca, Some(pa));
                if g == 0 {
                    continue;
                }
                for &cb in &ids {
                    let sc = self.recount_bucket(cb, None);
                    if sc == 0 {
                        continue;
                    }
                    for &pb in dim.dirs() {
                        if self.cross_effective(protocol, ca, pa, cb, pb) {
                            effective += g * sc;
                        }
                    }
                }
            }
        }
        // Class 3: singleton × singleton, by unordered class pair; for pairs within one
        // class the node with the smaller id takes `pa`, so each unordered interaction
        // is counted exactly once over the ordered `(pa, pb)` sweep.
        for (i, &ca) in ids.iter().enumerate() {
            let sa = self.recount_bucket(ca, None);
            if sa == 0 {
                continue;
            }
            for &cb in &ids[i..] {
                let sb = self.recount_bucket(cb, None);
                if sb == 0 {
                    continue;
                }
                let pairs = if ca == cb { sa * (sa - 1) / 2 } else { sa * sb };
                if pairs == 0 {
                    continue;
                }
                for &pa in dim.dirs() {
                    for &pb in dim.dirs() {
                        if self.cross_effective(protocol, ca, pa, cb, pb) {
                            effective += pairs;
                        }
                    }
                }
            }
        }
        BaseCounts {
            permissible,
            effective,
        }
    }

    // --- canonical uniform sampling -----------------------------------------------------

    /// The `k`-th singleton of class `c` in the global canonical order (shards in shard
    /// order; contiguous ranges make that ascending node-id order).
    fn kth_singleton(&self, c: u32, mut k: u64) -> NodeId {
        for shard in &self.shards {
            let bucket = shard.singleton_bucket(c);
            if (k as usize) < bucket.len() {
                return bucket[k as usize];
            }
            k -= bucket.len() as u64;
        }
        unreachable!("singleton rank exceeded the class bucket");
    }

    /// The `k`-th free port of `(c, pa)` in the global canonical order.
    fn kth_free_port(&self, c: u32, pa: Dir, mut k: u64) -> NodeId {
        for shard in &self.shards {
            let bucket = shard.free_bucket(c, pa);
            if (k as usize) < bucket.len() {
                return bucket[k as usize];
            }
            k -= bucket.len() as u64;
        }
        unreachable!("free-port rank exceeded the class bucket");
    }

    /// Unranks `r ∈ 0..C(s, 2)` to the `r`-th pair `(i, j)`, `i < j`, in lexicographic
    /// order over ranks `0..s`.
    fn unrank_pair(r: u64, s: u64) -> (u64, u64) {
        debug_assert!(s >= 2 && r < s * (s - 1) / 2);
        // Rows before row i hold f(i) = i·s − i(i+1)/2 pairs; invert approximately in
        // floats, then fix up exactly (the approximation is off by at most a few rows).
        let sf = s as f64;
        let mut i = (sf - 0.5 - ((sf - 0.5) * (sf - 0.5) - 2.0 * r as f64).max(0.0).sqrt())
            .floor()
            .max(0.0) as u64;
        let row_start = |i: u64| i * s - i * (i + 1) / 2;
        while i + 1 < s && row_start(i + 1) <= r {
            i += 1;
        }
        while row_start(i) > r {
            i -= 1;
        }
        let j = i + 1 + (r - row_start(i));
        debug_assert!(j < s);
        (i, j)
    }

    /// The `idx`-th effective base pair under the canonical walk order: per-shard intra
    /// keys, then class-2 cells, then class-3 cells (classes and ports ascending), with
    /// arithmetic decomposition inside each cell. The result is uniform over the
    /// effective base set when `idx` is uniform over `0..aggregate effective`, and —
    /// because every ordering involved is configuration-canonical — independent of the
    /// shard count.
    pub(crate) fn sample_effective(&self, dim: Dim, mut idx: u64) -> (NodeId, Dir, NodeId, Dir) {
        for shard in &self.shards {
            if (idx as usize) < shard.intra_eff.len() {
                return unpack_key(shard.intra_eff[idx as usize]);
            }
            idx -= shard.intra_eff.len() as u64;
        }
        // Class 2 cells: free port (ca, pa) × singleton (cb, pb).
        for &ca in &self.live_ids {
            for &pa in dim.dirs() {
                let g = self.g[ca as usize][pa.index()];
                if g == 0 {
                    continue;
                }
                for &cb in &self.live_ids {
                    let sc = self.s[cb as usize];
                    if sc == 0 {
                        continue;
                    }
                    let mask = self.effmask[Self::mask_at(ca, pa, cb)];
                    if mask == 0 {
                        continue;
                    }
                    for &pb in dim.dirs() {
                        if mask & (1 << pb.index()) == 0 {
                            continue;
                        }
                        let cell = g * sc;
                        if idx < cell {
                            let x = self.kth_free_port(ca, pa, idx / sc);
                            let y = self.kth_singleton(cb, idx % sc);
                            return (x, pa, y, pb);
                        }
                        idx -= cell;
                    }
                }
            }
        }
        // Class 3 cells: singleton × singleton by unordered class pair; within one
        // class the smaller node takes `pa` (the counting convention).
        for (i, &ca) in self.live_ids.iter().enumerate() {
            let sa = self.s[ca as usize];
            if sa == 0 {
                continue;
            }
            for &cb in &self.live_ids[i..] {
                let sb = self.s[cb as usize];
                if sb == 0 {
                    continue;
                }
                let pairs = if ca == cb { sa * (sa - 1) / 2 } else { sa * sb };
                if pairs == 0 {
                    continue;
                }
                for &pa in dim.dirs() {
                    let mask = self.effmask[Self::mask_at(ca, pa, cb)];
                    if mask == 0 {
                        continue;
                    }
                    for &pb in dim.dirs() {
                        if mask & (1 << pb.index()) == 0 {
                            continue;
                        }
                        if idx < pairs {
                            return if ca == cb {
                                let (i, j) = Self::unrank_pair(idx, sa);
                                (self.kth_singleton(ca, i), pa, self.kth_singleton(ca, j), pb)
                            } else {
                                (
                                    self.kth_singleton(ca, idx / sb),
                                    pa,
                                    self.kth_singleton(cb, idx % sb),
                                    pb,
                                )
                            };
                        }
                        idx -= pairs;
                    }
                }
            }
        }
        unreachable!("sample index exceeded the effective base count");
    }

    /// The `idx`-th *permissible* base pair under the canonical walk order (intra keys,
    /// then free-port × singleton, then singleton²) — uniform over the base permissible
    /// set when `idx` is uniform, shard-count independent for the same reasons as
    /// [`PairIndex::sample_effective`].
    pub(crate) fn sample_permissible(&self, dim: Dim, mut idx: u64) -> (NodeId, Dir, NodeId, Dir) {
        for shard in &self.shards {
            if (idx as usize) < shard.intra.len() {
                return unpack_key(shard.intra[idx as usize]);
            }
            idx -= shard.intra.len() as u64;
        }
        let p = dim.port_count() as u64;
        let s = self.singleton_total;
        let ms = self.free_total * p * s;
        if idx < ms {
            let free_rank = idx / (p * s);
            let rem = idx % (p * s);
            let pb = dim.dirs()[(rem / s) as usize];
            let y = self.global_singleton(rem % s);
            let (x, pa) = self.global_free_port(free_rank);
            return (x, pa, y, pb);
        }
        idx -= ms;
        let pair_rank = idx / (p * p);
        let port_rank = idx % (p * p);
        let pa = dim.dirs()[(port_rank / p) as usize];
        let pb = dim.dirs()[(port_rank % p) as usize];
        let (i, j) = Self::unrank_pair(pair_rank, s);
        (self.global_singleton(i), pa, self.global_singleton(j), pb)
    }

    /// The `k`-th singleton in the canonical global order (class-major, then shard,
    /// then node id).
    fn global_singleton(&self, mut k: u64) -> NodeId {
        for &c in &self.live_ids {
            let sc = self.s[c as usize];
            if k < sc {
                return self.kth_singleton(c, k);
            }
            k -= sc;
        }
        unreachable!("singleton rank exceeded the population");
    }

    /// The `k`-th free port in the canonical global order (class-major, port, shard,
    /// node id).
    fn global_free_port(&self, mut k: u64) -> (NodeId, Dir) {
        for &c in &self.live_ids {
            for pa in 0..PORT_CAP {
                let pa = Dir::from_index(pa);
                let g = self.g[c as usize][pa.index()];
                if k < g {
                    return (self.kth_free_port(c, pa, k), pa);
                }
                k -= g;
            }
        }
        unreachable!("free-port rank exceeded the registration count");
    }

    /// Expands the full effective base set (validation oracle support; `O(E)`).
    pub(crate) fn collect_effective(&self, dim: Dim) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .shards
            .iter()
            .flat_map(|sh| sh.intra_eff.iter().copied())
            .collect();
        for &ca in &self.live_ids {
            for &pa in dim.dirs() {
                if self.g[ca as usize][pa.index()] == 0 {
                    continue;
                }
                for &cb in &self.live_ids {
                    if self.s[cb as usize] == 0 {
                        continue;
                    }
                    let mask = self.effmask[Self::mask_at(ca, pa, cb)];
                    for &pb in dim.dirs() {
                        if mask & (1 << pb.index()) == 0 {
                            continue;
                        }
                        for shard_x in &self.shards {
                            for &x in shard_x.free_bucket(ca, pa) {
                                for shard_y in &self.shards {
                                    for &y in shard_y.singleton_bucket(cb) {
                                        out.push(pair_key(x, pa, y, pb));
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        for (i, &ca) in self.live_ids.iter().enumerate() {
            for &cb in &self.live_ids[i..] {
                for &pa in dim.dirs() {
                    let mask = self.effmask[Self::mask_at(ca, pa, cb)];
                    for &pb in dim.dirs() {
                        if mask & (1 << pb.index()) == 0 {
                            continue;
                        }
                        for shard_y in &self.shards {
                            for &y in shard_y.singleton_bucket(ca) {
                                for shard_z in &self.shards {
                                    for &z in shard_z.singleton_bucket(cb) {
                                        // Within one class the smaller id takes `pa`
                                        // (the counting convention); across classes all
                                        // ordered role assignments are distinct cells.
                                        if ca == cb && y >= z {
                                            continue;
                                        }
                                        out.push(pair_key(y, pa, z, pb));
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Per-shard load summary: `(singletons, free ports, intra pairs)` per shard.
    pub(crate) fn shard_loads(&self) -> Vec<(usize, usize, usize)> {
        self.shards
            .iter()
            .map(|shard| {
                (
                    shard.singletons.iter().map(Vec::len).sum(),
                    shard
                        .free_ports
                        .iter()
                        .flat_map(|ports| ports.iter().map(Vec::len))
                        .sum(),
                    shard.intra.len(),
                )
            })
            .collect()
    }

    /// Structural invariants of the sharded layout: per-shard lists sorted, every entry
    /// owned by its shard, aggregate totals equal to recounted bucket sums. Used by the
    /// validation suite.
    pub(crate) fn check_sharding(&self) -> Result<(), String> {
        let sorted = |v: &[u64]| v.windows(2).all(|w| w[0] < w[1]);
        for (i, shard) in self.shards.iter().enumerate() {
            if !sorted(&shard.intra) || !sorted(&shard.intra_eff) {
                return Err(format!("shard {i}: intra key lists not strictly sorted"));
            }
            for &key in shard.intra.iter().chain(&shard.intra_eff) {
                if self.map.shard_of(key_owner(key)) != i {
                    return Err(format!("shard {i}: foreign intra key {key:#x}"));
                }
            }
            for bucket in shard
                .singletons
                .iter()
                .chain(shard.free_ports.iter().flat_map(|p| p.iter()))
            {
                if !bucket.windows(2).all(|w| w[0] < w[1]) {
                    return Err(format!("shard {i}: bucket not strictly sorted"));
                }
                if bucket.iter().any(|&x| self.map.shard_of(x) != i) {
                    return Err(format!("shard {i}: foreign bucket member"));
                }
            }
        }
        for &c in &self.live_ids {
            if self.recount_bucket(c, None) != self.s[c as usize] {
                return Err(format!("class {c}: singleton aggregate out of sync"));
            }
            for pa in 0..PORT_CAP {
                let pa = Dir::from_index(pa);
                if self.recount_bucket(c, Some(pa)) != self.g[c as usize][pa.index()] {
                    return Err(format!("class {c}: free-port aggregate out of sync"));
                }
            }
        }
        let intra: u64 = self.shards.iter().map(|sh| sh.intra.len() as u64).sum();
        let intra_eff: u64 = self.shards.iter().map(|sh| sh.intra_eff.len() as u64).sum();
        if intra != self.intra_total || intra_eff != self.intra_eff_total {
            return Err("intra totals out of sync".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_map(n: usize, shards: usize) -> ShardMap {
        ShardMap::new(n, shards)
    }

    #[test]
    fn marks_deduplicate_but_count() {
        let index = InteractionIndex::new(test_map(3, 1));
        {
            let mut state = index.lock();
            state.queues.iter_mut().for_each(Vec::clear);
            state.dirty.fill(false);
            state.quiescent = true;
        }
        index.mark_dirty(test_map(3, 1), NodeId::new(1));
        index.mark_dirty(test_map(3, 1), NodeId::new(1));
        let state = index.lock();
        assert_eq!(state.queues[0], vec![NodeId::new(1)]);
        assert!(state.dirty[1] && !state.dirty[0]);
        assert!(!state.quiescent);
        assert_eq!(state.stats.dirty_marks, 2);
    }

    #[test]
    fn dirty_marks_route_to_the_owning_shard() {
        let map = test_map(8, 4);
        let index = InteractionIndex::new(map);
        {
            let mut state = index.lock();
            state.queues.iter_mut().for_each(Vec::clear);
            state.dirty.fill(false);
        }
        index.mark_dirty(map, NodeId::new(0));
        index.mark_dirty(map, NodeId::new(7));
        let state = index.lock();
        assert_eq!(state.queues[0], vec![NodeId::new(0)]);
        assert_eq!(state.queues[3], vec![NodeId::new(7)]);
        assert!(state.queues[1].is_empty() && state.queues[2].is_empty());
    }

    #[test]
    fn versions_increase() {
        let index = InteractionIndex::new(test_map(1, 1));
        let v0 = index.version();
        index.bump_version();
        assert_eq!(index.version(), v0 + 1);
    }

    #[test]
    fn pair_unranking_is_a_bijection() {
        for s in 2u64..30 {
            let mut seen = std::collections::HashSet::new();
            for r in 0..s * (s - 1) / 2 {
                let (i, j) = PairIndex::<u8>::unrank_pair(r, s);
                assert!(i < j && j < s, "s={s} r={r} gave ({i}, {j})");
                assert!(seen.insert((i, j)), "s={s}: duplicate pair ({i}, {j})");
            }
        }
    }

    #[test]
    fn sorted_insert_remove_roundtrip() {
        let mut v = Vec::new();
        assert!(sorted_insert(&mut v, 5u64));
        assert!(sorted_insert(&mut v, 1));
        assert!(sorted_insert(&mut v, 9));
        assert!(!sorted_insert(&mut v, 5));
        assert_eq!(v, vec![1, 5, 9]);
        assert!(sorted_remove(&mut v, 5));
        assert!(!sorted_remove(&mut v, 5));
        assert_eq!(v, vec![1, 9]);
    }
}
