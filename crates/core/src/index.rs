//! The incremental indexes of the runtime: the *interaction index* (dirty frontier)
//! that makes stability detection and effective-pair lookup amortised `O(active)`
//! instead of `O(n² · ports²)`, and — further down in this module — the
//! *permissible-pair index* that maintains exact per-version permissible/effective
//! pair counts for the batched geometric-jump sampler.
//!
//! # Design (interaction index)
//!
//! A pair of node-ports can only *become* effective when something about one of its
//! endpoints changes: a state, the bond between the two ports, or the geometry of an
//! endpoint's component. [`crate::World::apply`] translates every delta it produces into
//! *dirty* marks on exactly the nodes whose pairs may have become effective:
//!
//! * a state change or a bond flip marks the two participants;
//! * a merge marks every *moved* node (the members of the absorbed component — the
//!   surviving component's cells only gain neighbours, which can remove permissible
//!   pairs but never create effective ones);
//! * a split marks every member of the pre-split component (both halves shrink, which
//!   can unlock merge placements for all of them).
//!
//! A stability query drains the dirty queue: each dirty node is scanned against the whole
//! population; a node is cleaned only when its scan finds nothing. Because every
//! effective pair must keep at least one dirty endpoint (or be the cached candidate from
//! a previous scan), an empty queue with no valid candidate proves stability. Each dirty
//! mark is therefore paid for **once**, regardless of how often stability is queried —
//! which is what lets [`crate::Simulation::run_until_stable`] check for stability after
//! every step and stop exactly at stabilisation.
//!
//! The index lives behind a [`RefCell`] so that read-only queries
//! ([`crate::World::is_stable`] takes `&self`) can update the memoisation. As a
//! consequence `World` is not `Sync`; see the ROADMAP's sharding item for the plan to
//! replace this with per-shard indices.

use crate::component::{Component, DeterministicState};
use crate::{Interaction, NodeId, Placement, Protocol};
use nc_geometry::{Dim, Dir};
use rand::{Rng, RngCore};
use std::cell::{Cell, RefCell, RefMut};
use std::collections::HashMap;

/// Counters describing how much work the index has done (and saved).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Nodes marked dirty since creation (includes re-marks of already-dirty nodes).
    pub dirty_marks: u64,
    /// Full per-node scans performed while draining the dirty queue.
    pub node_scans: u64,
    /// Queries answered by revalidating the cached candidate interaction.
    pub candidate_hits: u64,
    /// Queries answered immediately by the quiescent flag (configuration known stable).
    pub quiescent_hits: u64,
}

/// The mutable part of the index (see the module docs for the invariant).
pub(crate) struct IndexState {
    /// Per-node dirty flag; `true` iff the node is in `queue`.
    pub(crate) dirty: Vec<bool>,
    /// Nodes whose pairs must be rescanned before stability can be concluded.
    pub(crate) queue: Vec<NodeId>,
    /// The most recently found effective interaction; revalidated in `O(1)` before any
    /// scan work happens.
    pub(crate) candidate: Option<Interaction>,
    /// `true` once a drain proved that no effective pair exists; reset by any dirty mark.
    pub(crate) quiescent: bool,
    /// Work counters.
    pub(crate) stats: IndexStats,
}

/// Interior-mutable wrapper so `&World` queries can memoise their progress.
pub(crate) struct InteractionIndex {
    inner: RefCell<IndexState>,
    /// Monotonically increasing configuration version: bumped on every observable world
    /// change so that samplers can cache derived structures (e.g. the enumerated
    /// permissible set) and invalidate them precisely. The version starts at a
    /// process-unique value (see `new`), so versions from two different worlds never
    /// collide — a scheduler driven against several worlds cannot replay a cached
    /// structure into the wrong one.
    version: Cell<u64>,
}

impl InteractionIndex {
    /// Creates the index for `n` nodes with every node dirty (nothing proven yet).
    pub(crate) fn new(n: usize) -> InteractionIndex {
        use std::sync::atomic::{AtomicU64, Ordering};
        // Disjoint per-world version ranges: each world claims a 2⁴⁰-wide window, far
        // beyond any realistic number of configuration changes.
        static NEXT_WORLD: AtomicU64 = AtomicU64::new(0);
        let base = NEXT_WORLD.fetch_add(1, Ordering::Relaxed) << 40;
        InteractionIndex {
            inner: RefCell::new(IndexState {
                dirty: vec![true; n],
                queue: (0..n as u32).map(NodeId::new).collect(),
                candidate: None,
                quiescent: false,
                stats: IndexStats::default(),
            }),
            version: Cell::new(base),
        }
    }

    /// The current configuration version.
    pub(crate) fn version(&self) -> u64 {
        self.version.get()
    }

    /// Records an observable world change (invalidates samplers' caches).
    pub(crate) fn bump_version(&self) {
        self.version.set(self.version.get() + 1);
    }

    /// Marks a node dirty: some pair involving it may have become effective.
    pub(crate) fn mark_dirty(&self, node: NodeId) {
        let mut state = self.inner.borrow_mut();
        state.stats.dirty_marks += 1;
        state.quiescent = false;
        if !state.dirty[node.index()] {
            state.dirty[node.index()] = true;
            state.queue.push(node);
        }
    }

    /// Exclusive access to the drain state for the scan loop in `World`.
    pub(crate) fn lock(&self) -> RefMut<'_, IndexState> {
        self.inner.borrow_mut()
    }

    /// A snapshot of the work counters.
    pub(crate) fn stats(&self) -> IndexStats {
        self.inner.borrow().stats
    }
}

// ===========================================================================
// The incremental permissible-pair index (PR 2)
// ===========================================================================
//
// While the dirty-frontier index above answers "does *some* effective pair exist?",
// the batched sampler ([`crate::SamplingMode::Batched`]) needs the exact *counts* of
// permissible and effective pairs of a frozen configuration — and the ability to draw
// uniformly from either set — without re-enumerating `O(n²·ports²)` candidates per
// configuration version. The [`PairIndex`] below maintains those counts in `O(changed)`
// per world delta, fed from the same delta stream that feeds the dirty frontier (state
// writes, bond flips, merges, splits).
//
// # Decomposition
//
// The permissible set splits into classes whose sizes are maintainable exactly:
//
// 1. **Intra-component pairs** (bonded, or facing-adjacent in the same component):
//    purely local — whether `(x, pa)` participates depends only on `x`'s links and the
//    occupancy of the single cell its port faces. Stored per node-port with canonical
//    de-duplication; a delta re-derives the entries of the touched nodes in `O(ports)`.
// 2. **Multi-component node × free singleton**: a port of a node in a ≥2-node component
//    whose facing cell is unoccupied accepts *any* free singleton through *any* of its
//    ports (singletons are arbitrarily rotatable and have no other cells to collide),
//    so these pairs are counted as `free_ports · ports · singletons` without being
//    materialised. Effectiveness only depends on the two states and the two ports, so
//    grouping singletons (and free ports) by *state class* turns the effective count
//    into a small sum over class pairs, memoised per `(class, port, class, port)`.
// 3. **Singleton × singleton**: always permissible (any ports, a rotation always
//    exists, nothing can collide), counted as `ports² · C(s, 2)`; effectiveness again
//    via the class memo.
// 4. **Multi × multi cross-component pairs**: the only class whose permissibility
//    depends on non-local geometry (collision between two rigid shapes). These are
//    *not* maintained incrementally — [`crate::World::enumerate_cross_multi`]
//    enumerates them per frozen version under a budget, and the caller falls back to
//    rejection sampling when the budget is exceeded. In the growth workloads this PR
//    optimises (one growing component absorbing free nodes) this class is empty.
//
// Exactness of the merge case is worth spelling out: when a component grows, pairs
// anchored at its *unmoved* members can silently lose permissibility (the new cells
// block previously valid placements), which is why class 4 cannot ride the dirty
// stream. Classes 1–3 are immune: intra adjacency is rigid under merges, and the
// singleton classes only depend on the facing cell of one port — the world marks the
// neighbours of every newly inserted cell as touched, which is exactly the set whose
// free-port flags can flip.
//
// The pre-existing full enumeration ([`crate::World::enumerate_permissible`]) is kept
// as the validation oracle; [`crate::World::validate_pair_index`] compares counts and
// effective sets after arbitrary delta sequences.

/// Hard cap on simultaneously *live* state classes. Protocols whose live state
/// diversity exceeds this (e.g. universal TM constructors) overflow the index, which
/// permanently falls back to the adaptive sampler — a soundness valve, not an error.
const CLASS_CAP: usize = 64;

/// Sentinel for "not a member" positions.
const NONE: u32 = u32::MAX;

/// Packs an unordered node-port pair into a canonical `u64` key.
pub(crate) fn pair_key(a: NodeId, pa: Dir, b: NodeId, pb: Dir) -> u64 {
    // Node ids get 24 bits each; beyond that the keys would alias silently.
    debug_assert!(
        a.index() < (1 << 24) && b.index() < (1 << 24),
        "pair keys support at most 2^24 nodes"
    );
    let (lo, hi) = if (a.index(), pa.index()) <= (b.index(), pb.index()) {
        ((a, pa), (b, pb))
    } else {
        ((b, pb), (a, pa))
    };
    ((lo.0.index() as u64) << 40)
        | ((lo.1.index() as u64) << 32)
        | ((hi.0.index() as u64) << 8)
        | hi.1.index() as u64
}

fn unpack_key(key: u64) -> (NodeId, Dir, NodeId, Dir) {
    (
        NodeId::new(((key >> 40) & 0xFF_FFFF) as u32),
        Dir::from_index(((key >> 32) & 0xFF) as usize),
        NodeId::new(((key >> 8) & 0xFF_FFFF) as u32),
        Dir::from_index((key & 0xFF) as usize),
    )
}

/// A set of canonical pair keys supporting O(1) insert, remove and uniform indexing.
#[derive(Default)]
pub(crate) struct PairList {
    items: Vec<u64>,
    pos: HashMap<u64, u32, DeterministicState>,
}

impl PairList {
    pub(crate) fn len(&self) -> usize {
        self.items.len()
    }

    pub(crate) fn get(&self, i: usize) -> u64 {
        self.items[i]
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.items.iter().copied()
    }

    /// Inserts a key; returns whether it was new.
    pub(crate) fn insert(&mut self, key: u64) -> bool {
        if self.pos.contains_key(&key) {
            return false;
        }
        self.pos.insert(key, self.items.len() as u32);
        self.items.push(key);
        true
    }

    /// Removes a key (swap-remove); returns whether it was present.
    pub(crate) fn remove(&mut self, key: u64) -> bool {
        let Some(at) = self.pos.remove(&key) else {
            return false;
        };
        let last = self.items.pop().expect("pos implies non-empty");
        if last != key {
            self.items[at as usize] = last;
            self.pos.insert(last, at);
        }
        true
    }

    fn clear(&mut self) {
        self.items.clear();
        self.pos.clear();
    }
}

/// A read-only view of the world geometry the pair index derives its entries from.
/// Bundled so the index can live beside the `World` fields it reads without borrow
/// conflicts.
pub(crate) struct GeomView<'a, S> {
    pub(crate) dim: Dim,
    pub(crate) states: &'a [S],
    pub(crate) halted: &'a [bool],
    pub(crate) comp_of: &'a [usize],
    pub(crate) components: &'a [Option<Component>],
    pub(crate) placements: &'a [Placement],
    pub(crate) links: &'a [[Option<(NodeId, Dir)>; 6]],
}

impl<S> GeomView<'_, S> {
    fn comp(&self, x: NodeId) -> &Component {
        self.components[self.comp_of[x.index()]]
            .as_ref()
            .expect("component slot of a live node must be occupied")
    }

    fn is_singleton(&self, x: NodeId) -> bool {
        self.comp(x).len() == 1
    }

    /// Whether the cell faced by `x`'s port `pa` is unoccupied in `x`'s component.
    fn port_free(&self, x: NodeId, pa: Dir) -> bool {
        let pl = self.placements[x.index()];
        let target = pl.pos + pl.rot.apply_dir(pa).unit();
        !self.comp(x).is_occupied(target)
    }

    /// The intra-component pair `x`'s port `pa` currently participates in, if any:
    /// the bonded peer, or the same-component node whose facing cell it touches.
    fn intra_entry_at(&self, x: NodeId, pa: Dir) -> Option<IntraEntry> {
        if let Some((peer, pport)) = self.links[x.index()][pa.index()] {
            return Some(IntraEntry {
                peer,
                pport,
                bonded: true,
            });
        }
        let pl = self.placements[x.index()];
        let facing = pl.rot.apply_dir(pa);
        let target = pl.pos + facing.unit();
        let peer = self.comp(x).node_at(target)?;
        let pport = self.placements[peer.index()]
            .rot
            .inverse()
            .apply_dir(facing.opposite());
        Some(IntraEntry {
            peer,
            pport,
            bonded: false,
        })
    }
}

/// One intra-component pair as seen from one of its endpoints.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct IntraEntry {
    peer: NodeId,
    pport: Dir,
    bonded: bool,
}

/// A live state class: all bookkeeping grouped by protocol state.
struct ClassSlot<S> {
    state: S,
    halted: bool,
    /// Number of nodes registered with this class (frees the slot at zero).
    refs: u32,
    /// The free singleton nodes currently in this state.
    singletons: Vec<NodeId>,
    /// Per port: the multi-component nodes in this state whose port faces a free cell.
    free_ports: [Vec<NodeId>; 6],
}

/// Exact base counts of the frozen configuration, excluding multi×multi cross pairs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct BaseCounts {
    /// Permissible pairs in classes 1–3 of the decomposition.
    pub(crate) permissible: u64,
    /// Effective pairs in classes 1–3.
    pub(crate) effective: u64,
}

/// The incremental permissible-pair index. See the section comment above for the
/// decomposition and the exactness argument.
pub(crate) struct PairIndex<S> {
    /// Class id each node is registered under (`NONE` before `build`).
    node_class: Vec<u32>,
    /// Whether the node is registered as a free singleton.
    reg_singleton: Vec<bool>,
    /// Position of the node in its class singleton list (`NONE` when not a singleton).
    singleton_pos: Vec<u32>,
    /// Position of the node in the flat singleton list.
    singleton_flat_pos: Vec<u32>,
    /// Per node-port: position in the class free-port bucket (`NONE` when not free).
    free_bucket_pos: Vec<[u32; 6]>,
    /// Per node-port: position in the flat free-port list.
    free_flat_pos: Vec<[u32; 6]>,
    /// Per node-port: the intra-component pair the port participates in.
    intra: Vec<[Option<IntraEntry>; 6]>,
    classes: Vec<Option<ClassSlot<S>>>,
    free_class_slots: Vec<u32>,
    live_classes: usize,
    /// All free singletons (flat, for uniform draws).
    singletons_flat: Vec<NodeId>,
    /// All free ports of multi-component nodes (flat, for uniform draws).
    free_flat: Vec<(NodeId, Dir)>,
    /// All intra pairs, canonical keys.
    intra_list: PairList,
    /// The effective subset of `intra_list`.
    intra_eff: PairList,
    /// Effectiveness memo per `(class, port, class, port)` for unbonded cross pairs.
    memo: HashMap<u64, bool, DeterministicState>,
}

/// Raised when the live class count exceeds [`CLASS_CAP`]; the world then abandons the
/// index for the rest of the execution.
pub(crate) struct ClassOverflow;

impl<S: Clone + PartialEq> PairIndex<S> {
    pub(crate) fn new() -> PairIndex<S> {
        PairIndex {
            node_class: Vec::new(),
            reg_singleton: Vec::new(),
            singleton_pos: Vec::new(),
            singleton_flat_pos: Vec::new(),
            free_bucket_pos: Vec::new(),
            free_flat_pos: Vec::new(),
            intra: Vec::new(),
            classes: Vec::new(),
            free_class_slots: Vec::new(),
            live_classes: 0,
            singletons_flat: Vec::new(),
            free_flat: Vec::new(),
            intra_list: PairList::default(),
            intra_eff: PairList::default(),
            memo: HashMap::default(),
        }
    }

    /// Builds the index from scratch for the current configuration.
    pub(crate) fn build<P: Protocol<State = S>>(
        &mut self,
        view: &GeomView<'_, S>,
        protocol: &P,
    ) -> Result<(), ClassOverflow> {
        let n = view.states.len();
        self.node_class = vec![NONE; n];
        self.reg_singleton = vec![false; n];
        self.singleton_pos = vec![NONE; n];
        self.singleton_flat_pos = vec![NONE; n];
        self.free_bucket_pos = vec![[NONE; 6]; n];
        self.free_flat_pos = vec![[NONE; 6]; n];
        self.intra = vec![[None; 6]; n];
        self.classes.clear();
        self.free_class_slots.clear();
        self.live_classes = 0;
        self.singletons_flat.clear();
        self.free_flat.clear();
        self.intra_list.clear();
        self.intra_eff.clear();
        self.memo.clear();
        for i in 0..n {
            self.reindex(view, protocol, NodeId::new(i as u32))?;
        }
        Ok(())
    }

    /// Drops every registration (after an overflow: the index stays unusable).
    pub(crate) fn clear(&mut self) {
        *self = PairIndex::new();
    }

    /// Number of free singleton nodes (= singleton components).
    pub(crate) fn singleton_count(&self) -> usize {
        self.singletons_flat.len()
    }

    fn class_for(&mut self, state: &S, halted: bool) -> Result<u32, ClassOverflow> {
        for (id, slot) in self.classes.iter().enumerate() {
            if let Some(slot) = slot {
                if slot.state == *state {
                    return Ok(id as u32);
                }
            }
        }
        if self.live_classes == CLASS_CAP {
            return Err(ClassOverflow);
        }
        self.live_classes += 1;
        let slot = ClassSlot {
            state: state.clone(),
            halted,
            refs: 0,
            singletons: Vec::new(),
            free_ports: std::array::from_fn(|_| Vec::new()),
        };
        if let Some(id) = self.free_class_slots.pop() {
            self.classes[id as usize] = Some(slot);
            Ok(id)
        } else {
            self.classes.push(Some(slot));
            Ok(self.classes.len() as u32 - 1)
        }
    }

    fn release_class(&mut self, id: u32) {
        let slot = self.classes[id as usize]
            .as_mut()
            .expect("released class must be live");
        slot.refs -= 1;
        if slot.refs == 0 {
            debug_assert!(slot.singletons.is_empty());
            debug_assert!(slot.free_ports.iter().all(Vec::is_empty));
            self.classes[id as usize] = None;
            self.free_class_slots.push(id);
            self.live_classes -= 1;
            // Memo entries referencing a retired class id would alias its successor.
            self.memo.retain(|&key, _| {
                (key >> 40) as u32 != id && ((key >> 8) & 0xFF_FFFF) as u32 != id
            });
        }
    }

    fn class(&self, id: u32) -> &ClassSlot<S> {
        self.classes[id as usize]
            .as_ref()
            .expect("class id must be live")
    }

    fn class_mut(&mut self, id: u32) -> &mut ClassSlot<S> {
        self.classes[id as usize]
            .as_mut()
            .expect("class id must be live")
    }

    fn drop_singleton_reg(&mut self, x: NodeId) {
        if !self.reg_singleton[x.index()] {
            return;
        }
        self.reg_singleton[x.index()] = false;
        let class = self.node_class[x.index()];
        let at = self.singleton_pos[x.index()] as usize;
        self.singleton_pos[x.index()] = NONE;
        let slot = self.class_mut(class);
        let last = slot.singletons.pop().expect("registered singleton");
        if last != x {
            slot.singletons[at] = last;
            self.singleton_pos[last.index()] = at as u32;
        }
        let at = self.singleton_flat_pos[x.index()] as usize;
        self.singleton_flat_pos[x.index()] = NONE;
        let last = self.singletons_flat.pop().expect("registered singleton");
        if last != x {
            self.singletons_flat[at] = last;
            self.singleton_flat_pos[last.index()] = at as u32;
        }
    }

    fn drop_free_port_reg(&mut self, x: NodeId, pa: Dir) {
        let at = self.free_bucket_pos[x.index()][pa.index()];
        if at == NONE {
            return;
        }
        self.free_bucket_pos[x.index()][pa.index()] = NONE;
        let class = self.node_class[x.index()];
        let bucket = &mut self.class_mut(class).free_ports[pa.index()];
        let last = bucket.pop().expect("registered free port");
        if last != x {
            bucket[at as usize] = last;
            self.free_bucket_pos[last.index()][pa.index()] = at;
        }
        let at = self.free_flat_pos[x.index()][pa.index()] as usize;
        self.free_flat_pos[x.index()][pa.index()] = NONE;
        let last = self.free_flat.pop().expect("registered free port");
        if last != (x, pa) {
            self.free_flat[at] = last;
            self.free_flat_pos[last.0.index()][last.1.index()] = at as u32;
        }
    }

    /// Removes the stored intra pair anchored at `(x, pa)` from the lists and clears
    /// the mirror entry if it still points back.
    fn unlink_intra(&mut self, x: NodeId, pa: Dir, entry: IntraEntry) {
        let key = pair_key(x, pa, entry.peer, entry.pport);
        self.intra_list.remove(key);
        self.intra_eff.remove(key);
        self.intra[x.index()][pa.index()] = None;
        let mirror = &mut self.intra[entry.peer.index()][entry.pport.index()];
        if mirror.is_some_and(|m| m.peer == x && m.pport == pa) {
            *mirror = None;
        }
    }

    /// Re-derives every registration of `x` from the current geometry. Idempotent, and
    /// the only mutation entry point after `build`: the world calls it for exactly the
    /// nodes a delta may have re-classified (participants, moved nodes, split members,
    /// and the neighbours of newly inserted cells).
    pub(crate) fn reindex<P: Protocol<State = S>>(
        &mut self,
        view: &GeomView<'_, S>,
        protocol: &P,
        x: NodeId,
    ) -> Result<(), ClassOverflow> {
        let xi = x.index();
        let halted = view.halted[xi];
        let class = match self.class_for(&view.states[xi], halted) {
            Ok(class) => class,
            Err(ClassOverflow) => {
                // If `x` is the sole member of its current class, that class is about
                // to be retired anyway: retiring it first frees a slot, so protocols
                // whose *steady-state* diversity sits exactly at the cap (one node
                // churning through fresh states) do not spuriously overflow.
                let old = self.node_class[xi];
                if old == NONE || self.class(old).refs > 1 {
                    return Err(ClassOverflow);
                }
                self.drop_singleton_reg(x);
                for &pa in view.dim.dirs() {
                    self.drop_free_port_reg(x, pa);
                }
                self.node_class[xi] = NONE;
                self.release_class(old);
                self.class_for(&view.states[xi], halted)?
            }
        };
        let old_class = self.node_class[xi];
        if old_class != class {
            // Memberships are keyed by class: detach them before re-registering.
            self.drop_singleton_reg(x);
            for &pa in view.dim.dirs() {
                self.drop_free_port_reg(x, pa);
            }
            self.class_mut(class).refs += 1;
            self.node_class[xi] = class;
            if old_class != NONE {
                self.release_class(old_class);
            }
        }
        let singleton = view.is_singleton(x);
        if singleton != self.reg_singleton[xi] {
            if singleton {
                let slot = self.class_mut(class);
                let at = slot.singletons.len() as u32;
                slot.singletons.push(x);
                self.singleton_pos[xi] = at;
                self.singleton_flat_pos[xi] = self.singletons_flat.len() as u32;
                self.singletons_flat.push(x);
                self.reg_singleton[xi] = true;
            } else {
                self.drop_singleton_reg(x);
            }
        }
        for &pa in view.dim.dirs() {
            let free = !singleton && view.port_free(x, pa);
            let registered = self.free_bucket_pos[xi][pa.index()] != NONE;
            if free && !registered {
                let slot = self.class_mut(class);
                let at = slot.free_ports[pa.index()].len() as u32;
                slot.free_ports[pa.index()].push(x);
                self.free_bucket_pos[xi][pa.index()] = at;
                self.free_flat_pos[xi][pa.index()] = self.free_flat.len() as u32;
                self.free_flat.push((x, pa));
            } else if !free && registered {
                self.drop_free_port_reg(x, pa);
            }
            // Intra pair at this port.
            let desired = view.intra_entry_at(x, pa);
            let stored = self.intra[xi][pa.index()];
            if stored != desired {
                if let Some(old) = stored {
                    self.unlink_intra(x, pa, old);
                }
                if let Some(new) = desired {
                    if let Some(stale) = self.intra[new.peer.index()][new.pport.index()] {
                        if stale.peer != x || stale.pport != pa {
                            self.unlink_intra(new.peer, new.pport, stale);
                        }
                    }
                    self.intra[xi][pa.index()] = Some(new);
                    self.intra[new.peer.index()][new.pport.index()] = Some(IntraEntry {
                        peer: x,
                        pport: pa,
                        bonded: new.bonded,
                    });
                    self.intra_list.insert(pair_key(x, pa, new.peer, new.pport));
                }
            }
            if let Some(entry) = self.intra[xi][pa.index()] {
                let key = pair_key(x, pa, entry.peer, entry.pport);
                let eff = !view.halted[xi]
                    && !view.halted[entry.peer.index()]
                    && crate::world::transition_effective(
                        protocol,
                        &view.states[xi],
                        pa,
                        &view.states[entry.peer.index()],
                        entry.pport,
                        entry.bonded,
                    );
                if eff {
                    self.intra_eff.insert(key);
                } else {
                    self.intra_eff.remove(key);
                }
            }
        }
        Ok(())
    }

    /// Memoised effectiveness of an unbonded cross pair between a node of class `ca`
    /// interacting through `pa` and a node of class `cb` through `pb`.
    fn cross_effective<P: Protocol<State = S>>(
        &mut self,
        protocol: &P,
        ca: u32,
        pa: Dir,
        cb: u32,
        pb: Dir,
    ) -> bool {
        let key = (u64::from(ca) << 40)
            | ((pa.index() as u64) << 32)
            | (u64::from(cb) << 8)
            | pb.index() as u64;
        if let Some(&v) = self.memo.get(&key) {
            return v;
        }
        let a = self.class(ca);
        let b = self.class(cb);
        let v = !a.halted
            && !b.halted
            && crate::world::transition_effective(protocol, &a.state, pa, &b.state, pb, false);
        self.memo.insert(key, v);
        v
    }

    /// Live class ids in ascending order (the canonical cell-walk order).
    fn live_class_ids(&self) -> Vec<u32> {
        (0..self.classes.len() as u32)
            .filter(|&id| self.classes[id as usize].is_some())
            .collect()
    }

    /// Exact counts of the base classes (1–3) of the decomposition. `O(classes²·ports²)`.
    pub(crate) fn counts<P: Protocol<State = S>>(&mut self, protocol: &P, dim: Dim) -> BaseCounts {
        let p = dim.port_count() as u64;
        let s = self.singletons_flat.len() as u64;
        let permissible = self.intra_list.len() as u64
            + self.free_flat.len() as u64 * p * s
            + p * p * s.saturating_sub(1) * s / 2;
        let mut effective = self.intra_eff.len() as u64;
        let ids = self.live_class_ids();
        // Class 2: multi-component free ports × singletons, by class pair.
        for &ca in &ids {
            for &pa in dim.dirs() {
                let g = self.class(ca).free_ports[pa.index()].len() as u64;
                if g == 0 {
                    continue;
                }
                for &cb in &ids {
                    let sc = self.class(cb).singletons.len() as u64;
                    if sc == 0 {
                        continue;
                    }
                    for &pb in dim.dirs() {
                        if self.cross_effective(protocol, ca, pa, cb, pb) {
                            effective += g * sc;
                        }
                    }
                }
            }
        }
        // Class 3: singleton × singleton, by unordered class pair; for pairs within one
        // class the node with the smaller id takes `pa`, so each unordered interaction
        // is counted exactly once over the ordered `(pa, pb)` sweep.
        for (i, &ca) in ids.iter().enumerate() {
            let sa = self.class(ca).singletons.len() as u64;
            if sa == 0 {
                continue;
            }
            for &cb in &ids[i..] {
                let sb = self.class(cb).singletons.len() as u64;
                if sb == 0 {
                    continue;
                }
                let pairs = if ca == cb { sa * (sa - 1) / 2 } else { sa * sb };
                if pairs == 0 {
                    continue;
                }
                for &pa in dim.dirs() {
                    for &pb in dim.dirs() {
                        if self.cross_effective(protocol, ca, pa, cb, pb) {
                            effective += pairs;
                        }
                    }
                }
            }
        }
        BaseCounts {
            permissible,
            effective,
        }
    }

    /// The `idx`-th effective base pair under the same walk order as [`Self::counts`]
    /// (intra, then class 2 cells, then class 3 cells), with uniform within-cell member
    /// choice from `rng`. The result is uniform over the effective base set when `idx`
    /// is uniform over `0..counts().effective`.
    pub(crate) fn sample_effective<P: Protocol<State = S>, R: RngCore>(
        &mut self,
        protocol: &P,
        dim: Dim,
        rng: &mut R,
        mut idx: u64,
    ) -> (NodeId, Dir, NodeId, Dir) {
        if idx < self.intra_eff.len() as u64 {
            let (a, pa, b, pb) = unpack_key(self.intra_eff.get(idx as usize));
            return (a, pa, b, pb);
        }
        idx -= self.intra_eff.len() as u64;
        let ids = self.live_class_ids();
        for &ca in &ids {
            for &pa in dim.dirs() {
                let g = self.class(ca).free_ports[pa.index()].len() as u64;
                if g == 0 {
                    continue;
                }
                for &cb in &ids {
                    let sc = self.class(cb).singletons.len() as u64;
                    if sc == 0 {
                        continue;
                    }
                    for &pb in dim.dirs() {
                        if !self.cross_effective(protocol, ca, pa, cb, pb) {
                            continue;
                        }
                        let cell = g * sc;
                        if idx < cell {
                            let x =
                                self.class(ca).free_ports[pa.index()][rng.gen_range(0..g as usize)];
                            let y = self.class(cb).singletons[rng.gen_range(0..sc as usize)];
                            return (x, pa, y, pb);
                        }
                        idx -= cell;
                    }
                }
            }
        }
        for (i, &ca) in ids.iter().enumerate() {
            let sa = self.class(ca).singletons.len() as u64;
            if sa == 0 {
                continue;
            }
            for &cb in &ids[i..] {
                let sb = self.class(cb).singletons.len() as u64;
                if sb == 0 {
                    continue;
                }
                let pairs = if ca == cb { sa * (sa - 1) / 2 } else { sa * sb };
                if pairs == 0 {
                    continue;
                }
                for &pa in dim.dirs() {
                    for &pb in dim.dirs() {
                        if !self.cross_effective(protocol, ca, pa, cb, pb) {
                            continue;
                        }
                        if idx < pairs {
                            return self.pick_singleton_pair(rng, ca, cb, pa, pb);
                        }
                        idx -= pairs;
                    }
                }
            }
        }
        unreachable!("sample index exceeded the effective base count");
    }

    /// Uniformly picks a singleton pair for cell `(ca, pa, cb, pb)`; within one class
    /// the smaller node id takes `pa` (the counting convention of [`Self::counts`]).
    fn pick_singleton_pair<R: RngCore>(
        &self,
        rng: &mut R,
        ca: u32,
        cb: u32,
        pa: Dir,
        pb: Dir,
    ) -> (NodeId, Dir, NodeId, Dir) {
        if ca == cb {
            let list = &self.class(ca).singletons;
            let i = rng.gen_range(0..list.len());
            let mut j = rng.gen_range(0..list.len() - 1);
            if j >= i {
                j += 1;
            }
            let (lo, hi) = (list[i].min(list[j]), list[i].max(list[j]));
            (lo, pa, hi, pb)
        } else {
            let y = self.class(ca).singletons[rng.gen_range(0..self.class(ca).singletons.len())];
            let z = self.class(cb).singletons[rng.gen_range(0..self.class(cb).singletons.len())];
            (y, pa, z, pb)
        }
    }

    /// The `idx`-th *permissible* base pair (uniform over the base permissible set when
    /// `idx` is uniform): intra pairs, then free-port × singleton, then singleton².
    pub(crate) fn sample_permissible<R: RngCore>(
        &self,
        dim: Dim,
        rng: &mut R,
        mut idx: u64,
    ) -> (NodeId, Dir, NodeId, Dir) {
        if idx < self.intra_list.len() as u64 {
            return unpack_key(self.intra_list.get(idx as usize));
        }
        idx -= self.intra_list.len() as u64;
        let p = dim.port_count() as u64;
        let s = self.singletons_flat.len() as u64;
        let ms = self.free_flat.len() as u64 * p * s;
        if idx < ms {
            let (x, pa) = self.free_flat[(idx / (p * s)) as usize];
            let rem = idx % (p * s);
            let pb = dim.dirs()[(rem / s) as usize];
            let y = self.singletons_flat[(rem % s) as usize];
            return (x, pa, y, pb);
        }
        // Singleton × singleton: the block index only selects the block; the pair and
        // ports are drawn fresh, which is the same uniform distribution.
        let i = rng.gen_range(0..s as usize);
        let mut j = rng.gen_range(0..s as usize - 1);
        if j >= i {
            j += 1;
        }
        let (a, b) = (self.singletons_flat[i], self.singletons_flat[j]);
        let (lo, hi) = (a.min(b), a.max(b));
        let pa = dim.dirs()[rng.gen_range(0..p as usize)];
        let pb = dim.dirs()[rng.gen_range(0..p as usize)];
        (lo, pa, hi, pb)
    }

    /// Expands the full effective base set (validation oracle support; `O(E)`).
    pub(crate) fn collect_effective<P: Protocol<State = S>>(
        &mut self,
        protocol: &P,
        dim: Dim,
    ) -> Vec<u64> {
        let mut out: Vec<u64> = self.intra_eff.iter().collect();
        let ids = self.live_class_ids();
        for &ca in &ids {
            for &pa in dim.dirs() {
                if self.class(ca).free_ports[pa.index()].is_empty() {
                    continue;
                }
                for &cb in &ids {
                    if self.class(cb).singletons.is_empty() {
                        continue;
                    }
                    for &pb in dim.dirs() {
                        if !self.cross_effective(protocol, ca, pa, cb, pb) {
                            continue;
                        }
                        let xs = self.class(ca).free_ports[pa.index()].clone();
                        let ys = self.class(cb).singletons.clone();
                        for x in xs {
                            for &y in &ys {
                                out.push(pair_key(x, pa, y, pb));
                            }
                        }
                    }
                }
            }
        }
        for (i, &ca) in ids.iter().enumerate() {
            for &cb in &ids[i..] {
                for &pa in dim.dirs() {
                    for &pb in dim.dirs() {
                        if !self.cross_effective(protocol, ca, pa, cb, pb) {
                            continue;
                        }
                        let ys = self.class(ca).singletons.clone();
                        let zs = self.class(cb).singletons.clone();
                        for &y in &ys {
                            for &z in &zs {
                                // Within one class the smaller id takes `pa` (the
                                // counting convention); across classes all ordered
                                // role assignments are distinct cells already.
                                if ca == cb && y >= z {
                                    continue;
                                }
                                out.push(pair_key(y, pa, z, pb));
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_deduplicate_but_count() {
        let index = InteractionIndex::new(3);
        {
            let mut state = index.lock();
            state.queue.clear();
            state.dirty.fill(false);
            state.quiescent = true;
        }
        index.mark_dirty(NodeId::new(1));
        index.mark_dirty(NodeId::new(1));
        let state = index.lock();
        assert_eq!(state.queue, vec![NodeId::new(1)]);
        assert!(state.dirty[1] && !state.dirty[0]);
        assert!(!state.quiescent);
        assert_eq!(state.stats.dirty_marks, 2);
    }

    #[test]
    fn versions_increase() {
        let index = InteractionIndex::new(1);
        let v0 = index.version();
        index.bump_version();
        assert_eq!(index.version(), v0 + 1);
    }
}
