//! The incremental interaction index: bookkeeping that makes stability detection and
//! effective-pair lookup amortised `O(active)` instead of `O(n² · ports²)`.
//!
//! # Design
//!
//! A pair of node-ports can only *become* effective when something about one of its
//! endpoints changes: a state, the bond between the two ports, or the geometry of an
//! endpoint's component. [`crate::World::apply`] translates every delta it produces into
//! *dirty* marks on exactly the nodes whose pairs may have become effective:
//!
//! * a state change or a bond flip marks the two participants;
//! * a merge marks every *moved* node (the members of the absorbed component — the
//!   surviving component's cells only gain neighbours, which can remove permissible
//!   pairs but never create effective ones);
//! * a split marks every member of the pre-split component (both halves shrink, which
//!   can unlock merge placements for all of them).
//!
//! A stability query drains the dirty queue: each dirty node is scanned against the whole
//! population; a node is cleaned only when its scan finds nothing. Because every
//! effective pair must keep at least one dirty endpoint (or be the cached candidate from
//! a previous scan), an empty queue with no valid candidate proves stability. Each dirty
//! mark is therefore paid for **once**, regardless of how often stability is queried —
//! which is what lets [`crate::Simulation::run_until_stable`] check for stability after
//! every step and stop exactly at stabilisation.
//!
//! The index lives behind a [`RefCell`] so that read-only queries
//! ([`crate::World::is_stable`] takes `&self`) can update the memoisation. As a
//! consequence `World` is not `Sync`; see the ROADMAP's sharding item for the plan to
//! replace this with per-shard indices.

use crate::{Interaction, NodeId};
use std::cell::{Cell, RefCell, RefMut};

/// Counters describing how much work the index has done (and saved).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Nodes marked dirty since creation (includes re-marks of already-dirty nodes).
    pub dirty_marks: u64,
    /// Full per-node scans performed while draining the dirty queue.
    pub node_scans: u64,
    /// Queries answered by revalidating the cached candidate interaction.
    pub candidate_hits: u64,
    /// Queries answered immediately by the quiescent flag (configuration known stable).
    pub quiescent_hits: u64,
}

/// The mutable part of the index (see the module docs for the invariant).
pub(crate) struct IndexState {
    /// Per-node dirty flag; `true` iff the node is in `queue`.
    pub(crate) dirty: Vec<bool>,
    /// Nodes whose pairs must be rescanned before stability can be concluded.
    pub(crate) queue: Vec<NodeId>,
    /// The most recently found effective interaction; revalidated in `O(1)` before any
    /// scan work happens.
    pub(crate) candidate: Option<Interaction>,
    /// `true` once a drain proved that no effective pair exists; reset by any dirty mark.
    pub(crate) quiescent: bool,
    /// Work counters.
    pub(crate) stats: IndexStats,
}

/// Interior-mutable wrapper so `&World` queries can memoise their progress.
pub(crate) struct InteractionIndex {
    inner: RefCell<IndexState>,
    /// Monotonically increasing configuration version: bumped on every observable world
    /// change so that samplers can cache derived structures (e.g. the enumerated
    /// permissible set) and invalidate them precisely. The version starts at a
    /// process-unique value (see `new`), so versions from two different worlds never
    /// collide — a scheduler driven against several worlds cannot replay a cached
    /// structure into the wrong one.
    version: Cell<u64>,
}

impl InteractionIndex {
    /// Creates the index for `n` nodes with every node dirty (nothing proven yet).
    pub(crate) fn new(n: usize) -> InteractionIndex {
        use std::sync::atomic::{AtomicU64, Ordering};
        // Disjoint per-world version ranges: each world claims a 2⁴⁰-wide window, far
        // beyond any realistic number of configuration changes.
        static NEXT_WORLD: AtomicU64 = AtomicU64::new(0);
        let base = NEXT_WORLD.fetch_add(1, Ordering::Relaxed) << 40;
        InteractionIndex {
            inner: RefCell::new(IndexState {
                dirty: vec![true; n],
                queue: (0..n as u32).map(NodeId::new).collect(),
                candidate: None,
                quiescent: false,
                stats: IndexStats::default(),
            }),
            version: Cell::new(base),
        }
    }

    /// The current configuration version.
    pub(crate) fn version(&self) -> u64 {
        self.version.get()
    }

    /// Records an observable world change (invalidates samplers' caches).
    pub(crate) fn bump_version(&self) {
        self.version.set(self.version.get() + 1);
    }

    /// Marks a node dirty: some pair involving it may have become effective.
    pub(crate) fn mark_dirty(&self, node: NodeId) {
        let mut state = self.inner.borrow_mut();
        state.stats.dirty_marks += 1;
        state.quiescent = false;
        if !state.dirty[node.index()] {
            state.dirty[node.index()] = true;
            state.queue.push(node);
        }
    }

    /// Exclusive access to the drain state for the scan loop in `World`.
    pub(crate) fn lock(&self) -> RefMut<'_, IndexState> {
        self.inner.borrow_mut()
    }

    /// A snapshot of the work counters.
    pub(crate) fn stats(&self) -> IndexStats {
        self.inner.borrow().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_deduplicate_but_count() {
        let index = InteractionIndex::new(3);
        {
            let mut state = index.lock();
            state.queue.clear();
            state.dirty.fill(false);
            state.quiescent = true;
        }
        index.mark_dirty(NodeId::new(1));
        index.mark_dirty(NodeId::new(1));
        let state = index.lock();
        assert_eq!(state.queue, vec![NodeId::new(1)]);
        assert!(state.dirty[1] && !state.dirty[0]);
        assert!(!state.quiescent);
        assert_eq!(state.stats.dirty_marks, 2);
    }

    #[test]
    fn versions_increase() {
        let index = InteractionIndex::new(1);
        let v0 = index.version();
        index.bump_version();
        assert_eq!(index.version(), v0 + 1);
    }
}
