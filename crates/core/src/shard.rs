//! Node sharding: the partition of the population into contiguous id ranges that the
//! sharded runtime structures (dirty frontier, permissible-pair sub-indices, pending
//! queues) are sliced by.
//!
//! # Why contiguous ranges
//!
//! The parallel-equivalence guarantee of the sharded runtime — same seed ⇒ identical
//! execution for 1, 2 or 4 shards — rests on every sampler-visible ordering being a
//! function of the *configuration only*, never of the shard layout. Contiguous ranges
//! make that composition trivial: every per-shard structure keeps its entries sorted by
//! node id (or by canonical pair key, whose high bits are the smaller node id), so the
//! concatenation of the per-shard structures **in shard order is the global sorted
//! order**, independent of how many shards the ids were cut into. A hash-based
//! assignment would interleave ids across shards and break exactly this property.
//!
//! The shard count is an execution-layout knob, not a semantic one: it controls how
//! index maintenance is sliced (and, through the vendored `rayon` stand-in, how many
//! tasks the maintenance fans out to), while the sampled trajectory stays byte-identical
//! across shard counts.

use crate::NodeId;
use std::ops::Range;
use std::sync::OnceLock;

/// Name of the environment variable providing the default shard count. CI runs the
/// whole test suite under `NC_SHARDS=1` and `NC_SHARDS=4` so every equivalence test
/// also exercises the sharded layout.
pub const SHARDS_ENV: &str = "NC_SHARDS";

/// The default shard count: `NC_SHARDS` when set to a positive integer, 1 otherwise.
/// Read once per process — the layout of existing worlds must not change mid-run.
#[must_use]
pub fn default_shard_count() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var(SHARDS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&s| s >= 1)
            .unwrap_or(1)
    })
}

/// Name of the environment variable providing the default speculation window (the
/// number `k` of interactions each speculative epoch executes optimistically ahead
/// of the serialization point). CI adds an `NC_SHARDS=4 NC_SPECULATION=8` row to the
/// test matrix so every suite also runs under speculative execution.
pub const SPECULATION_ENV: &str = "NC_SPECULATION";

/// Hard ceiling on the speculation window: predictions beyond it are almost always
/// rolled back (the frozen-count predictions decay with depth), so larger windows
/// only buy rollback work.
pub const MAX_SPECULATION_WINDOW: usize = 64;

/// Clamps a requested speculation window to `0..=MAX_SPECULATION_WINDOW` — the
/// window analogue of the `1..=n` shard clamp. `0` is valid and disables
/// speculation (the scheduler then behaves exactly like `SamplingMode::Sharded`).
#[must_use]
pub fn clamp_speculation_window(k: usize) -> usize {
    k.min(MAX_SPECULATION_WINDOW)
}

/// The default speculation window: `NC_SPECULATION` when set to a non-negative
/// integer (clamped to the window ceiling), 8 otherwise. Read once per process,
/// like [`default_shard_count`].
#[must_use]
pub fn default_speculation_window() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var(SPECULATION_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map_or(8, clamp_speculation_window)
    })
}

/// The partition of `0..n` into `shards` contiguous ranges of (up to) `⌈n/shards⌉`
/// node ids each.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct ShardMap {
    n: u32,
    shards: u32,
    chunk: u32,
}

impl ShardMap {
    /// Creates the partition; the shard count is clamped to `1..=n`.
    pub(crate) fn new(n: usize, shards: usize) -> ShardMap {
        let n = n.max(1) as u32;
        let shards = shards.clamp(1, n as usize) as u32;
        ShardMap {
            n,
            shards,
            chunk: n.div_ceil(shards),
        }
    }

    /// Number of shards.
    pub(crate) fn count(self) -> usize {
        self.shards as usize
    }

    /// The shard owning `node`.
    pub(crate) fn shard_of(self, node: NodeId) -> usize {
        (node.index() as u32 / self.chunk) as usize
    }

    /// The id range owned by shard `s` (possibly empty for trailing shards when
    /// `n < shards · chunk`).
    pub(crate) fn range(self, s: usize) -> Range<usize> {
        let lo = (s as u32 * self.chunk).min(self.n) as usize;
        let hi = ((s as u32 + 1) * self.chunk).min(self.n) as usize;
        lo..hi
    }
}

/// Minimum number of queued re-derivations before a flush fans the geometry derivation
/// out to one task per shard. Below it the scoped-thread spawn overhead of the vendored
/// pool dominates; per-interaction flushes (a handful of touched nodes) always stay
/// sequential.
pub(crate) const PARALLEL_FLUSH_MIN: usize = 512;

/// Minimum multi×multi cross-component candidate universe (in node pairs) before the
/// per-version enumeration fans out across component pairs.
pub(crate) const PARALLEL_CROSS_MIN: u64 = 8_192;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_partition_the_population() {
        for n in [1usize, 2, 5, 8, 10, 64, 65] {
            for shards in [1usize, 2, 3, 4, 7, 100] {
                let map = ShardMap::new(n, shards);
                let mut covered = 0;
                for s in 0..map.count() {
                    let range = map.range(s);
                    assert_eq!(range.start, covered, "n={n} shards={shards} s={s}");
                    covered = range.end;
                    for i in range {
                        assert_eq!(map.shard_of(NodeId::new(i as u32)), s);
                    }
                }
                assert_eq!(covered, n, "n={n} shards={shards}");
            }
        }
    }

    #[test]
    fn shard_count_is_clamped_to_the_population() {
        assert_eq!(ShardMap::new(3, 100).count(), 3);
        assert_eq!(ShardMap::new(3, 0).count(), 1);
    }

    #[test]
    fn speculation_window_is_clamped() {
        assert_eq!(clamp_speculation_window(0), 0);
        assert_eq!(clamp_speculation_window(8), 8);
        assert_eq!(
            clamp_speculation_window(MAX_SPECULATION_WINDOW),
            MAX_SPECULATION_WINDOW
        );
        assert_eq!(clamp_speculation_window(usize::MAX), MAX_SPECULATION_WINDOW);
    }

    #[test]
    fn contiguity_means_shard_order_is_id_order() {
        let map = ShardMap::new(100, 4);
        let mut last = None;
        for s in 0..map.count() {
            for i in map.range(s) {
                assert!(Some(i) > last);
                last = Some(i);
            }
        }
    }
}
