//! Node sharding: the partition of the population into contiguous id ranges that the
//! sharded runtime structures (dirty frontier, permissible-pair sub-indices, pending
//! queues) are sliced by.
//!
//! # Why contiguous ranges
//!
//! The parallel-equivalence guarantee of the sharded runtime — same seed ⇒ identical
//! execution for 1, 2 or 4 shards — rests on every sampler-visible ordering being a
//! function of the *configuration only*, never of the shard layout. Contiguous ranges
//! make that composition trivial: every per-shard structure keeps its entries sorted by
//! node id (or by canonical pair key, whose high bits are the smaller node id), so the
//! concatenation of the per-shard structures **in shard order is the global sorted
//! order**, independent of how many shards the ids were cut into. A hash-based
//! assignment would interleave ids across shards and break exactly this property.
//!
//! The shard count is an execution-layout knob, not a semantic one: it controls how
//! index maintenance is sliced (and, through the vendored `rayon` stand-in, how many
//! tasks the maintenance fans out to), while the sampled trajectory stays byte-identical
//! across shard counts.

use crate::NodeId;
use std::ops::Range;
use std::sync::OnceLock;

/// Name of the environment variable providing the default shard count. CI runs the
/// whole test suite under `NC_SHARDS=1` and `NC_SHARDS=4` so every equivalence test
/// also exercises the sharded layout.
pub const SHARDS_ENV: &str = "NC_SHARDS";

/// Fallback shard count when `NC_SHARDS` is unset or unusable.
const SHARDS_FALLBACK: usize = 1;

/// Parses a raw `NC_SHARDS` value: a positive integer after trimming whitespace.
/// `None` for everything else — empty strings, garbage, zero, and values that
/// overflow `usize` (which fail to parse) all fall back to the default.
pub(crate) fn parse_shard_override(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().filter(|&s| s >= 1)
}

/// Parses a raw `NC_SPECULATION` value: a non-negative integer after trimming
/// whitespace, clamped to the window ceiling. `None` for empty, garbage, and
/// overflowing values.
pub(crate) fn parse_speculation_override(raw: &str) -> Option<usize> {
    raw.trim()
        .parse::<usize>()
        .ok()
        .map(clamp_speculation_window)
}

/// Resolves an environment override through `parse`, warning exactly once on stderr
/// (naming the rejected value and the fallback) when the variable is set but
/// unusable. The callers cache the result in a process-wide `OnceLock`, which is
/// what bounds the warning to once per variable per process.
fn resolve_env(name: &str, fallback: usize, parse: fn(&str) -> Option<usize>) -> usize {
    let raw = match std::env::var(name) {
        Ok(raw) => raw,
        Err(std::env::VarError::NotPresent) => return fallback,
        Err(std::env::VarError::NotUnicode(raw)) => {
            eprintln!(
                "warning: {name}={raw:?} is not valid unicode; falling back to {name}={fallback}"
            );
            return fallback;
        }
    };
    match parse(&raw) {
        Some(value) => value,
        None => {
            eprintln!(
                "warning: rejecting {name}={raw:?} (not a usable non-negative integer); \
                 falling back to {name}={fallback}"
            );
            fallback
        }
    }
}

/// The default shard count: `NC_SHARDS` when set to a positive integer, 1 otherwise
/// (with a single stderr warning when the variable is set but malformed).
/// Read once per process — the layout of existing worlds must not change mid-run.
#[must_use]
pub fn default_shard_count() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| resolve_env(SHARDS_ENV, SHARDS_FALLBACK, parse_shard_override))
}

/// Name of the environment variable providing the default speculation window (the
/// number `k` of interactions each speculative epoch executes optimistically ahead
/// of the serialization point). CI adds an `NC_SHARDS=4 NC_SPECULATION=8` row to the
/// test matrix so every suite also runs under speculative execution.
pub const SPECULATION_ENV: &str = "NC_SPECULATION";

/// Hard ceiling on the speculation window: predictions beyond it are almost always
/// rolled back (the frozen-count predictions decay with depth), so larger windows
/// only buy rollback work.
pub const MAX_SPECULATION_WINDOW: usize = 64;

/// Clamps a requested speculation window to `0..=MAX_SPECULATION_WINDOW` — the
/// window analogue of the `1..=n` shard clamp. `0` is valid and disables
/// speculation (the scheduler then behaves exactly like `SamplingMode::Sharded`).
#[must_use]
pub fn clamp_speculation_window(k: usize) -> usize {
    k.min(MAX_SPECULATION_WINDOW)
}

/// Fallback speculation window when `NC_SPECULATION` is unset or unusable.
const SPECULATION_FALLBACK: usize = 8;

/// The default speculation window: `NC_SPECULATION` when set to a non-negative
/// integer (clamped to the window ceiling), 8 otherwise (with a single stderr
/// warning when the variable is set but malformed). Read once per process, like
/// [`default_shard_count`].
#[must_use]
pub fn default_speculation_window() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        resolve_env(
            SPECULATION_ENV,
            SPECULATION_FALLBACK,
            parse_speculation_override,
        )
    })
}

/// The partition of `0..n` into `shards` contiguous ranges of (up to) `⌈n/shards⌉`
/// node ids each.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct ShardMap {
    n: u32,
    shards: u32,
    chunk: u32,
}

impl ShardMap {
    /// Creates the partition; the shard count is clamped to `1..=n`.
    pub(crate) fn new(n: usize, shards: usize) -> ShardMap {
        let n = n.max(1) as u32;
        let shards = shards.clamp(1, n as usize) as u32;
        ShardMap {
            n,
            shards,
            chunk: n.div_ceil(shards),
        }
    }

    /// Number of shards.
    pub(crate) fn count(self) -> usize {
        self.shards as usize
    }

    /// The shard owning `node`.
    pub(crate) fn shard_of(self, node: NodeId) -> usize {
        (node.index() as u32 / self.chunk) as usize
    }

    /// The id range owned by shard `s` (possibly empty for trailing shards when
    /// `n < shards · chunk`).
    pub(crate) fn range(self, s: usize) -> Range<usize> {
        let lo = (s as u32 * self.chunk).min(self.n) as usize;
        let hi = ((s as u32 + 1) * self.chunk).min(self.n) as usize;
        lo..hi
    }
}

/// Number of canonical trace lanes (see [`trace_lane`]).
pub const TRACE_LANES: usize = 4;

/// The canonical trace lane of a node: the shard it would belong to under a fixed
/// [`TRACE_LANES`]-way partition of `0..n`, regardless of the runtime shard count.
///
/// Step-indexed trace events are stamped with this lane rather than the owning
/// runtime shard. The runtime shard of a node is a function of `NC_SHARDS`, so
/// stamping it would make traces differ between shard counts even though the
/// executed trajectory is byte-identical; the canonical lane is a function of
/// `(node, n)` only, which is what lets the `trace_export --smoke` gate byte-compare
/// traces across `NC_SHARDS=1` and `4`.
#[must_use]
pub fn trace_lane(node: NodeId, n: usize) -> u32 {
    ShardMap::new(n, TRACE_LANES).shard_of(node) as u32
}

/// Minimum number of queued re-derivations before a flush fans the geometry derivation
/// out to one task per shard. Below it the scoped-thread spawn overhead of the vendored
/// pool dominates; per-interaction flushes (a handful of touched nodes) always stay
/// sequential.
pub(crate) const PARALLEL_FLUSH_MIN: usize = 512;

/// Minimum multi×multi cross-component candidate universe (in node pairs) before the
/// per-version enumeration fans out across component pairs.
pub(crate) const PARALLEL_CROSS_MIN: u64 = 8_192;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_partition_the_population() {
        for n in [1usize, 2, 5, 8, 10, 64, 65] {
            for shards in [1usize, 2, 3, 4, 7, 100] {
                let map = ShardMap::new(n, shards);
                let mut covered = 0;
                for s in 0..map.count() {
                    let range = map.range(s);
                    assert_eq!(range.start, covered, "n={n} shards={shards} s={s}");
                    covered = range.end;
                    for i in range {
                        assert_eq!(map.shard_of(NodeId::new(i as u32)), s);
                    }
                }
                assert_eq!(covered, n, "n={n} shards={shards}");
            }
        }
    }

    #[test]
    fn shard_count_is_clamped_to_the_population() {
        assert_eq!(ShardMap::new(3, 100).count(), 3);
        assert_eq!(ShardMap::new(3, 0).count(), 1);
    }

    #[test]
    fn speculation_window_is_clamped() {
        assert_eq!(clamp_speculation_window(0), 0);
        assert_eq!(clamp_speculation_window(8), 8);
        assert_eq!(
            clamp_speculation_window(MAX_SPECULATION_WINDOW),
            MAX_SPECULATION_WINDOW
        );
        assert_eq!(clamp_speculation_window(usize::MAX), MAX_SPECULATION_WINDOW);
    }

    #[test]
    fn shard_override_parsing_rejects_malformed_values() {
        // Usable values, with surrounding whitespace tolerated.
        assert_eq!(parse_shard_override("1"), Some(1));
        assert_eq!(parse_shard_override(" 4\n"), Some(4));
        // Empty and whitespace-only.
        assert_eq!(parse_shard_override(""), None);
        assert_eq!(parse_shard_override("   "), None);
        // Garbage, signs, and embedded junk.
        assert_eq!(parse_shard_override("four"), None);
        assert_eq!(parse_shard_override("-2"), None);
        // A leading `+` is accepted by the standard integer parser.
        assert_eq!(parse_shard_override("+2"), Some(2));
        assert_eq!(parse_shard_override("4 shards"), None);
        assert_eq!(parse_shard_override("0x4"), None);
        // Zero shards is meaningless.
        assert_eq!(parse_shard_override("0"), None);
        // Values overflowing `usize` fail to parse rather than wrap.
        assert_eq!(parse_shard_override("123456789012345678901234567890"), None);
    }

    #[test]
    fn speculation_override_parsing_rejects_malformed_and_clamps_large_values() {
        assert_eq!(parse_speculation_override("0"), Some(0));
        assert_eq!(parse_speculation_override(" 8 "), Some(8));
        // In-range values pass through; huge-but-parseable ones hit the ceiling.
        assert_eq!(
            parse_speculation_override("1000"),
            Some(MAX_SPECULATION_WINDOW)
        );
        assert_eq!(parse_speculation_override(""), None);
        assert_eq!(parse_speculation_override("fast"), None);
        assert_eq!(parse_speculation_override("-1"), None);
        assert_eq!(
            parse_speculation_override("99999999999999999999999999999999"),
            None
        );
    }

    #[test]
    fn resolve_env_falls_back_on_rejection() {
        // `resolve_env` itself is deterministic given the parse outcome; drive it
        // through a variable name that is never set to exercise the unset path.
        assert_eq!(
            resolve_env("NC_TEST_UNSET_VARIABLE", 7, parse_shard_override),
            7
        );
    }

    #[test]
    fn trace_lanes_are_independent_of_the_runtime_shard_count() {
        // The lane partition is fixed by (node, n) alone; feeding the same nodes
        // through worlds sharded 1/2/4 ways must never change it. (The lane is
        // computed from n directly, so this pins the *intent*: nothing about the
        // lane function may ever consult the runtime layout.)
        for n in [1usize, 3, 4, 16, 65] {
            for i in 0..n {
                let lane = trace_lane(NodeId::new(i as u32), n);
                assert!((lane as usize) < TRACE_LANES.min(n));
            }
        }
        // Lanes follow the contiguous-partition shape: ascending in node id.
        let lanes: Vec<u32> = (0..16).map(|i| trace_lane(NodeId::new(i), 16)).collect();
        let mut sorted = lanes.clone();
        sorted.sort_unstable();
        assert_eq!(lanes, sorted);
        assert_eq!(lanes[0], 0);
        assert_eq!(lanes[15], 3);
    }

    #[test]
    fn contiguity_means_shard_order_is_id_order() {
        let map = ShardMap::new(100, 4);
        let mut last = None;
        for s in 0..map.count() {
            for i in map.range(s) {
                assert!(Some(i) > last);
                last = Some(i);
            }
        }
    }
}
