//! A deterministic single-tape Turing machine with step and space accounting.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Head movement of a transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Move {
    /// Move the head one cell to the left (staying put at the left end of the tape).
    Left,
    /// Move the head one cell to the right.
    Right,
    /// Keep the head where it is.
    Stay,
}

/// Identifier of a machine state.
pub type StateId = u16;

/// The blank tape symbol.
pub const BLANK: u8 = 0;

/// Errors raised while building or running a machine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TmError {
    /// A transition refers to a state that was never declared.
    UnknownState(StateId),
    /// Two transitions were declared for the same `(state, symbol)` pair.
    DuplicateRule {
        /// The state of the duplicated rule.
        state: StateId,
        /// The read symbol of the duplicated rule.
        symbol: u8,
    },
    /// The machine has no start state.
    MissingStart,
}

impl fmt::Display for TmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TmError::UnknownState(s) => write!(f, "transition refers to undeclared state {s}"),
            TmError::DuplicateRule { state, symbol } => {
                write!(
                    f,
                    "duplicate rule for state {state} reading symbol {symbol}"
                )
            }
            TmError::MissingStart => write!(f, "machine has no start state"),
        }
    }
}

impl Error for TmError {}

/// Why a run stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HaltReason {
    /// The machine entered its accepting state.
    Accepted,
    /// The machine entered its rejecting state.
    Rejected,
    /// No transition was defined for the current `(state, symbol)` pair.
    Stuck,
    /// The step budget ran out.
    StepLimit,
    /// The space budget ran out.
    SpaceLimit,
}

/// The result of running a machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineRun {
    /// Why the run stopped.
    pub halt: HaltReason,
    /// Steps executed.
    pub steps: u64,
    /// Number of distinct tape cells touched (the space used).
    pub space: usize,
    /// Final tape contents (trailing blanks trimmed).
    pub tape: Vec<u8>,
}

impl MachineRun {
    /// Whether the run ended in the accepting state.
    #[must_use]
    pub fn accepted(&self) -> bool {
        self.halt == HaltReason::Accepted
    }
}

/// A deterministic single-tape Turing machine over the byte alphabet, with a semi-infinite
/// tape (the head stays put when asked to move left of cell 0).
#[derive(Clone, Debug)]
pub struct TuringMachine {
    start: StateId,
    accept: StateId,
    reject: StateId,
    rules: HashMap<(StateId, u8), (StateId, u8, Move)>,
    state_count: StateId,
}

impl TuringMachine {
    /// Starts building a machine. The builder pre-declares the accepting and rejecting
    /// states with identifiers 0 and 1 respectively.
    #[must_use]
    pub fn builder() -> MachineBuilder {
        MachineBuilder::new()
    }

    /// The accepting state.
    #[must_use]
    pub fn accept_state(&self) -> StateId {
        self.accept
    }

    /// The rejecting state.
    #[must_use]
    pub fn reject_state(&self) -> StateId {
        self.reject
    }

    /// The start state.
    #[must_use]
    pub fn start_state(&self) -> StateId {
        self.start
    }

    /// Number of declared states (including accept and reject).
    #[must_use]
    pub fn state_count(&self) -> usize {
        usize::from(self.state_count)
    }

    /// The single-step transition function: what the machine does in `state` reading
    /// `symbol`. `None` when no rule applies (the machine would be stuck) or when the
    /// state is accepting/rejecting.
    #[must_use]
    pub fn step_rule(&self, state: StateId, symbol: u8) -> Option<(StateId, u8, Move)> {
        if state == self.accept || state == self.reject {
            return None;
        }
        self.rules.get(&(state, symbol)).copied()
    }

    /// Whether `state` is a halting (accepting or rejecting) state.
    #[must_use]
    pub fn is_halting(&self, state: StateId) -> bool {
        state == self.accept || state == self.reject
    }

    /// Runs the machine on `input` with the given step and space budgets.
    #[must_use]
    pub fn run(&self, input: &[u8], max_steps: u64, max_space: usize) -> MachineRun {
        let mut tape: Vec<u8> = input.to_vec();
        let mut head = 0usize;
        let mut state = self.start;
        let mut steps = 0u64;
        let mut high_water = input.len().max(1);
        loop {
            if state == self.accept {
                return finish(HaltReason::Accepted, steps, high_water, tape);
            }
            if state == self.reject {
                return finish(HaltReason::Rejected, steps, high_water, tape);
            }
            if steps >= max_steps {
                return finish(HaltReason::StepLimit, steps, high_water, tape);
            }
            if high_water > max_space {
                return finish(HaltReason::SpaceLimit, steps, high_water, tape);
            }
            let symbol = tape.get(head).copied().unwrap_or(BLANK);
            let Some((next, write, movement)) = self.step_rule(state, symbol) else {
                return finish(HaltReason::Stuck, steps, high_water, tape);
            };
            if head >= tape.len() {
                tape.resize(head + 1, BLANK);
            }
            tape[head] = write;
            match movement {
                Move::Left => head = head.saturating_sub(1),
                Move::Right => head += 1,
                Move::Stay => {}
            }
            high_water = high_water.max(head + 1);
            state = next;
            steps += 1;
        }
    }
}

fn finish(halt: HaltReason, steps: u64, space: usize, mut tape: Vec<u8>) -> MachineRun {
    while tape.last() == Some(&BLANK) {
        tape.pop();
    }
    MachineRun {
        halt,
        steps,
        space,
        tape,
    }
}

/// Builder for [`TuringMachine`].
#[derive(Debug, Default)]
pub struct MachineBuilder {
    rules: Vec<(StateId, u8, StateId, u8, Move)>,
    next_state: StateId,
    start: Option<StateId>,
}

/// State identifier of the accepting state created by every builder.
pub const ACCEPT: StateId = 0;
/// State identifier of the rejecting state created by every builder.
pub const REJECT: StateId = 1;

impl MachineBuilder {
    fn new() -> MachineBuilder {
        MachineBuilder {
            rules: Vec::new(),
            next_state: 2, // 0 = accept, 1 = reject
            start: None,
        }
    }

    /// Declares a fresh working state and returns its identifier.
    pub fn state(&mut self) -> StateId {
        let id = self.next_state;
        self.next_state += 1;
        id
    }

    /// Sets the start state.
    #[must_use]
    pub fn start(mut self, state: StateId) -> MachineBuilder {
        self.start = Some(state);
        self
    }

    /// Adds the rule "in `state`, reading `read`: write `write`, move `movement`, go to
    /// `next`".
    #[must_use]
    pub fn rule(
        mut self,
        state: StateId,
        read: u8,
        write: u8,
        movement: Move,
        next: StateId,
    ) -> MachineBuilder {
        self.rules.push((state, read, next, write, movement));
        self
    }

    /// Finishes the machine.
    ///
    /// # Errors
    /// Returns an error when a rule refers to an undeclared state, when two rules share a
    /// `(state, symbol)` pair, or when no start state was set.
    pub fn build(self) -> Result<TuringMachine, TmError> {
        let start = self.start.ok_or(TmError::MissingStart)?;
        let mut rules = HashMap::new();
        for (state, read, next, write, movement) in self.rules {
            if state >= self.next_state || state == ACCEPT || state == REJECT {
                return Err(TmError::UnknownState(state));
            }
            if next >= self.next_state {
                return Err(TmError::UnknownState(next));
            }
            if rules
                .insert((state, read), (next, write, movement))
                .is_some()
            {
                return Err(TmError::DuplicateRule {
                    state,
                    symbol: read,
                });
            }
        }
        if start >= self.next_state {
            return Err(TmError::UnknownState(start));
        }
        Ok(TuringMachine {
            start,
            accept: ACCEPT,
            reject: REJECT,
            rules,
            state_count: self.next_state,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A machine that accepts iff the input (over symbols 1/2, 0 = blank) contains the
    /// symbol 2.
    fn contains_two() -> TuringMachine {
        let mut b = TuringMachine::builder();
        let scan = b.state();
        b.start(scan)
            .rule(scan, 1, 1, Move::Right, scan)
            .rule(scan, 2, 2, Move::Stay, ACCEPT)
            .rule(scan, BLANK, BLANK, Move::Stay, REJECT)
            .build()
            .unwrap()
    }

    #[test]
    fn accepts_and_rejects() {
        let m = contains_two();
        assert!(m.run(&[1, 1, 2, 1], 100, 100).accepted());
        let run = m.run(&[1, 1, 1], 100, 100);
        assert_eq!(run.halt, HaltReason::Rejected);
        assert!(!run.accepted());
        assert_eq!(run.steps, 4);
    }

    #[test]
    fn respects_step_limit() {
        // A machine that loops forever moving right.
        let mut b = TuringMachine::builder();
        let s = b.state();
        let m = b
            .start(s)
            .rule(s, BLANK, BLANK, Move::Right, s)
            .build()
            .unwrap();
        let run = m.run(&[], 50, 1000);
        assert_eq!(run.halt, HaltReason::StepLimit);
        assert_eq!(run.steps, 50);
    }

    #[test]
    fn respects_space_limit() {
        let mut b = TuringMachine::builder();
        let s = b.state();
        let m = b
            .start(s)
            .rule(s, BLANK, 1, Move::Right, s)
            .build()
            .unwrap();
        let run = m.run(&[], 10_000, 8);
        assert_eq!(run.halt, HaltReason::SpaceLimit);
        assert!(run.space > 8);
    }

    #[test]
    fn stuck_when_no_rule() {
        let mut b = TuringMachine::builder();
        let s = b.state();
        let m = b.start(s).rule(s, 1, 1, Move::Right, s).build().unwrap();
        assert_eq!(m.run(&[1, 3], 100, 100).halt, HaltReason::Stuck);
    }

    #[test]
    fn left_of_tape_start_stays_put() {
        let mut b = TuringMachine::builder();
        let s = b.state();
        let t = b.state();
        let m = b
            .start(s)
            .rule(s, 7, 8, Move::Left, t)
            .rule(t, 8, 8, Move::Stay, ACCEPT)
            .build()
            .unwrap();
        let run = m.run(&[7], 100, 100);
        assert!(run.accepted());
        assert_eq!(run.tape, vec![8]);
    }

    #[test]
    fn builder_validation() {
        let mut b = TuringMachine::builder();
        let s = b.state();
        assert_eq!(
            TuringMachine::builder().build().unwrap_err(),
            TmError::MissingStart
        );
        let err = b
            .start(s)
            .rule(s, 1, 1, Move::Right, 99)
            .build()
            .unwrap_err();
        assert_eq!(err, TmError::UnknownState(99));

        let mut b = TuringMachine::builder();
        let s = b.state();
        let err = b
            .start(s)
            .rule(s, 1, 1, Move::Right, s)
            .rule(s, 1, 1, Move::Left, s)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            TmError::DuplicateRule {
                state: s,
                symbol: 1
            }
        );
    }

    #[test]
    fn step_rule_exposed_for_distributed_simulation() {
        let m = contains_two();
        let start = m.start_state();
        assert!(!m.is_halting(start));
        assert!(m.is_halting(m.accept_state()));
        let (next, write, movement) = m.step_rule(start, 1).unwrap();
        assert_eq!(next, start);
        assert_eq!(write, 1);
        assert_eq!(movement, Move::Right);
        assert!(m.step_rule(m.accept_state(), 1).is_none());
        assert_eq!(m.state_count(), 3);
    }
}
