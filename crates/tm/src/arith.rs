//! Binary arithmetic on explicit bit vectors.
//!
//! The leader programs of Section 6 do not compute with machine integers: their counters
//! live bit-by-bit on a distributed line (one bit per node) or on the square's tape. The
//! [`BinaryCounter`] type mirrors exactly those operations — increment, decrement,
//! comparison, and the naïve integer square root obtained by trying `1·1, 2·2, 3·3, …` —
//! so that the protocol code can stay faithful to the paper while the bit storage itself
//! is provided by node states.

use std::cmp::Ordering;
use std::fmt;

/// An unsigned integer stored as little-endian bits (index 0 = least significant).
///
/// ```
/// use nc_tm::arith::BinaryCounter;
/// let mut c = BinaryCounter::from_value(5);
/// c.increment();
/// assert_eq!(c.value(), 6);
/// assert_eq!(c.bits(), &[false, true, true]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BinaryCounter {
    bits: Vec<bool>,
}

impl BinaryCounter {
    /// The counter holding zero (a single 0 bit).
    #[must_use]
    pub fn zero() -> BinaryCounter {
        BinaryCounter { bits: vec![false] }
    }

    /// Builds a counter from a machine integer.
    #[must_use]
    pub fn from_value(mut value: u64) -> BinaryCounter {
        if value == 0 {
            return BinaryCounter::zero();
        }
        let mut bits = Vec::new();
        while value > 0 {
            bits.push(value & 1 == 1);
            value >>= 1;
        }
        BinaryCounter { bits }
    }

    /// Builds a counter from little-endian bits (empty input is treated as zero).
    #[must_use]
    pub fn from_bits(bits: &[bool]) -> BinaryCounter {
        if bits.is_empty() {
            BinaryCounter::zero()
        } else {
            BinaryCounter {
                bits: bits.to_vec(),
            }
        }
    }

    /// The machine-integer value.
    ///
    /// # Panics
    /// Panics if the counter does not fit in a `u64` (cannot happen for counters produced
    /// by this crate's protocols, whose values are bounded by the population size).
    #[must_use]
    pub fn value(&self) -> u64 {
        let mut value = 0u64;
        for (i, &bit) in self.bits.iter().enumerate() {
            if bit {
                assert!(i < 64, "counter does not fit in u64");
                value |= 1 << i;
            }
        }
        value
    }

    /// The little-endian bits (at least one).
    #[must_use]
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Number of bits stored (the length of the leader's line).
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether no bit is stored. Always `false`: a counter keeps at least one bit
    /// (provided for `len`/`is_empty` API symmetry).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Whether the stored value is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.bits.iter().all(|&b| !b)
    }

    /// Adds one, growing the bit vector when a carry runs off the end (this is the moment
    /// the Counting-on-a-Line leader must recruit a fresh node for its tape).
    /// Returns `true` when the counter grew by one bit.
    pub fn increment(&mut self) -> bool {
        for bit in &mut self.bits {
            if *bit {
                *bit = false;
            } else {
                *bit = true;
                return false;
            }
        }
        self.bits.push(true);
        true
    }

    /// Subtracts one.
    ///
    /// # Panics
    /// Panics if the counter is zero.
    pub fn decrement(&mut self) {
        assert!(!self.is_zero(), "cannot decrement zero");
        for bit in &mut self.bits {
            if *bit {
                *bit = false;
                return;
            }
            *bit = true;
        }
    }

    /// Compares two counters by value (bit lengths may differ).
    #[must_use]
    pub fn compare(&self, other: &BinaryCounter) -> Ordering {
        let max_len = self.bits.len().max(other.bits.len());
        for i in (0..max_len).rev() {
            let a = self.bits.get(i).copied().unwrap_or(false);
            let b = other.bits.get(i).copied().unwrap_or(false);
            match (a, b) {
                (true, false) => return Ordering::Greater,
                (false, true) => return Ordering::Less,
                _ => {}
            }
        }
        Ordering::Equal
    }

    /// Whether the stored values are equal (irrespective of leading zeros).
    #[must_use]
    pub fn equals(&self, other: &BinaryCounter) -> bool {
        self.compare(other) == Ordering::Equal
    }
}

impl fmt::Debug for BinaryCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BinaryCounter({})", self.value())
    }
}

impl fmt::Display for BinaryCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &bit in self.bits.iter().rev() {
            write!(f, "{}", u8::from(bit))?;
        }
        Ok(())
    }
}

/// The integer square root `⌊√n⌋`, computed the way the Square-Knowing-n leader does on
/// its line: by successively trying `1·1, 2·2, 3·3, …` until the product reaches `n`.
/// Time is `O(√n)` multiplications — "though exponential in the binary representation of
/// n, still linear in the population size n" (Section 6.2).
#[must_use]
pub fn integer_sqrt(n: u64) -> u64 {
    let mut k = 0u64;
    while (k + 1).saturating_mul(k + 1) <= n {
        k += 1;
    }
    k
}

/// Whether `n` is a perfect square (the universal constructors assume `√n` is an
/// integer).
#[must_use]
pub fn is_perfect_square(n: u64) -> bool {
    let r = integer_sqrt(n);
    r * r == n
}

/// Encodes `value` as big-endian bits, exactly `width` bits wide.
///
/// # Panics
/// Panics if the value does not fit in `width` bits.
#[must_use]
pub fn to_bits_be(value: u64, width: usize) -> Vec<bool> {
    assert!(
        width == 64 || value < (1u64 << width),
        "value {value} does not fit in {width} bits"
    );
    (0..width).rev().map(|i| (value >> i) & 1 == 1).collect()
}

/// Minimal number of bits needed to write `value` in binary (1 for zero).
#[must_use]
pub fn bit_width(value: u64) -> usize {
    if value == 0 {
        1
    } else {
        (64 - value.leading_zeros()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_values() {
        for v in [0u64, 1, 2, 3, 7, 8, 100, 1023, 1024, u32::MAX as u64] {
            assert_eq!(BinaryCounter::from_value(v).value(), v);
        }
        assert_eq!(BinaryCounter::zero().value(), 0);
        assert!(BinaryCounter::zero().is_zero());
        assert_eq!(BinaryCounter::from_bits(&[]).value(), 0);
        assert_eq!(BinaryCounter::from_bits(&[true, false, true]).value(), 5);
    }

    #[test]
    fn increment_matches_addition() {
        let mut c = BinaryCounter::zero();
        for expected in 1..=300u64 {
            let grew = c.increment();
            assert_eq!(c.value(), expected);
            assert_eq!(grew, expected.is_power_of_two() && expected > 1);
            assert_eq!(c.len(), bit_width(expected));
        }
    }

    #[test]
    fn decrement_matches_subtraction() {
        let mut c = BinaryCounter::from_value(300);
        for expected in (0..300u64).rev() {
            c.decrement();
            assert_eq!(c.value(), expected);
        }
        assert!(c.is_zero());
    }

    #[test]
    #[should_panic(expected = "cannot decrement zero")]
    fn decrement_zero_panics() {
        BinaryCounter::zero().decrement();
    }

    #[test]
    fn comparison_ignores_leading_zeros() {
        let a = BinaryCounter::from_bits(&[true, true, false, false]); // 3 with padding
        let b = BinaryCounter::from_value(3);
        assert!(a.equals(&b));
        assert_eq!(a.compare(&BinaryCounter::from_value(4)), Ordering::Less);
        assert_eq!(
            BinaryCounter::from_value(9).compare(&BinaryCounter::from_value(4)),
            Ordering::Greater
        );
    }

    #[test]
    fn sqrt_and_perfect_squares() {
        for n in 0..200u64 {
            let r = integer_sqrt(n);
            assert!(r * r <= n);
            assert!((r + 1) * (r + 1) > n);
            assert_eq!(is_perfect_square(n), r * r == n);
        }
        assert_eq!(integer_sqrt(10_000), 100);
        assert!(is_perfect_square(1024));
        assert!(!is_perfect_square(1000));
    }

    #[test]
    fn big_endian_encoding() {
        assert_eq!(to_bits_be(5, 4), vec![false, true, false, true]);
        assert_eq!(to_bits_be(0, 1), vec![false]);
        assert_eq!(bit_width(0), 1);
        assert_eq!(bit_width(1), 1);
        assert_eq!(bit_width(2), 2);
        assert_eq!(bit_width(255), 8);
        assert_eq!(bit_width(256), 9);
    }

    #[test]
    fn display_is_msb_first() {
        assert_eq!(BinaryCounter::from_value(6).to_string(), "110");
        assert_eq!(
            format!("{:?}", BinaryCounter::from_value(6)),
            "BinaryCounter(6)"
        );
    }
}
