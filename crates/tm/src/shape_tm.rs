//! Shape-computing Turing machines (Definition 3 of the paper).
//!
//! A shape language `L = (S_1, S_2, …)` is *TM-computable in space `f(d)`* when a machine
//! `M`, given a pixel index `i` and the dimension `d` in binary, decides whether pixel `i`
//! of `S_d` is on, using `O(f(d))` space. The universal constructors only need a "pixel
//! oracle", captured by the [`ShapeComputer`] trait; [`TmShapeComputer`] backs that oracle
//! by an honest machine run, [`PredicateShapeComputer`] by a closure (the form used for
//! large experiments where simulating the machine itself would dominate the runtime
//! without changing the constructed shape).

use crate::arith::{bit_width, to_bits_be};
use crate::machine::{HaltReason, TuringMachine};
use nc_geometry::{LabeledSquare, ShapeLanguage};

/// A pixel oracle: decides whether pixel `i` (zig-zag index) of the `d × d` square is on.
pub trait ShapeComputer: Send + Sync {
    /// Human-readable name (used in experiment reports).
    fn name(&self) -> &str;

    /// Whether pixel `i` of the `d × d` square is on.
    ///
    /// Implementations must produce, for every `d ≥ 1`, a non-empty connected shape of
    /// maximum dimension `d` (this is validated by the tests and by
    /// [`nc_geometry::validate_language`] through [`computer_language`]).
    fn pixel(&self, i: u64, d: u64) -> bool;

    /// The space the computation needs, as a function of `d` (defaults to the whole
    /// square, `d²`, which is what the sequential constructor of Theorem 4 provides).
    fn space_bound(&self, d: u64) -> u64 {
        d * d
    }

    /// The full labeled square `S_d`.
    fn labeled_square(&self, d: u32) -> LabeledSquare {
        LabeledSquare::from_pixel_fn(d, |i| self.pixel(i, u64::from(d)))
    }
}

impl<C: ShapeComputer + ?Sized> ShapeComputer for &C {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn pixel(&self, i: u64, d: u64) -> bool {
        (**self).pixel(i, d)
    }

    fn space_bound(&self, d: u64) -> u64 {
        (**self).space_bound(d)
    }
}

impl<C: ShapeComputer + ?Sized> ShapeComputer for Box<C> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn pixel(&self, i: u64, d: u64) -> bool {
        (**self).pixel(i, d)
    }

    fn space_bound(&self, d: u64) -> u64 {
        (**self).space_bound(d)
    }
}

/// A shape computer defined by a closure over `(pixel index, d)`.
pub struct PredicateShapeComputer<F> {
    name: String,
    predicate: F,
}

impl<F: Fn(u64, u64) -> bool> PredicateShapeComputer<F> {
    /// Creates a predicate-backed computer.
    pub fn new(name: impl Into<String>, predicate: F) -> Self {
        PredicateShapeComputer {
            name: name.into(),
            predicate,
        }
    }
}

impl<F: Fn(u64, u64) -> bool + Send + Sync> ShapeComputer for PredicateShapeComputer<F> {
    fn name(&self) -> &str {
        &self.name
    }

    fn pixel(&self, i: u64, d: u64) -> bool {
        (self.predicate)(i, d)
    }
}

/// The input encoding used by [`TmShapeComputer`]: the bits of `i` and `d`, both written
/// MSB-first and zero-padded to the width of `d²`, *interleaved* into the symbols
/// `1 + 2·i_bit + d_bit ∈ {1, 2, 3, 4}` (symbol 0 is the blank).
///
/// Any injective binary encoding of `(i, d)` qualifies for Definition 3; the interleaved
/// one keeps hand-written machines small because corresponding bit positions of the two
/// numbers sit in the same cell.
#[must_use]
pub fn encode_pixel_input(i: u64, d: u64) -> Vec<u8> {
    let width = bit_width(d.saturating_mul(d)).max(bit_width(i));
    let i_bits = to_bits_be(i, width);
    let d_bits = to_bits_be(d, width);
    i_bits
        .iter()
        .zip(&d_bits)
        .map(|(&ib, &db)| 1 + 2 * u8::from(ib) + u8::from(db))
        .collect()
}

/// A shape computer backed by an honest [`TuringMachine`] run on
/// [`encode_pixel_input`]`(i, d)`.
pub struct TmShapeComputer {
    name: String,
    machine: TuringMachine,
    max_steps: u64,
}

impl TmShapeComputer {
    /// Wraps a machine. `max_steps` bounds each pixel decision (shape machines are space
    /// bounded, so a generous step bound only guards against accidental loops).
    #[must_use]
    pub fn new(name: impl Into<String>, machine: TuringMachine, max_steps: u64) -> TmShapeComputer {
        TmShapeComputer {
            name: name.into(),
            machine,
            max_steps,
        }
    }

    /// The wrapped machine (exposed so the faithful distributed simulation of experiment
    /// E10b can step it cell by cell on the assembled square).
    #[must_use]
    pub fn machine(&self) -> &TuringMachine {
        &self.machine
    }

    /// Runs the machine on pixel `(i, d)` and reports the whole run (steps, space, halt
    /// reason), not just the decision.
    #[must_use]
    pub fn run_pixel(&self, i: u64, d: u64) -> crate::machine::MachineRun {
        let input = encode_pixel_input(i, d);
        let space = usize::try_from(self.space_bound(d))
            .unwrap_or(usize::MAX)
            .max(input.len());
        self.machine.run(&input, self.max_steps, space)
    }
}

impl ShapeComputer for TmShapeComputer {
    fn name(&self) -> &str {
        &self.name
    }

    fn pixel(&self, i: u64, d: u64) -> bool {
        let run = self.run_pixel(i, d);
        debug_assert!(
            matches!(run.halt, HaltReason::Accepted | HaltReason::Rejected),
            "shape machine {} did not decide pixel ({i}, {d}): {:?}",
            self.name,
            run.halt
        );
        run.accepted()
    }
}

/// Adapts a shape computer into an [`nc_geometry::ShapeLanguage`], so the geometry
/// crate's validation and rendering utilities apply.
pub struct ComputerLanguage<C> {
    computer: C,
}

/// Wraps a computer as a shape language.
#[must_use]
pub fn computer_language<C: ShapeComputer>(computer: C) -> ComputerLanguage<C> {
    ComputerLanguage { computer }
}

impl<C: ShapeComputer> ShapeLanguage for ComputerLanguage<C> {
    fn name(&self) -> &str {
        self.computer.name()
    }

    fn square(&self, d: u32) -> LabeledSquare {
        self.computer.labeled_square(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Move, ACCEPT, REJECT};
    use nc_geometry::validate_language;

    #[test]
    fn predicate_computer_squares() {
        let full = PredicateShapeComputer::new("full", |_, _| true);
        assert_eq!(full.name(), "full");
        assert_eq!(full.labeled_square(3).on_count(), 9);
        assert_eq!(full.space_bound(5), 25);
        assert!(validate_language(&computer_language(&full), 6).is_ok());
    }

    #[test]
    fn encoding_is_injective_and_aligned() {
        let a = encode_pixel_input(3, 5);
        let b = encode_pixel_input(4, 5);
        assert_ne!(a, b);
        // Width is that of d² = 25 → 5 bits.
        assert_eq!(a.len(), 5);
        // All symbols are in 1..=4.
        assert!(a.iter().all(|&s| (1..=4).contains(&s)));
        // i = 3 → 00011, d = 5 → 00101 ⇒ symbols 1+2i+d: [1,1,2,3,4].
        assert_eq!(a, vec![1, 1, 2, 3, 4]);
    }

    /// The "bottom row" machine: accept iff `i < d`, scanning the interleaved encoding
    /// from the most significant bit and deciding at the first position where the bits of
    /// `i` and `d` differ.
    fn bottom_row_machine() -> TuringMachine {
        let mut b = TuringMachine::builder();
        let scan = b.state();
        b.start(scan)
            // bits equal (0,0) or (1,1): keep scanning.
            .rule(scan, 1, 1, Move::Right, scan)
            .rule(scan, 4, 4, Move::Right, scan)
            // i-bit 0, d-bit 1: i < d.
            .rule(scan, 2, 2, Move::Stay, ACCEPT)
            // i-bit 1, d-bit 0: i > d.
            .rule(scan, 3, 3, Move::Stay, REJECT)
            // end of input: i = d.
            .rule(scan, 0, 0, Move::Stay, REJECT)
            .build()
            .unwrap()
    }

    #[test]
    fn tm_backed_computer_decides_bottom_row() {
        let computer = TmShapeComputer::new("bottom-row", bottom_row_machine(), 10_000);
        for d in 1..=7u64 {
            for i in 0..d * d {
                assert_eq!(computer.pixel(i, d), i < d, "pixel {i} of d = {d}");
            }
        }
        // The bottom row is a valid connected language of max dimension d.
        assert!(validate_language(&computer_language(&computer), 7).is_ok());
        // The run uses only the input cells (space = |input|) and few steps.
        let run = computer.run_pixel(3, 7);
        assert!(run.space <= encode_pixel_input(3, 7).len());
        assert!(run.steps <= 8);
    }
}
