//! A library of shape computers matching the shape languages of `nc-geometry::library`,
//! plus genuine hand-written machines for selected languages.
//!
//! The universal-constructor experiments (E9, E10) sweep over these computers; the
//! footnote of Section 3 motivates the `left_column` language, Figure 7(c) the star.

use crate::machine::{Move, TuringMachine, ACCEPT, REJECT};
use crate::shape_tm::{PredicateShapeComputer, ShapeComputer, TmShapeComputer};
use nc_geometry::zigzag_coord;

/// A boxed shape computer (the element type of [`all_computers`]).
pub type BoxedComputer = Box<dyn ShapeComputer>;

fn xy_computer(
    name: &'static str,
    f: impl Fn(u32, u32, u32) -> bool + Send + Sync + 'static,
) -> BoxedComputer {
    Box::new(PredicateShapeComputer::new(name, move |i, d| {
        let d32 = u32::try_from(d).expect("square dimension fits in u32");
        let (x, y) = zigzag_coord(i, d32);
        f(x, y, d32)
    }))
}

/// The full `d × d` square.
#[must_use]
pub fn full_square_computer() -> BoxedComputer {
    xy_computer("full-square", |_, _, _| true)
}

/// The square border (frame).
#[must_use]
pub fn border_computer() -> BoxedComputer {
    xy_computer("border", |x, y, d| {
        x == 0 || y == 0 || x == d - 1 || y == d - 1
    })
}

/// The paper's footnote example: only the leftmost column of the square (pixels
/// `2k√n` and `2k√n − 1`).
#[must_use]
pub fn left_column_computer() -> BoxedComputer {
    Box::new(PredicateShapeComputer::new("left-column", |i, d| {
        i % (2 * d) == 0 || (i + 1) % (2 * d) == 0
    }))
}

/// A thick staircase along the main diagonal.
#[must_use]
pub fn staircase_computer() -> BoxedComputer {
    xy_computer("staircase", |x, y, _| x == y || x == y + 1)
}

/// A plus/cross through the middle row and column.
#[must_use]
pub fn cross_computer() -> BoxedComputer {
    xy_computer("cross", |x, y, d| x == d / 2 || y == d / 2)
}

/// The Figure 7(c)-style star: cross plus thick diagonals.
#[must_use]
pub fn star_computer() -> BoxedComputer {
    xy_computer("star", |x, y, d| {
        x == d / 2 || y == d / 2 || x == y || x == y + 1 || x + y == d - 1 || x + y == d
    })
}

/// The serpentine (boustrophedon snake).
#[must_use]
pub fn serpentine_computer() -> BoxedComputer {
    xy_computer("serpentine", |x, y, d| {
        if y % 2 == 0 {
            true
        } else if y % 4 == 1 {
            x == d - 1
        } else {
            x == 0
        }
    })
}

/// A comb: full bottom row plus the even columns.
#[must_use]
pub fn comb_computer() -> BoxedComputer {
    xy_computer("comb", |x, y, _| y == 0 || x % 2 == 0)
}

/// An H: both outer columns plus the middle row.
#[must_use]
pub fn h_computer() -> BoxedComputer {
    xy_computer("h", |x, y, d| x == 0 || x == d - 1 || y == d / 2)
}

/// The bottom row (`i < d`), realised by the honest comparison Turing machine below
/// rather than a predicate — this is the reference "TM-computable language" used to test
/// the faithful distributed TM simulation.
#[must_use]
pub fn bottom_row_tm_computer() -> TmShapeComputer {
    TmShapeComputer::new("bottom-row(TM)", less_than_machine(), 1 << 20)
}

/// The comparison machine deciding `i < d` on the interleaved encoding of
/// [`crate::encode_pixel_input`]: scan MSB→LSB and decide at the first position where the
/// two numbers' bits differ.
#[must_use]
pub fn less_than_machine() -> TuringMachine {
    let mut b = TuringMachine::builder();
    let scan = b.state();
    b.start(scan)
        .rule(scan, 1, 1, Move::Right, scan) // i-bit 0, d-bit 0
        .rule(scan, 4, 4, Move::Right, scan) // i-bit 1, d-bit 1
        .rule(scan, 2, 2, Move::Stay, ACCEPT) // i-bit 0, d-bit 1 ⇒ i < d
        .rule(scan, 3, 3, Move::Stay, REJECT) // i-bit 1, d-bit 0 ⇒ i > d
        .rule(scan, 0, 0, Move::Stay, REJECT) // exhausted ⇒ i = d
        .build()
        .expect("the comparison machine is well formed")
}

/// The full-square language realised by the one-rule always-accept machine.
#[must_use]
pub fn full_square_tm_computer() -> TmShapeComputer {
    let mut b = TuringMachine::builder();
    let start = b.state();
    let machine = b
        .start(start)
        .rule(start, 0, 0, Move::Stay, ACCEPT)
        .rule(start, 1, 1, Move::Stay, ACCEPT)
        .rule(start, 2, 2, Move::Stay, ACCEPT)
        .rule(start, 3, 3, Move::Stay, ACCEPT)
        .rule(start, 4, 4, Move::Stay, ACCEPT)
        .build()
        .expect("the accept-all machine is well formed");
    TmShapeComputer::new("full-square(TM)", machine, 16)
}

/// All predicate-backed library computers (the sweep set of experiment E9).
#[must_use]
pub fn all_computers() -> Vec<BoxedComputer> {
    vec![
        full_square_computer(),
        border_computer(),
        left_column_computer(),
        staircase_computer(),
        cross_computer(),
        star_computer(),
        serpentine_computer(),
        comb_computer(),
        h_computer(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape_tm::computer_language;
    use nc_geometry::{library, validate_language, ShapeLanguage};

    #[test]
    fn all_computers_are_valid_languages() {
        for computer in all_computers() {
            let lang = computer_language(&computer);
            validate_language(&lang, 10)
                .unwrap_or_else(|e| panic!("computer {} invalid: {e}", computer.name()));
        }
    }

    #[test]
    fn computers_match_geometry_languages() {
        // The zig-zag-index computers must agree pixel-for-pixel with the (x, y)
        // predicate languages shipped by nc-geometry.
        let pairs: Vec<(BoxedComputer, Box<dyn ShapeLanguage>)> = all_computers()
            .into_iter()
            .zip(nc_geometry::library::all_languages())
            .collect();
        for (computer, language) in pairs {
            assert_eq!(computer.name(), language.name());
            for d in 1..=8u32 {
                assert_eq!(
                    computer.labeled_square(d),
                    language.square(d),
                    "mismatch for {} at d = {d}",
                    computer.name()
                );
            }
        }
    }

    #[test]
    fn left_column_predicate_matches_footnote_formula() {
        let computer = left_column_computer();
        let lang = library::left_column_language();
        for d in 1..=9u32 {
            assert_eq!(computer.labeled_square(d), lang.square(d), "d = {d}");
        }
    }

    #[test]
    fn tm_backed_bottom_row_is_correct_and_space_bounded() {
        let computer = bottom_row_tm_computer();
        for d in 1..=6u64 {
            for i in 0..d * d {
                assert_eq!(computer.pixel(i, d), i < d);
            }
        }
        let run = computer.run_pixel(10, 6);
        assert!(run.space as u64 <= computer.space_bound(6));
    }

    #[test]
    fn tm_backed_full_square_accepts_everything() {
        let computer = full_square_tm_computer();
        for d in 1..=5u64 {
            for i in 0..d * d {
                assert!(computer.pixel(i, d));
            }
        }
        assert!(validate_language(&computer_language(&computer), 5).is_ok());
    }
}
