//! Turing-machine substrate for the universal constructors (Sections 3 and 6.3).
//!
//! The paper's generic constructors realise any *TM-computable* shape language: a TM `M`
//! receives a pixel index `i` and the square dimension `d` (in binary), decides whether
//! pixel `i` of the `d × d` square is **on**, and must do so within the space available on
//! the assembled square. This crate provides:
//!
//! * [`TuringMachine`] — a deterministic single-tape machine with step and space
//!   accounting, plus a builder;
//! * [`ShapeComputer`] — the "pixel oracle" interface (`pixel(i, d) → bool`) together with
//!   implementations backed by a closure ([`PredicateShapeComputer`]) or by an actual
//!   machine run on a binary encoding of `(i, d)` ([`TmShapeComputer`]);
//! * [`arith`] — the little-endian binary counters and integer square root the leader
//!   programs of Section 6 manipulate on their distributed tape;
//! * [`library`] — ready-made shape computers for the shape languages shipped with
//!   `nc-geometry`, including a hand-written TM for the paper's footnote example (the
//!   leftmost column of the square).
//!
//! ```
//! use nc_tm::{library, ShapeComputer};
//!
//! let star = library::star_computer();
//! // Pixel 0 is the bottom-left corner, which lies on the main diagonal of the star.
//! assert!(star.pixel(0, 9));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arith;
pub mod library;
mod machine;
mod shape_tm;

pub use machine::{
    HaltReason, MachineBuilder, MachineRun, Move, StateId, TmError, TuringMachine, ACCEPT, BLANK,
    REJECT,
};
pub use shape_tm::{
    computer_language, encode_pixel_input, ComputerLanguage, PredicateShapeComputer, ShapeComputer,
    TmShapeComputer,
};
