//! The **Counting-Upper-Bound** protocol (Section 5.1, Theorem 1).
//!
//! A unique leader `l` keeps two counters `r0` and `r1` (in its unbounded local memory;
//! the geometric variant of Section 6.1 stores them on a line instead). All other agents
//! start as `q0`. Whenever the leader meets a `q0` it converts it to `q1` and increments
//! `r0`; whenever it meets a `q1` it converts it to `q2` and increments `r1`; when
//! `r0 = r1` the leader halts. `r0` starts with a head start of `b` (implemented, as the
//! paper suggests, by pre-converting `b` agents to `q1`).
//!
//! Theorem 1: the protocol halts in every execution and, when it does, w.h.p.
//! (probability at least `1 − 1/n^(b−2)`) the leader has counted `r0 ≥ n/2` agents.

use crate::{PopSimulation, PopulationProtocol};

/// Agent states of the Counting-Upper-Bound protocol.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CountingState {
    /// The unique leader with its two counters.
    Leader {
        /// Number of `q0`s counted so far (including the initial head start).
        r0: u64,
        /// Number of `q1`s counted so far.
        r1: u64,
    },
    /// A halted leader, remembering its final `r0`.
    Halted {
        /// Final value of the `r0` counter.
        r0: u64,
    },
    /// An agent not yet met by the leader.
    Q0,
    /// An agent met once by the leader.
    Q1,
    /// An agent met twice by the leader.
    Q2,
}

/// The Counting-Upper-Bound protocol with head start `b`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CountingUpperBound {
    head_start: u64,
}

impl CountingUpperBound {
    /// Creates the protocol with the given head start `b ≥ 1`.
    ///
    /// The failure probability bound of Theorem 1 is `1/n^(b−2)`, so `b ≥ 3` is needed
    /// for a non-trivial guarantee; `b = 4` or `5` is typical.
    ///
    /// # Panics
    /// Panics if `b == 0`.
    #[must_use]
    pub fn new(b: u64) -> CountingUpperBound {
        assert!(b >= 1, "the head start must be at least 1");
        CountingUpperBound { head_start: b }
    }

    /// The configured head start `b`.
    #[must_use]
    pub fn head_start(&self) -> u64 {
        self.head_start
    }
}

impl PopulationProtocol for CountingUpperBound {
    type State = CountingState;

    fn initial_state(&self, node: usize, n: usize) -> CountingState {
        // The paper gives r0 a head start of b by having the leader convert b q0s to q1
        // as a preprocessing step; we reproduce that preprocessing in the initial
        // configuration. If the population is so small that fewer than b non-leader
        // agents exist, the head start is capped (the protocol then halts immediately
        // with r0 = r1 possible only after counting everyone).
        let b = self.head_start.min(n.saturating_sub(1) as u64);
        if node == 0 {
            CountingState::Leader { r0: b, r1: 0 }
        } else if (node as u64) <= b {
            CountingState::Q1
        } else {
            CountingState::Q0
        }
    }

    fn interact(
        &self,
        a: &CountingState,
        b: &CountingState,
    ) -> Option<(CountingState, CountingState)> {
        match (a, b) {
            // Halting rule: (l(r0, r1), ·) → (halt, ·) if r0 = r1.
            (CountingState::Leader { r0, r1 }, other) if r0 == r1 => {
                Some((CountingState::Halted { r0: *r0 }, other.clone()))
            }
            // (l(r0, r1), q0) → (l(r0 + 1, r1), q1).
            (CountingState::Leader { r0, r1 }, CountingState::Q0) => Some((
                CountingState::Leader {
                    r0: r0 + 1,
                    r1: *r1,
                },
                CountingState::Q1,
            )),
            // (l(r0, r1), q1) → (l(r0, r1 + 1), q2).
            (CountingState::Leader { r0, r1 }, CountingState::Q1) => Some((
                CountingState::Leader {
                    r0: *r0,
                    r1: r1 + 1,
                },
                CountingState::Q2,
            )),
            _ => None,
        }
    }

    fn is_halted(&self, state: &CountingState) -> bool {
        matches!(state, CountingState::Halted { .. })
    }

    fn live_state_bound(&self) -> Option<usize> {
        // The counter values are unbounded, but at any time the configuration holds at
        // most one `Leader{..}` or `Halted{..}` state (there is a unique leader) plus
        // `Q0`, `Q1`, `Q2`: five simultaneously live states, far under the class cap,
        // so the engine runs this protocol with Gillespie-style batched jumps. The
        // leader's class churns on every effective interaction; the index retires the
        // sole-member class and allocates the successor without overflowing.
        Some(5)
    }

    fn name(&self) -> &str {
        "counting-upper-bound"
    }
}

/// The outcome of one execution of the counting protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CountingOutcome {
    /// Population size the protocol ran on.
    pub n: usize,
    /// Head start `b` used.
    pub head_start: u64,
    /// Final value of the leader's `r0` counter.
    pub r0: u64,
    /// Whether the leader halted (Theorem 1 says this happens in every execution; a
    /// `false` here can only mean the step budget was exhausted).
    pub halted: bool,
    /// Whether the count succeeded in the sense of Theorem 1 (`r0 ≥ n/2`).
    pub success: bool,
    /// Total scheduler steps until the leader halted.
    pub steps: u64,
    /// Effective interactions until the leader halted.
    pub effective_steps: u64,
}

impl CountingOutcome {
    /// The upper bound on `n` the leader can report (`2·r0 ≥ n` w.h.p.).
    #[must_use]
    pub fn upper_bound(&self) -> u64 {
        2 * self.r0
    }

    /// The relative estimate `r0 / n` (Remark 2 reports this is ≈ 0.9 in practice).
    #[must_use]
    pub fn relative_estimate(&self) -> f64 {
        self.r0 as f64 / self.n as f64
    }
}

/// Runs the counting protocol once on `n` agents and reports the outcome.
///
/// The step budget is `64·n²·(ln n + 4)`, far above the `O(n² log n)` expectation of
/// Remark 1, so a `halted = false` outcome indicates a genuine problem.
///
/// # Panics
/// Panics if `n < 2`.
#[must_use]
pub fn run_counting(protocol: &CountingUpperBound, n: usize, seed: u64) -> CountingOutcome {
    let mut sim = PopSimulation::new(*protocol, n, seed);
    let budget = step_budget(n);
    let report = sim.run_until_any_halted(budget);
    let r0 = sim
        .states()
        .iter()
        .find_map(|s| match s {
            CountingState::Halted { r0 } => Some(*r0),
            CountingState::Leader { r0, .. } => Some(*r0),
            _ => None,
        })
        .unwrap_or(0);
    CountingOutcome {
        n,
        head_start: protocol.head_start(),
        r0,
        halted: report.condition_met(),
        success: 2 * r0 >= n as u64,
        steps: report.steps,
        effective_steps: report.effective_steps,
    }
}

fn step_budget(n: usize) -> u64 {
    let n = n as u64;
    64 * n * n * (((n as f64).ln().ceil() as u64) + 4)
}

/// Aggregated statistics over repeated executions (one row of experiment E1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CountingAggregate {
    /// Population size.
    pub n: usize,
    /// Head start `b`.
    pub head_start: u64,
    /// Number of trials.
    pub trials: u32,
    /// Fraction of trials with `r0 ≥ n/2`.
    pub success_rate: f64,
    /// Fraction of trials in which the leader halted within the step budget.
    pub halt_rate: f64,
    /// Mean of `r0 / n` over all trials.
    pub mean_relative_estimate: f64,
    /// Mean number of scheduler steps to termination.
    pub mean_steps: f64,
}

/// Runs `trials` independent executions and aggregates them.
///
/// # Panics
/// Panics if `trials == 0` or `n < 2`.
#[must_use]
pub fn aggregate_counting(
    protocol: &CountingUpperBound,
    n: usize,
    trials: u32,
    seed: u64,
) -> CountingAggregate {
    assert!(trials > 0, "at least one trial required");
    let mut successes = 0u32;
    let mut halts = 0u32;
    let mut sum_rel = 0.0;
    let mut sum_steps = 0.0;
    for t in 0..trials {
        let outcome = run_counting(protocol, n, seed.wrapping_add(u64::from(t) * 0x9E37_79B9));
        if outcome.success {
            successes += 1;
        }
        if outcome.halted {
            halts += 1;
        }
        sum_rel += outcome.relative_estimate();
        sum_steps += outcome.steps as f64;
    }
    CountingAggregate {
        n,
        head_start: protocol.head_start(),
        trials,
        success_rate: f64::from(successes) / f64::from(trials),
        halt_rate: f64::from(halts) / f64::from(trials),
        mean_relative_estimate: sum_rel / f64::from(trials),
        mean_steps: sum_steps / f64::from(trials),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PopulationProtocol;

    #[test]
    fn initial_configuration_has_head_start() {
        let p = CountingUpperBound::new(3);
        assert_eq!(
            p.initial_state(0, 10),
            CountingState::Leader { r0: 3, r1: 0 }
        );
        assert_eq!(p.initial_state(1, 10), CountingState::Q1);
        assert_eq!(p.initial_state(3, 10), CountingState::Q1);
        assert_eq!(p.initial_state(4, 10), CountingState::Q0);
        // Head start is capped for tiny populations.
        assert_eq!(
            p.initial_state(0, 3),
            CountingState::Leader { r0: 2, r1: 0 }
        );
    }

    #[test]
    fn transition_rules_match_the_paper() {
        let p = CountingUpperBound::new(2);
        let leader = CountingState::Leader { r0: 5, r1: 3 };
        // Leader meets q0: r0 increments, q0 → q1.
        assert_eq!(
            p.interact(&leader, &CountingState::Q0),
            Some((CountingState::Leader { r0: 6, r1: 3 }, CountingState::Q1))
        );
        // Leader meets q1: r1 increments, q1 → q2.
        assert_eq!(
            p.interact(&leader, &CountingState::Q1),
            Some((CountingState::Leader { r0: 5, r1: 4 }, CountingState::Q2))
        );
        // Leader meets q2: ineffective.
        assert_eq!(p.interact(&leader, &CountingState::Q2), None);
        // Non-leaders never interact with each other.
        assert_eq!(p.interact(&CountingState::Q0, &CountingState::Q1), None);
        // Halting rule when r0 = r1.
        let tied = CountingState::Leader { r0: 4, r1: 4 };
        assert_eq!(
            p.interact(&tied, &CountingState::Q2),
            Some((CountingState::Halted { r0: 4 }, CountingState::Q2))
        );
        assert!(p.is_halted(&CountingState::Halted { r0: 4 }));
        assert!(!p.is_halted(&leader));
    }

    #[test]
    fn invariants_along_an_execution() {
        // j = r0 − r1, r0 ≥ r1 and r1 = (#q2) hold throughout (proof of Theorem 1).
        let p = CountingUpperBound::new(3);
        let mut sim = PopSimulation::new(p, 60, 123);
        for _ in 0..20_000 {
            sim.step();
            let mut q1 = 0u64;
            let mut q2 = 0u64;
            let mut leader: Option<(u64, u64)> = None;
            for s in sim.states() {
                match s {
                    CountingState::Q1 => q1 += 1,
                    CountingState::Q2 => q2 += 1,
                    CountingState::Leader { r0, r1 } => leader = Some((*r0, *r1)),
                    CountingState::Halted { r0 } => leader = Some((*r0, *r0)),
                    CountingState::Q0 => {}
                }
            }
            let (r0, r1) = leader.expect("leader always present");
            assert!(r0 >= r1, "r0 ≥ r1 must always hold");
            assert_eq!(r1, q2, "r1 counts exactly the q2 agents");
            assert_eq!(r0 - r1, q1, "the walk position j equals #q1");
            if sim.halted_agents().len() == 1 {
                break;
            }
        }
    }

    #[test]
    fn always_terminates_and_usually_succeeds() {
        let p = CountingUpperBound::new(4);
        let agg = aggregate_counting(&p, 80, 20, 7);
        assert!(
            (agg.halt_rate - 1.0).abs() < f64::EPSILON,
            "Theorem 1: always halts"
        );
        assert!(
            agg.success_rate >= 0.9,
            "success rate {} too low",
            agg.success_rate
        );
        assert!(agg.mean_relative_estimate > 0.5);
        assert!(agg.mean_steps > 0.0);
    }

    #[test]
    fn outcome_accessors() {
        let outcome = CountingOutcome {
            n: 100,
            head_start: 4,
            r0: 90,
            halted: true,
            success: true,
            steps: 1000,
            effective_steps: 200,
        };
        assert_eq!(outcome.upper_bound(), 180);
        assert!((outcome.relative_estimate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn tiny_population_halts_immediately() {
        // n = 2, head start capped to 1: the single non-leader starts as q1, the leader
        // counts it, then r0 = r1 and the next meeting halts.
        let outcome = run_counting(&CountingUpperBound::new(5), 2, 3);
        assert!(outcome.halted);
        assert!(outcome.r0 >= 1);
    }
}
