//! Counting without a leader but with unique identifiers (Section 5.3).
//!
//! Two protocols are provided:
//!
//! * [`SimpleUidCounting`] — Section 5.3.1 / Theorem 2: every agent records its first `b`
//!   interactions and the set of distinct identifiers seen; it terminates when a later
//!   window of `b` consecutive interactions repeats the initial window, outputting the
//!   number of distinct identifiers seen so far. Correct w.h.p., but the expected time to
//!   termination is `Θ(n^b)`.
//! * [`ImprovedUidCounting`] — Section 5.3.2 / Protocol 3 / Theorem 3: every agent
//!   initially behaves like the unique leader of Theorem 1; comparing identifiers
//!   deactivates all but the maximum, whose counting process is never disturbed. When an
//!   agent halts, w.h.p. it is the maximum-identifier agent and `2·count1 ≥ n`.

use crate::{PopSimulation, PopulationProtocol};

// ---------------------------------------------------------------------------------------
// Simple protocol (Theorem 2)
// ---------------------------------------------------------------------------------------

/// State of an agent in the simple UID counting protocol.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SimpleUidState {
    /// The agent's unique identifier.
    pub id: u64,
    /// The identifiers observed in the first `b` interactions.
    pub first_window: Vec<u64>,
    /// The identifiers observed in the current window of `b` interactions.
    pub current_window: Vec<u64>,
    /// All distinct identifiers seen so far (including the agent's own).
    pub seen: Vec<u64>,
    /// Whether the agent has terminated; if so, its output is `seen.len()`.
    pub terminated: bool,
}

impl SimpleUidState {
    fn new(id: u64) -> SimpleUidState {
        SimpleUidState {
            id,
            first_window: Vec::new(),
            current_window: Vec::new(),
            seen: vec![id],
            terminated: false,
        }
    }

    /// The agent's output: the number of distinct identifiers it has seen.
    #[must_use]
    pub fn output(&self) -> usize {
        self.seen.len()
    }

    fn observe(&mut self, other: u64, b: usize) {
        if self.terminated {
            return;
        }
        if !self.seen.contains(&other) {
            self.seen.push(other);
        }
        if self.first_window.len() < b {
            self.first_window.push(other);
            return;
        }
        self.current_window.push(other);
        if self.current_window.len() == b {
            if self.current_window == self.first_window {
                self.terminated = true;
            } else {
                self.current_window.clear();
            }
        }
    }
}

/// The simple UID counting protocol of Theorem 2, with window length `b`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimpleUidCounting {
    window: usize,
}

impl SimpleUidCounting {
    /// Creates the protocol with window length `b ≥ 1`.
    ///
    /// # Panics
    /// Panics if `b == 0`.
    #[must_use]
    pub fn new(b: usize) -> SimpleUidCounting {
        assert!(b >= 1, "the window length must be at least 1");
        SimpleUidCounting { window: b }
    }

    /// The window length `b`.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }
}

impl PopulationProtocol for SimpleUidCounting {
    type State = SimpleUidState;

    fn initial_state(&self, node: usize, _n: usize) -> SimpleUidState {
        // Identifiers are an arbitrary injective function of the node index; using a
        // multiplicative hash makes it obvious that nothing depends on their order being
        // the node order.
        SimpleUidState::new((node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn interact(
        &self,
        a: &SimpleUidState,
        b: &SimpleUidState,
    ) -> Option<(SimpleUidState, SimpleUidState)> {
        if a.terminated && b.terminated {
            return None;
        }
        let mut new_a = a.clone();
        let mut new_b = b.clone();
        new_a.observe(b.id, self.window);
        new_b.observe(a.id, self.window);
        Some((new_a, new_b))
    }

    // `is_halted` deliberately keeps its default (`false`): a terminated agent's state
    // never changes again, but its partners may still observe its identifier, so the
    // engine must not freeze interactions involving it.

    // `live_state_bound` deliberately keeps its default (`None`): every agent carries
    // a distinct identifier, so all `n` states are simultaneously live by design and
    // the engine keeps the adaptive sampler instead of building a doomed class table.

    fn name(&self) -> &str {
        "simple-uid-counting"
    }
}

/// Outcome of a simple-UID-counting run: the first agent to terminate and its count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimpleUidOutcome {
    /// Population size.
    pub n: usize,
    /// Window length `b`.
    pub window: usize,
    /// Whether some agent terminated within the step budget.
    pub terminated: bool,
    /// The terminating agent's count (0 if none terminated).
    pub count: usize,
    /// Whether the count equals `n` exactly.
    pub exact: bool,
    /// Scheduler steps until the first termination.
    pub steps: u64,
}

/// Runs the simple protocol until the first agent terminates (or `max_steps` runs out).
///
/// # Panics
/// Panics if `n < 2`.
#[must_use]
pub fn run_simple_uid(
    protocol: &SimpleUidCounting,
    n: usize,
    seed: u64,
    max_steps: u64,
) -> SimpleUidOutcome {
    let mut sim = PopSimulation::new(*protocol, n, seed);
    let report = sim.run_until(max_steps, |states| states.iter().any(|s| s.terminated));
    let winner = sim.states().iter().find(|s| s.terminated);
    SimpleUidOutcome {
        n,
        window: protocol.window(),
        terminated: report.condition_met(),
        count: winner.map_or(0, SimpleUidState::output),
        exact: winner.is_some_and(|s| s.output() == n),
        steps: report.steps,
    }
}

// ---------------------------------------------------------------------------------------
// Improved protocol (Protocol 3, Theorem 3)
// ---------------------------------------------------------------------------------------

/// State of an agent in Protocol 3.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ImprovedUidState {
    /// The agent's unique identifier.
    pub id: u64,
    /// The greatest identifier that has marked this agent (`⊥` = `None`).
    pub belongs: Option<u64>,
    /// How many times the owning identifier has marked this agent (0, 1 or 2).
    pub marked: u8,
    /// First-meeting counter of this agent's own counting process.
    pub count1: u64,
    /// Second-meeting counter of this agent's own counting process.
    pub count2: u64,
    /// Whether this agent's counting process is still active.
    pub active: bool,
    /// Whether this agent has halted; if so its output is `2·count1`.
    pub halted: bool,
}

impl ImprovedUidState {
    fn new(id: u64) -> ImprovedUidState {
        ImprovedUidState {
            id,
            belongs: None,
            marked: 0,
            count1: 0,
            count2: 0,
            active: true,
            halted: false,
        }
    }

    /// The agent's output when halted: `2·count1`, an upper bound on `n` w.h.p.
    #[must_use]
    pub fn output(&self) -> u64 {
        2 * self.count1
    }
}

/// Protocol 3 ("Counting with UIDs") with head-start constant `b`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ImprovedUidCounting {
    head_start: u64,
}

impl ImprovedUidCounting {
    /// Creates the protocol with head start `b ≥ 1`.
    ///
    /// # Panics
    /// Panics if `b == 0`.
    #[must_use]
    pub fn new(b: u64) -> ImprovedUidCounting {
        assert!(b >= 1, "the head start must be at least 1");
        ImprovedUidCounting { head_start: b }
    }

    /// The head start `b`.
    #[must_use]
    pub fn head_start(&self) -> u64 {
        self.head_start
    }

    /// One interaction of Protocol 3 for the ordered pair `(u, v)` with `id_u > id_v`,
    /// transcribed line by line from the paper's listing.
    fn ordered_interact(
        &self,
        u: &ImprovedUidState,
        v: &ImprovedUidState,
    ) -> (ImprovedUidState, ImprovedUidState) {
        debug_assert!(u.id > v.id);
        let mut u = u.clone();
        let mut v = v.clone();
        // 1–3: the smaller identifier is deactivated.
        if v.active {
            v.active = false;
        }
        // 4–20: only an active u proceeds. The three branches are mutually exclusive per
        // interaction (first marking, deactivation, second marking): the paper's
        // narrative — and the proof of Theorem 3 — treats the first and second marking of
        // an agent as distinct meetings, so the listing's conditions are evaluated
        // against the state at the start of the interaction.
        if u.active {
            if v.belongs.is_none() || v.belongs.is_some_and(|owner| owner < u.id) {
                // 5–9: first marking.
                v.belongs = Some(u.id);
                v.marked = 1;
                u.count1 += 1;
            } else if v.belongs.is_some_and(|owner| owner > u.id) {
                // 10–12: u meets an agent already owned by a greater identifier.
                u.active = false;
            } else if v.belongs == Some(u.id) && v.marked == 1 && u.count1 >= self.head_start {
                // 13–19: second marking and the halting test.
                v.marked = 2;
                u.count2 += 1;
                if u.count1 == u.count2 {
                    u.halted = true;
                }
            }
        }
        (u, v)
    }
}

impl PopulationProtocol for ImprovedUidCounting {
    type State = ImprovedUidState;

    fn initial_state(&self, node: usize, _n: usize) -> ImprovedUidState {
        ImprovedUidState::new((node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn interact(
        &self,
        a: &ImprovedUidState,
        b: &ImprovedUidState,
    ) -> Option<(ImprovedUidState, ImprovedUidState)> {
        if a.halted || b.halted {
            return None;
        }
        if a.id > b.id {
            Some(self.ordered_interact(a, b))
        } else {
            let (new_b, new_a) = self.ordered_interact(b, a);
            Some((new_a, new_b))
        }
    }

    fn is_halted(&self, state: &ImprovedUidState) -> bool {
        state.halted
    }

    // `live_state_bound` keeps its default (`None`): identifiers make all agent states
    // distinct, so the diversity pre-check must leave this on the adaptive sampler.

    fn name(&self) -> &str {
        "improved-uid-counting"
    }
}

/// Outcome of a Protocol 3 run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ImprovedUidOutcome {
    /// Population size.
    pub n: usize,
    /// Head start `b`.
    pub head_start: u64,
    /// Whether some agent halted within the step budget.
    pub halted: bool,
    /// Whether the halted agent carries the maximum identifier (Theorem 3 says this holds
    /// w.h.p.).
    pub halter_is_max: bool,
    /// The halted agent's output `2·count1` (0 if none halted).
    pub output: u64,
    /// Whether the output is an upper bound on `n` (`2·count1 ≥ n`).
    pub success: bool,
    /// Scheduler steps until the first halt.
    pub steps: u64,
}

/// Runs Protocol 3 until the first agent halts (or `max_steps` runs out).
///
/// # Panics
/// Panics if `n < 2`.
#[must_use]
pub fn run_improved_uid(
    protocol: &ImprovedUidCounting,
    n: usize,
    seed: u64,
    max_steps: u64,
) -> ImprovedUidOutcome {
    let mut sim = PopSimulation::new(*protocol, n, seed);
    let report = sim.run_until_any_halted(max_steps);
    let max_id = sim.states().iter().map(|s| s.id).max().unwrap_or(0);
    let halter = sim.states().iter().find(|s| s.halted);
    ImprovedUidOutcome {
        n,
        head_start: protocol.head_start(),
        halted: report.condition_met(),
        halter_is_max: halter.is_some_and(|s| s.id == max_id),
        output: halter.map_or(0, ImprovedUidState::output),
        success: halter.is_some_and(|s| s.output() >= n as u64),
        steps: report.steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_uid_ids_are_distinct() {
        let p = SimpleUidCounting::new(2);
        let ids: Vec<u64> = (0..64).map(|i| p.initial_state(i, 64).id).collect();
        for (i, a) in ids.iter().enumerate() {
            for b in ids.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn simple_uid_terminates_and_reports_a_plausible_count() {
        // With n = 3 and b = 2 the expected termination time Θ(n^b) is tiny. The count is
        // only correct w.h.p. (Theorem 2), which at n = 3 leaves a real chance of an
        // undercount, so we only assert the structural guarantees here; experiment E4
        // measures exactness rates at larger n.
        let p = SimpleUidCounting::new(2);
        let outcome = run_simple_uid(&p, 3, 11, 10_000_000);
        assert!(outcome.terminated);
        assert!(outcome.count >= 2 && outcome.count <= 3);
        assert_eq!(outcome.exact, outcome.count == 3);
    }

    #[test]
    fn simple_uid_observation_window_logic() {
        let mut s = SimpleUidState::new(1);
        // First window fills with [2, 3].
        s.observe(2, 2);
        s.observe(3, 2);
        assert_eq!(s.first_window, vec![2, 3]);
        assert!(!s.terminated);
        // A non-matching window clears and retries.
        s.observe(3, 2);
        s.observe(2, 2);
        assert!(!s.terminated);
        assert!(s.current_window.is_empty());
        // A matching window terminates.
        s.observe(2, 2);
        s.observe(3, 2);
        assert!(s.terminated);
        assert_eq!(s.output(), 3); // saw 1 (itself), 2 and 3
                                   // Further observations are ignored.
        s.observe(9, 2);
        assert_eq!(s.output(), 3);
    }

    #[test]
    fn improved_uid_halter_is_max_and_bounds_n() {
        let p = ImprovedUidCounting::new(4);
        for (seed, n) in [(1u64, 30usize), (2, 50), (3, 80)] {
            let outcome = run_improved_uid(&p, n, seed, 200_000_000);
            assert!(outcome.halted, "n = {n} did not halt");
            assert!(outcome.halter_is_max, "n = {n}: a non-maximum agent halted");
            assert!(outcome.success, "n = {n}: output {} < n", outcome.output);
        }
    }

    #[test]
    fn improved_uid_deactivation_is_permanent() {
        let p = ImprovedUidCounting::new(2);
        let hi = ImprovedUidState::new(10);
        let lo = ImprovedUidState::new(5);
        let (hi2, lo2) = p.interact(&hi, &lo).unwrap();
        assert!(!lo2.active, "the smaller identifier is deactivated");
        assert!(hi2.active);
        assert_eq!(lo2.belongs, Some(10));
        assert_eq!(lo2.marked, 1);
        assert_eq!(hi2.count1, 1);
        // The pair presented the other way round gives the same result.
        let (lo3, hi3) = p.interact(&lo, &hi).unwrap();
        assert_eq!(lo3, lo2);
        assert_eq!(hi3, hi2);
    }

    #[test]
    fn improved_uid_greater_owner_deactivates_counter() {
        let p = ImprovedUidCounting::new(2);
        let mut v = ImprovedUidState::new(1);
        v.belongs = Some(100);
        let u = ImprovedUidState::new(50);
        let (u2, v2) = p.interact(&u, &v).unwrap();
        assert!(
            !u2.active,
            "u met an agent owned by a greater id and must deactivate"
        );
        assert_eq!(
            v2.belongs,
            Some(100),
            "ownership by the greater id is preserved"
        );
        assert!(!v2.active);
    }

    #[test]
    fn improved_uid_halting_requires_head_start() {
        let p = ImprovedUidCounting::new(3);
        let mut u = ImprovedUidState::new(10);
        let v = ImprovedUidState::new(1);
        // Mark v once.
        let (u1, v1) = p.ordered_interact(&u, &v);
        assert_eq!(u1.count1, 1);
        assert_eq!(v1.marked, 1);
        // Second meeting: count1 (=1) is still below the head start b = 3, so no second
        // marking happens yet and the agent cannot halt spuriously.
        let (u2, v2) = p.ordered_interact(&u1, &v1);
        assert_eq!(u2.count2, 0);
        assert_eq!(v2.marked, 1);
        assert!(!u2.halted);
        // Give u enough first meetings, then the second marking proceeds.
        u = u2;
        u.count1 = 3;
        let (u3, v3) = p.ordered_interact(&u, &v2);
        assert_eq!(u3.count2, 1);
        assert_eq!(v3.marked, 2);
        assert!(!u3.halted, "count1 (3) ≠ count2 (1)");
    }
}
