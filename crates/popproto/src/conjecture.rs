//! Experimental evidence for Conjecture 1 (Section 5.2).
//!
//! Conjecture 1 states that any *leaderless* protocol (all agents identical, unbounded
//! private memories, always terminating) has, as `n` grows, at least a constant
//! probability that some agent terminates after only a constant number of interactions —
//! which rules out counting any non-constant function of `n` w.h.p. without a leader.
//!
//! The experiment here instantiates the natural leaderless adaptation of the Section
//! 5.3.1 protocol: agents have no identifiers, only a constant number of communicating
//! states, and each agent privately records the *state sequence* it observes. An agent
//! terminates when its first window of `b` observed states is repeated by a later window.
//! Because the number of distinct states is constant, the multiplicities of all states
//! stay `Θ(n)` (argument (1)–(3) of the paper), so the probability that some agent sees an
//! immediate repeat — and terminates after just `2b` interactions with a wildly wrong
//! count — does not vanish as `n` grows. [`evidence_for_conjecture`] measures exactly
//! that probability.

use crate::{PopSimulation, PopulationProtocol};

/// State of an agent in the leaderless counting attempt.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LeaderlessState {
    /// Communicating state: the agent's interaction count modulo a small constant. This
    /// is all the information other agents can see.
    pub phase: u8,
    /// Private memory: states observed in the first `b` interactions.
    pub first_window: Vec<u8>,
    /// Private memory: states observed in the current window.
    pub current_window: Vec<u8>,
    /// Private memory: total interactions this agent participated in.
    pub interactions: u64,
    /// Whether the agent has terminated. Its (certainly wrong for large n) count estimate
    /// is `interactions` at termination time.
    pub terminated: bool,
}

impl LeaderlessState {
    fn new() -> LeaderlessState {
        LeaderlessState {
            phase: 0,
            first_window: Vec::new(),
            current_window: Vec::new(),
            interactions: 0,
            terminated: false,
        }
    }
}

/// The leaderless counting attempt: identical agents, `phases` communicating states,
/// window length `b`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeaderlessCounting {
    phases: u8,
    window: usize,
}

impl LeaderlessCounting {
    /// Creates the protocol with the given number of communicating states (≥ 2) and
    /// window length (≥ 1).
    ///
    /// # Panics
    /// Panics if `phases < 2` or `window == 0`.
    #[must_use]
    pub fn new(phases: u8, window: usize) -> LeaderlessCounting {
        assert!(phases >= 2, "at least two communicating states required");
        assert!(window >= 1, "the window must have positive length");
        LeaderlessCounting { phases, window }
    }

    /// The window length `b`.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    fn observe(&self, me: &LeaderlessState, other_phase: u8) -> LeaderlessState {
        let mut next = me.clone();
        if next.terminated {
            return next;
        }
        next.interactions += 1;
        next.phase = (next.phase + 1) % self.phases;
        if next.first_window.len() < self.window {
            next.first_window.push(other_phase);
            return next;
        }
        next.current_window.push(other_phase);
        if next.current_window.len() == self.window {
            if next.current_window == next.first_window {
                next.terminated = true;
            } else {
                next.current_window.clear();
            }
        }
        next
    }
}

impl PopulationProtocol for LeaderlessCounting {
    type State = LeaderlessState;

    fn initial_state(&self, _node: usize, _n: usize) -> LeaderlessState {
        LeaderlessState::new()
    }

    fn interact(
        &self,
        a: &LeaderlessState,
        b: &LeaderlessState,
    ) -> Option<(LeaderlessState, LeaderlessState)> {
        if a.terminated && b.terminated {
            return None;
        }
        Some((self.observe(a, b.phase), self.observe(b, a.phase)))
    }

    // `live_state_bound` keeps its default (`None`): the communicating phase is a small
    // constant, but the *full* states (private observation windows) diverge per agent,
    // and the pair index classifies by full state — adaptive sampling it is.

    fn name(&self) -> &str {
        "leaderless-counting-attempt"
    }
}

/// One row of the Conjecture 1 evidence table.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConjectureEvidence {
    /// Population size.
    pub n: usize,
    /// Window length `b`.
    pub window: usize,
    /// Number of trials.
    pub trials: u32,
    /// Probability that *some* agent terminates within `interaction_budget` of its own
    /// interactions (i.e. after only a constant number of interactions).
    pub early_termination_rate: f64,
    /// The per-agent interaction budget regarded as "constant" (`2b` here: the earliest
    /// possible termination).
    pub interaction_budget: u64,
    /// Mean number of global scheduler steps until the first (early or not) termination.
    pub mean_steps_to_first_termination: f64,
}

/// Measures, over `trials` runs, how often some agent of the leaderless protocol
/// terminates after only `2b` of its own interactions — the event whose non-vanishing
/// probability is exactly what Conjecture 1 predicts.
///
/// # Panics
/// Panics if `trials == 0` or `n < 2`.
#[must_use]
pub fn evidence_for_conjecture(
    protocol: &LeaderlessCounting,
    n: usize,
    trials: u32,
    seed: u64,
) -> ConjectureEvidence {
    assert!(trials > 0, "at least one trial required");
    let budget = 2 * protocol.window() as u64;
    let mut early = 0u32;
    let mut total_steps = 0.0;
    for t in 0..trials {
        let mut sim =
            PopSimulation::new(*protocol, n, seed.wrapping_add(u64::from(t) * 0x9E37_79B9));
        // The first possible termination is after 2b interactions of one agent; waiting
        // for 64·n·b steps leaves each agent an expected 128·b interactions, far beyond
        // the earliest-termination event we measure.
        let max_steps = 64 * n as u64 * protocol.window() as u64;
        let report = sim.run_until(max_steps, |states| states.iter().any(|s| s.terminated));
        total_steps += report.steps as f64;
        let early_terminator = sim
            .states()
            .iter()
            .any(|s| s.terminated && s.interactions <= budget);
        if early_terminator {
            early += 1;
        }
    }
    ConjectureEvidence {
        n,
        window: protocol.window(),
        trials,
        early_termination_rate: f64::from(early) / f64::from(trials),
        interaction_budget: budget,
        mean_steps_to_first_termination: total_steps / f64::from(trials),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observation_window_terminates_on_repeat() {
        let p = LeaderlessCounting::new(3, 2);
        let mut s = LeaderlessState::new();
        s = p.observe(&s, 1);
        s = p.observe(&s, 2);
        assert_eq!(s.first_window, vec![1, 2]);
        s = p.observe(&s, 2);
        s = p.observe(&s, 1);
        assert!(!s.terminated, "non-matching window clears");
        s = p.observe(&s, 1);
        s = p.observe(&s, 2);
        assert!(s.terminated);
        assert_eq!(s.interactions, 6);
        // Terminated agents stop observing.
        let frozen = p.observe(&s, 0);
        assert_eq!(frozen, s);
    }

    #[test]
    fn phases_cycle() {
        let p = LeaderlessCounting::new(2, 1);
        let mut s = LeaderlessState::new();
        s = p.observe(&s, 0);
        assert_eq!(s.phase, 1);
        s = p.observe(&s, 0);
        assert_eq!(s.phase, 0);
    }

    #[test]
    fn early_termination_probability_is_substantial() {
        // With 2 communicating states and window b = 2, an agent's second window matches
        // its first with probability ≈ 1/4 per attempt regardless of n — so across n
        // agents an early termination is essentially certain, and even for a single
        // agent it is a constant. This is the heart of the Conjecture 1 argument.
        let p = LeaderlessCounting::new(2, 2);
        for n in [20usize, 60] {
            let evidence = evidence_for_conjecture(&p, n, 30, 5);
            assert!(
                evidence.early_termination_rate > 0.5,
                "n = {n}: early-termination rate {} unexpectedly small",
                evidence.early_termination_rate
            );
        }
    }

    #[test]
    fn evidence_rows_are_reproducible() {
        let p = LeaderlessCounting::new(2, 2);
        let a = evidence_for_conjecture(&p, 20, 10, 99);
        let b = evidence_for_conjecture(&p, 20, 10, 99);
        assert_eq!(a, b);
    }
}
