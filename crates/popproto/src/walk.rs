//! Random-walk models behind the proof of Theorem 1 (Figure 4).
//!
//! The effective interactions of the Counting-Upper-Bound protocol form a random walk of
//! the difference `j = r0 − r1` on the line `0..=n`, starting at the head start `b`, with
//! an absorbing barrier at 0 (failure, if it happens before `r0 ≥ n/2`) and success once
//! `r0 ≥ n/2`. The paper reduces this walk to the Ehrenfest diffusion model and finally to
//! the classical gambler's-ruin problem. This module provides:
//!
//! * the exact gambler's-ruin closed form used in the proof;
//! * the `1/n^(b−2)` failure bound of Theorem 1;
//! * Monte-Carlo simulators of the exact counting walk and of the simplified ruin walk,
//!   used by experiment E3 to show that the bound is (comfortably) conservative.

use nc_core::rng::seeded;
use rand::Rng;

/// Probability of reaching position `target` before position 0, starting from `start`,
/// in a biased random walk that moves forward with probability `p` and backward with
/// probability `1 − p` (the classical ruin problem, Feller Vol. 1 §XIV.2).
///
/// # Panics
/// Panics unless `0 < p < 1` and `0 < start ≤ target`.
#[must_use]
pub fn ruin_win_probability(start: u64, target: u64, p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be strictly between 0 and 1");
    assert!(start > 0 && start <= target, "need 0 < start ≤ target");
    let q = 1.0 - p;
    if (p - q).abs() < 1e-12 {
        return start as f64 / target as f64;
    }
    let x = q / p;
    (1.0 - x.powi(start as i32)) / (1.0 - x.powi(target as i32))
}

/// The failure-probability expression derived in the proof of Theorem 1: whenever the
/// walk sits at `b − 1`, the probability of hitting 0 before returning to `b` is at most
/// `(x − 1)/(x^b − 1) ≈ 1/n^(b−1)` with `x = (n′ − b)/b`, `n′ = n/2 − 1`.
///
/// # Panics
/// Panics if `b == 0` or the population is too small for `x > 1`.
#[must_use]
pub fn per_visit_failure_probability(n: u64, b: u64) -> f64 {
    assert!(b >= 1, "head start must be at least 1");
    let n_prime = n as f64 / 2.0 - 1.0;
    let x = (n_prime - b as f64) / b as f64;
    assert!(x > 1.0, "population too small for the Theorem 1 reduction");
    (x - 1.0) / (x.powi(b as i32) - 1.0)
}

/// The overall failure bound of Theorem 1 after the union bound over at most `n`
/// repetitions: `1/n^(b−2)`.
///
/// # Panics
/// Panics if `b < 2`.
#[must_use]
pub fn theorem1_failure_bound(n: u64, b: u64) -> f64 {
    assert!(b >= 2, "the bound is vacuous for b < 2");
    (n as f64).powi(-(b as i32 - 2))
}

/// Result of a Monte-Carlo estimate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MonteCarloEstimate {
    /// Number of trials.
    pub trials: u32,
    /// Number of failures observed.
    pub failures: u32,
    /// Empirical failure probability.
    pub failure_rate: f64,
    /// Mean number of effective interactions per trial.
    pub mean_effective_interactions: f64,
}

/// Simulates the *exact* effective-interaction walk of the counting protocol: starting
/// from `i = n − b − 1` remaining `q0`s and `j = b` outstanding `q1`s, each effective
/// interaction is a first meeting with probability `i/(i + j)` and a second meeting
/// otherwise; the trial fails if `j` hits 0 while `r0 < n/2`.
///
/// This reproduces the random process of Figure 4 without the scheduling noise of the
/// full protocol, so millions of trials are cheap.
///
/// # Panics
/// Panics if `n < b + 2` or `trials == 0`.
#[must_use]
pub fn simulate_counting_walk(n: u64, b: u64, trials: u32, seed: u64) -> MonteCarloEstimate {
    assert!(n >= b + 2, "need at least b + 2 agents");
    assert!(trials > 0, "at least one trial required");
    let mut rng = seeded(seed);
    let mut failures = 0u32;
    let mut total_effective = 0u64;
    for _ in 0..trials {
        let mut i = n - b - 1; // remaining q0
        let mut j = b; // outstanding q1 (= r0 − r1)
        let mut r0 = b;
        loop {
            if 2 * r0 >= n {
                break;
            }
            if j == 0 {
                failures += 1;
                break;
            }
            if i == 0 && j == 0 {
                break;
            }
            total_effective += 1;
            let p_forward = i as f64 / (i + j) as f64;
            if rng.gen_bool(p_forward) {
                i -= 1;
                j += 1;
                r0 += 1;
            } else {
                j -= 1;
            }
        }
    }
    MonteCarloEstimate {
        trials,
        failures,
        failure_rate: f64::from(failures) / f64::from(trials),
        mean_effective_interactions: total_effective as f64 / f64::from(trials),
    }
}

/// Simulates the simplified Ehrenfest-style walk used in the proof: the walk of `j` on
/// `0..=n/2` with position-dependent probabilities `p_j = (n′ − j)/n′`, starting at `b`,
/// failing at 0 and succeeding at `n/2`.
///
/// # Panics
/// Panics if `n < 2·b + 4` or `trials == 0`.
#[must_use]
pub fn simulate_ehrenfest_walk(n: u64, b: u64, trials: u32, seed: u64) -> MonteCarloEstimate {
    assert!(trials > 0, "at least one trial required");
    let n_prime = n / 2 - 1;
    assert!(n_prime > b, "population too small for the reduction");
    let mut rng = seeded(seed);
    let mut failures = 0u32;
    let mut total_steps = 0u64;
    let target = n / 2;
    for _ in 0..trials {
        let mut j = b;
        let mut steps_this_trial = 0u64;
        loop {
            if j == 0 {
                failures += 1;
                break;
            }
            // The proof of Theorem 1 only needs the walk to avoid 0 during the first `n`
            // effective interactions (after `n` effective interactions `r0 ≥ n/2` holds
            // regardless of the position), so surviving `n` steps — or reaching the
            // success barrier — ends the trial as a success.
            if j >= target || steps_this_trial >= n {
                break;
            }
            total_steps += 1;
            steps_this_trial += 1;
            let p_forward = (n_prime - j.min(n_prime)) as f64 / n_prime as f64;
            if rng.gen_bool(p_forward) {
                j += 1;
            } else {
                j -= 1;
            }
        }
    }
    MonteCarloEstimate {
        trials,
        failures,
        failure_rate: f64::from(failures) / f64::from(trials),
        mean_effective_interactions: total_steps as f64 / f64::from(trials),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ruin_probability_sanity() {
        // Symmetric walk: linear in the starting point.
        assert!((ruin_win_probability(1, 4, 0.5) - 0.25).abs() < 1e-12);
        assert!((ruin_win_probability(3, 4, 0.5) - 0.75).abs() < 1e-12);
        // Strong forward drift: winning from 1 is almost certain.
        assert!(ruin_win_probability(1, 10, 0.99) > 0.98);
        // Strong backward drift: winning from 1 is unlikely.
        assert!(ruin_win_probability(1, 10, 0.01) < 0.02);
        // Monotone in the starting point.
        assert!(ruin_win_probability(2, 10, 0.3) > ruin_win_probability(1, 10, 0.3));
    }

    #[test]
    fn per_visit_failure_is_close_to_inverse_power() {
        // The proof approximates (x − 1)/(x^b − 1) ≈ x^−(b−1) with x = (n′ − b)/b,
        // n′ = n/2 − 1 (the paper then absorbs the b-dependent constants to state the
        // looser 1/n^(b−2) bound of Theorem 1).
        let n = 1000;
        for b in [3u64, 4, 5] {
            let exact = per_visit_failure_probability(n, b);
            let x = (n as f64 / 2.0 - 1.0 - b as f64) / b as f64;
            let approx = x.powi(-(b as i32 - 1));
            assert!(exact < 10.0 * approx, "b = {b}: {exact} vs {approx}");
            assert!(exact > approx / 10.0, "b = {b}: {exact} vs {approx}");
        }
    }

    #[test]
    fn theorem1_bound_shrinks_with_b_and_n() {
        assert!(theorem1_failure_bound(100, 4) < theorem1_failure_bound(100, 3));
        assert!(theorem1_failure_bound(1000, 3) < theorem1_failure_bound(100, 3));
        assert!((theorem1_failure_bound(100, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn counting_walk_failure_is_below_the_bound() {
        // Empirical failure probability must be (far) below the Theorem 1 bound.
        for b in [3u64, 4] {
            let est = simulate_counting_walk(500, b, 20_000, 42);
            assert!(
                est.failure_rate <= theorem1_failure_bound(500, b),
                "b = {b}: rate {} exceeds bound {}",
                est.failure_rate,
                theorem1_failure_bound(500, b)
            );
        }
    }

    #[test]
    fn counting_walk_effective_interactions_are_about_n() {
        // Success requires roughly n/2 + r1 ≤ n effective interactions.
        let est = simulate_counting_walk(1000, 4, 2_000, 7);
        assert!(est.mean_effective_interactions >= 500.0 - 4.0);
        assert!(est.mean_effective_interactions <= 1000.0);
    }

    #[test]
    fn ehrenfest_walk_rarely_fails_with_decent_head_start() {
        let est = simulate_ehrenfest_walk(400, 5, 20_000, 3);
        assert!(est.failure_rate < 0.01, "rate {}", est.failure_rate);
    }

    #[test]
    fn ehrenfest_walk_fails_often_with_head_start_one() {
        // With b = 1 the very first backward step is fatal, which happens with
        // probability ≈ b/n′ per visit but the walk visits b−1 = 0 immediately with
        // probability q ≈ 1/n′ only — instead compare against b = 5 to see the trend.
        let weak = simulate_ehrenfest_walk(400, 1, 50_000, 9);
        let strong = simulate_ehrenfest_walk(400, 5, 50_000, 9);
        assert!(weak.failure_rate > strong.failure_rate);
    }
}
