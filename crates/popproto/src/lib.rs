//! Population-protocol substrate and the terminating probabilistic counting protocols of
//! Section 5 of Michail (2015).
//!
//! The geometric model degenerates, for the purposes of Section 5, to a classical
//! population protocol: `n` agents on a complete interaction graph, a uniform random
//! scheduler selecting one of the `n(n−1)/2` pairs per step, and (for the counting
//! protocols) a distinguished leader with unbounded local memory.
//!
//! Provided here:
//!
//! * [`PopulationProtocol`] / [`PopSimulation`] — the engine, a thin wrapper over the
//!   shared `nc-core` runtime (the [`engine::Clique`] adapter runs a population protocol
//!   as a geometric protocol that never bonds), reporting through the same
//!   [`ExecutionStats`]/[`RunReport`] vocabulary as the shape constructors;
//! * [`counting`] — the **Counting-Upper-Bound** protocol of Theorem 1 (always terminates,
//!   w.h.p. counts at least `n/2`);
//! * [`uid_counting`] — counting with unique identifiers: the simple protocol of
//!   Theorem 2 and the improved Protocol 3 of Theorem 3;
//! * [`conjecture`] — a leaderless counting attempt used as experimental evidence for
//!   Conjecture 1;
//! * [`walk`] — the Ehrenfest / gambler's-ruin random-walk models used in the proof of
//!   Theorem 1 (closed forms and Monte-Carlo simulators).
//!
//! # Example
//!
//! ```
//! use nc_popproto::counting::{CountingUpperBound, run_counting};
//!
//! let outcome = run_counting(&CountingUpperBound::new(4), 100, 7);
//! assert!(outcome.halted);
//! assert!(outcome.r0 >= 50, "w.h.p. the leader counts at least n/2");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conjecture;
pub mod counting;
pub mod engine;
pub mod uid_counting;
pub mod walk;

pub use engine::{Clique, PopSimulation, PopulationProtocol};
pub use nc_core::{ExecutionStats, RunReport, StopReason};
