//! The population-protocol engine: a complete interaction graph under the uniform random
//! scheduler.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;

/// A population protocol on a complete interaction graph.
///
/// Interactions are unordered: when the scheduler selects the pair `{u, v}` the engine
/// first asks `interact(state(u), state(v))` and, if that is ineffective (`None`), the
/// symmetric `interact(state(v), state(u))`.
pub trait PopulationProtocol {
    /// Per-agent state.
    type State: Clone + PartialEq + Debug;

    /// Initial state of agent `node` in a population of `n` agents. Leader-based
    /// protocols conventionally make agent 0 the leader; UID-based protocols may derive
    /// an identifier from `node`.
    fn initial_state(&self, node: usize, n: usize) -> Self::State;

    /// The transition function; `None` means the interaction is ineffective.
    fn interact(&self, a: &Self::State, b: &Self::State) -> Option<(Self::State, Self::State)>;

    /// Whether `state` is a halted state. Interactions involving a halted agent are
    /// ineffective by definition.
    fn is_halted(&self, _state: &Self::State) -> bool {
        false
    }

    /// Short protocol name for reports.
    fn name(&self) -> &str {
        "population protocol"
    }
}

impl<P: PopulationProtocol + ?Sized> PopulationProtocol for &P {
    type State = P::State;

    fn initial_state(&self, node: usize, n: usize) -> Self::State {
        (**self).initial_state(node, n)
    }

    fn interact(&self, a: &Self::State, b: &Self::State) -> Option<(Self::State, Self::State)> {
        (**self).interact(a, b)
    }

    fn is_halted(&self, state: &Self::State) -> bool {
        (**self).is_halted(state)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// Summary of a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PopRunReport {
    /// Scheduler selections during this call (effective or not).
    pub steps: u64,
    /// Effective interactions during this call.
    pub effective_steps: u64,
    /// Whether the stop condition was reached (as opposed to the step budget running out).
    pub condition_met: bool,
}

/// A running execution of a population protocol.
pub struct PopSimulation<P: PopulationProtocol> {
    protocol: P,
    states: Vec<P::State>,
    rng: StdRng,
    steps: u64,
    effective_steps: u64,
}

impl<P: PopulationProtocol> PopSimulation<P> {
    /// Creates the initial configuration on `n` agents with a seeded scheduler.
    ///
    /// # Panics
    /// Panics if `n < 2`.
    #[must_use]
    pub fn new(protocol: P, n: usize, seed: u64) -> PopSimulation<P> {
        assert!(n >= 2, "a population protocol needs at least two agents");
        let states = (0..n).map(|i| protocol.initial_state(i, n)).collect();
        PopSimulation {
            protocol,
            states,
            rng: StdRng::seed_from_u64(seed),
            steps: 0,
            effective_steps: 0,
        }
    }

    /// Population size.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the population is empty (never true).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The protocol being executed.
    #[must_use]
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Current state of agent `node`.
    ///
    /// # Panics
    /// Panics if `node ≥ n`.
    #[must_use]
    pub fn state(&self, node: usize) -> &P::State {
        &self.states[node]
    }

    /// All agent states in agent order.
    #[must_use]
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// Total scheduler selections so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Total effective interactions so far.
    #[must_use]
    pub fn effective_steps(&self) -> u64 {
        self.effective_steps
    }

    /// Agents currently in a halted state.
    #[must_use]
    pub fn halted_agents(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.protocol.is_halted(&self.states[i]))
            .collect()
    }

    /// Performs one scheduler step (one uniformly random unordered pair interacts).
    /// Returns whether the interaction was effective.
    pub fn step(&mut self) -> bool {
        let n = self.len();
        let a = self.rng.gen_range(0..n);
        let mut b = self.rng.gen_range(0..n - 1);
        if b >= a {
            b += 1;
        }
        self.steps += 1;
        if self.protocol.is_halted(&self.states[a]) || self.protocol.is_halted(&self.states[b]) {
            return false;
        }
        let attempt = self
            .protocol
            .interact(&self.states[a], &self.states[b])
            .map(|(sa, sb)| (sa, sb, false))
            .or_else(|| {
                self.protocol
                    .interact(&self.states[b], &self.states[a])
                    .map(|(sb, sa)| (sa, sb, true))
            });
        let Some((new_a, new_b, _)) = attempt else {
            return false;
        };
        let effective = new_a != self.states[a] || new_b != self.states[b];
        self.states[a] = new_a;
        self.states[b] = new_b;
        if effective {
            self.effective_steps += 1;
        }
        effective
    }

    /// Runs until `predicate` holds on the state slice (checked before the first step and
    /// after every step) or until `max_steps` further selections have been made.
    pub fn run_until(
        &mut self,
        max_steps: u64,
        mut predicate: impl FnMut(&[P::State]) -> bool,
    ) -> PopRunReport {
        let start_steps = self.steps;
        let start_effective = self.effective_steps;
        let mut condition_met = predicate(&self.states);
        while !condition_met && self.steps - start_steps < max_steps {
            self.step();
            condition_met = predicate(&self.states);
        }
        PopRunReport {
            steps: self.steps - start_steps,
            effective_steps: self.effective_steps - start_effective,
            condition_met,
        }
    }

    /// Runs until some agent halts (or the step budget runs out).
    pub fn run_until_any_halted(&mut self, max_steps: u64) -> PopRunReport {
        let protocol = &self.protocol;
        // Work around borrowing by re-checking inside the closure via raw index scan.
        let mut report = PopRunReport {
            steps: 0,
            effective_steps: 0,
            condition_met: false,
        };
        let start_steps = self.steps;
        let start_effective = self.effective_steps;
        let mut halted = self.states.iter().any(|s| protocol.is_halted(s));
        while !halted && self.steps - start_steps < max_steps {
            self.step();
            halted = self.states.iter().any(|s| self.protocol.is_halted(s));
        }
        report.steps = self.steps - start_steps;
        report.effective_steps = self.effective_steps - start_effective;
        report.condition_met = halted;
        report
    }

    /// Counts agents per distinct state (useful for small finite state spaces).
    #[must_use]
    pub fn state_census(&self) -> Vec<(P::State, usize)> {
        let mut census: Vec<(P::State, usize)> = Vec::new();
        for s in &self.states {
            if let Some(entry) = census.iter_mut().find(|(state, _)| state == s) {
                entry.1 += 1;
            } else {
                census.push((s.clone(), 1));
            }
        }
        census
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic epidemic: one infected agent spreads to everyone.
    struct Epidemic;

    impl PopulationProtocol for Epidemic {
        type State = bool;

        fn initial_state(&self, node: usize, _n: usize) -> bool {
            node == 0
        }

        fn interact(&self, a: &bool, b: &bool) -> Option<(bool, bool)> {
            if *a && !*b {
                Some((true, true))
            } else {
                None
            }
        }
    }

    #[test]
    fn epidemic_infects_everyone() {
        let mut sim = PopSimulation::new(Epidemic, 50, 3);
        let report = sim.run_until(1_000_000, |states| states.iter().all(|&s| s));
        assert!(report.condition_met);
        assert_eq!(report.effective_steps, 49);
        assert!(report.steps >= 49);
        assert_eq!(sim.state_census(), vec![(true, 50)]);
    }

    #[test]
    fn symmetric_rule_applies_in_both_orders() {
        // The rule is written as (infected, susceptible); the engine must also apply it
        // when the pair is presented the other way round — statistically both orders
        // occur, so a complete infection proves both work.
        let mut sim = PopSimulation::new(Epidemic, 10, 11);
        sim.run_until(100_000, |states| states.iter().all(|&s| s));
        assert!(sim.states().iter().all(|&s| s));
    }

    /// A protocol where agents halt after their first effective interaction.
    struct OneShot;

    #[derive(Clone, PartialEq, Debug)]
    enum O {
        Fresh,
        Done,
    }

    impl PopulationProtocol for OneShot {
        type State = O;

        fn initial_state(&self, _node: usize, _n: usize) -> O {
            O::Fresh
        }

        fn interact(&self, a: &O, b: &O) -> Option<(O, O)> {
            if *a == O::Fresh && *b == O::Fresh {
                Some((O::Done, O::Done))
            } else {
                None
            }
        }

        fn is_halted(&self, state: &O) -> bool {
            *state == O::Done
        }
    }

    #[test]
    fn halted_agents_no_longer_interact() {
        let mut sim = PopSimulation::new(OneShot, 4, 5);
        let report = sim.run_until_any_halted(10_000);
        assert!(report.condition_met);
        let halted_now = sim.halted_agents().len();
        assert_eq!(halted_now, 2);
        // Remaining fresh agents can still pair up, but the halted ones never change.
        sim.run_until(10_000, |states| {
            states.iter().filter(|s| **s == O::Done).count() == 4
        });
        assert_eq!(sim.halted_agents().len(), 4);
        assert_eq!(sim.effective_steps(), 2);
    }

    #[test]
    fn reproducible_with_same_seed() {
        let mut a = PopSimulation::new(Epidemic, 20, 99);
        let mut b = PopSimulation::new(Epidemic, 20, 99);
        let ra = a.run_until(100_000, |s| s.iter().all(|&x| x));
        let rb = b.run_until(100_000, |s| s.iter().all(|&x| x));
        assert_eq!(ra, rb);
    }

    #[test]
    #[should_panic(expected = "at least two agents")]
    fn tiny_population_rejected() {
        let _ = PopSimulation::new(Epidemic, 1, 0);
    }
}
