//! The population-protocol engine: a complete interaction graph under the uniform random
//! scheduler, built on the shared `nc-core` runtime.
//!
//! A population protocol is the degenerate geometric model in which geometry never
//! matters: agents are free nodes that never bond, so every unordered pair stays
//! permissible forever and the uniform scheduler over permissible node-port pairs is
//! exactly the classical uniform scheduler over agent pairs. The [`Clique`] adapter
//! embeds a [`PopulationProtocol`] into the geometric [`Protocol`] trait (ports and
//! bonds are ignored, transitions never activate a bond), and [`PopSimulation`] is a
//! thin wrapper around the shared [`Simulation`] runtime — one stepping loop, one
//! [`ExecutionStats`]/[`RunReport`] vocabulary for constructors and counting protocols
//! alike. The previous hand-rolled stepping loop in this module has been deleted.

use nc_core::{
    ExecutionStats, NodeId, Protocol, RunReport, Simulation, SimulationConfig, Transition, World,
};
use nc_geometry::Dir;
use std::fmt::Debug;

/// A population protocol on a complete interaction graph.
///
/// Interactions are unordered: when the scheduler selects the pair `{u, v}` the engine
/// first asks `interact(state(u), state(v))` and, if that is ineffective (`None`), the
/// symmetric `interact(state(v), state(u))`.
///
/// Protocols and states are `Send + Sync` (inherited from the geometric
/// [`Protocol`] trait through the [`Clique`] adapter): transition tables are pure
/// shared data, and the sharded world runtime may fan index maintenance out across
/// threads.
pub trait PopulationProtocol: Send + Sync {
    /// Per-agent state.
    type State: Clone + PartialEq + Debug + Send + Sync;

    /// Initial state of agent `node` in a population of `n` agents. Leader-based
    /// protocols conventionally make agent 0 the leader; UID-based protocols may derive
    /// an identifier from `node`.
    fn initial_state(&self, node: usize, n: usize) -> Self::State;

    /// The transition function; `None` means the interaction is ineffective.
    fn interact(&self, a: &Self::State, b: &Self::State) -> Option<(Self::State, Self::State)>;

    /// Whether `state` is a halted state. Interactions involving a halted agent are
    /// ineffective by definition.
    fn is_halted(&self, _state: &Self::State) -> bool {
        false
    }

    /// An upper bound on the number of *distinct* states simultaneously live in any
    /// reachable configuration, if the protocol can guarantee one; `None` means
    /// unbounded or unknown.
    ///
    /// This is the state-diversity pre-check for batched sampling: population
    /// protocols are the all-singletons special case of the permissible-pair index
    /// (pure class counting, no geometry), so a protocol whose live diversity fits the
    /// index's class cap ([`nc_core::MAX_LIVE_STATE_CLASSES`]) gets Gillespie-style
    /// geometric jumps for free — [`PopSimulation::new`] switches it to
    /// [`nc_core::SamplingMode::Batched`]. Note the bound is on *simultaneously live*
    /// states, not the state space: the counting leader walks through unboundedly many
    /// counter states, but only one leader state is live at a time, so its bound is a
    /// small constant. UID-style protocols (every agent holds a distinct identifier)
    /// are unbounded by design and must return `None`, keeping the adaptive sampler.
    fn live_state_bound(&self) -> Option<usize> {
        None
    }

    /// Short protocol name for reports.
    fn name(&self) -> &str {
        "population protocol"
    }
}

impl<P: PopulationProtocol + ?Sized> PopulationProtocol for &P {
    type State = P::State;

    fn initial_state(&self, node: usize, n: usize) -> Self::State {
        (**self).initial_state(node, n)
    }

    fn interact(&self, a: &Self::State, b: &Self::State) -> Option<(Self::State, Self::State)> {
        (**self).interact(a, b)
    }

    fn is_halted(&self, state: &Self::State) -> bool {
        (**self).is_halted(state)
    }

    fn live_state_bound(&self) -> Option<usize> {
        (**self).live_state_bound()
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// Embeds a population protocol into the geometric model: ports are ignored, bonds are
/// never activated, so all agents remain free singleton components and every agent pair
/// stays permissible — the clique interaction graph.
#[derive(Clone, Copy, Debug)]
pub struct Clique<P>(P);

impl<P: PopulationProtocol> Clique<P> {
    /// Wraps a population protocol for execution on the shared runtime.
    #[must_use]
    pub fn new(protocol: P) -> Clique<P> {
        Clique(protocol)
    }

    /// The wrapped population protocol.
    #[must_use]
    pub fn inner(&self) -> &P {
        &self.0
    }
}

impl<P: PopulationProtocol> Protocol for Clique<P> {
    type State = P::State;

    fn initial_state(&self, node: NodeId, n: usize) -> Self::State {
        self.0.initial_state(node.index(), n)
    }

    fn transition(
        &self,
        a: &Self::State,
        _pa: Dir,
        b: &Self::State,
        _pb: Dir,
        _bonded: bool,
    ) -> Option<Transition<Self::State>> {
        self.0.interact(a, b).map(|(new_a, new_b)| Transition {
            a: new_a,
            b: new_b,
            bond: false,
        })
    }

    fn is_halted(&self, state: &Self::State) -> bool {
        self.0.is_halted(state)
    }

    fn name(&self) -> &str {
        self.0.name()
    }
}

/// A running execution of a population protocol on the shared runtime.
pub struct PopSimulation<P: PopulationProtocol> {
    sim: Simulation<Clique<P>>,
}

impl<P: PopulationProtocol> PopSimulation<P> {
    /// Creates the initial configuration on `n` agents with a seeded scheduler.
    ///
    /// Protocols that bound their live state diversity below the pair index's class
    /// cap ([`PopulationProtocol::live_state_bound`]) run under
    /// [`nc_core::SamplingMode::Batched`] — on a clique the permissible count is the
    /// constant `ports²·C(n, 2)`, so the batched sampler is exactly a Gillespie-style
    /// jump process over state-class counts. Protocols without such a bound (UID-based
    /// and leaderless-window protocols, whose agents all hold distinct states) keep
    /// the adaptive sampler, which is the same fallback the index would degrade to
    /// after overflowing — the pre-check just skips the doomed build.
    ///
    /// # Panics
    /// Panics if `n < 2`.
    #[must_use]
    pub fn new(protocol: P, n: usize, seed: u64) -> PopSimulation<P> {
        assert!(n >= 2, "a population protocol needs at least two agents");
        let sampling = match protocol.live_state_bound() {
            Some(bound) if bound <= nc_core::MAX_LIVE_STATE_CLASSES => {
                nc_core::SamplingMode::Batched
            }
            _ => nc_core::SamplingMode::Adaptive,
        };
        let config = SimulationConfig::new(n)
            .with_seed(seed)
            .with_sampling(sampling);
        PopSimulation {
            sim: Simulation::new(Clique::new(protocol), config),
        }
    }

    /// The sampling mode the diversity pre-check selected for this execution.
    #[must_use]
    pub fn sampling_mode(&self) -> nc_core::SamplingMode {
        self.sim.config().sampling
    }

    /// Population size.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sim.world().len()
    }

    /// Whether the population is empty (never true).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sim.world().is_empty()
    }

    /// The protocol being executed.
    #[must_use]
    pub fn protocol(&self) -> &P {
        self.sim.world().protocol().inner()
    }

    /// The underlying geometric world (a clique of free nodes).
    #[must_use]
    pub fn world(&self) -> &World<Clique<P>> {
        self.sim.world()
    }

    /// Current state of agent `node`.
    ///
    /// # Panics
    /// Panics if `node ≥ n`.
    #[must_use]
    pub fn state(&self, node: usize) -> &P::State {
        self.sim.world().state(NodeId::new(node as u32))
    }

    /// All agent states in agent order.
    #[must_use]
    pub fn states(&self) -> &[P::State] {
        self.sim.world().state_slice()
    }

    /// The statistics accumulated so far (shared vocabulary with the constructors).
    #[must_use]
    pub fn stats(&self) -> ExecutionStats {
        self.sim.stats()
    }

    /// Total scheduler selections so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.sim.stats().steps
    }

    /// Total effective interactions so far.
    #[must_use]
    pub fn effective_steps(&self) -> u64 {
        self.sim.stats().effective_steps
    }

    /// Agents currently in a halted state.
    #[must_use]
    pub fn halted_agents(&self) -> Vec<usize> {
        self.sim
            .world()
            .halted_nodes()
            .into_iter()
            .map(NodeId::index)
            .collect()
    }

    /// Performs one scheduler step (one uniformly random unordered pair interacts).
    /// Returns whether the interaction was effective.
    pub fn step(&mut self) -> bool {
        let before = self.sim.stats().effective_steps;
        let stepped = self.sim.step();
        debug_assert!(
            stepped,
            "a clique of n ≥ 2 agents always has permissible pairs"
        );
        self.sim.stats().effective_steps > before
    }

    /// Runs until `predicate` holds on the state slice (checked before the first step and
    /// after every step) or until `max_steps` further selections have been made.
    pub fn run_until(
        &mut self,
        max_steps: u64,
        mut predicate: impl FnMut(&[P::State]) -> bool,
    ) -> RunReport {
        self.sim.config_mut().max_steps = max_steps;
        self.sim.run_until(|world| predicate(world.state_slice()))
    }

    /// Runs until some agent halts (or the step budget runs out).
    pub fn run_until_any_halted(&mut self, max_steps: u64) -> RunReport {
        self.sim.config_mut().max_steps = max_steps;
        self.sim.run_until_any_halted()
    }

    /// Counts agents per distinct state (useful for small finite state spaces).
    #[must_use]
    pub fn state_census(&self) -> Vec<(P::State, usize)> {
        let mut census: Vec<(P::State, usize)> = Vec::new();
        for s in self.states() {
            if let Some(entry) = census.iter_mut().find(|(state, _)| state == s) {
                entry.1 += 1;
            } else {
                census.push((s.clone(), 1));
            }
        }
        census
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic epidemic: one infected agent spreads to everyone.
    struct Epidemic;

    impl PopulationProtocol for Epidemic {
        type State = bool;

        fn initial_state(&self, node: usize, _n: usize) -> bool {
            node == 0
        }

        fn interact(&self, a: &bool, b: &bool) -> Option<(bool, bool)> {
            if *a && !*b {
                Some((true, true))
            } else {
                None
            }
        }
    }

    #[test]
    fn epidemic_infects_everyone() {
        let mut sim = PopSimulation::new(Epidemic, 50, 3);
        let report = sim.run_until(1_000_000, |states| states.iter().all(|&s| s));
        assert!(report.condition_met());
        assert_eq!(report.effective_steps, 49);
        assert!(report.steps >= 49);
        assert_eq!(sim.state_census(), vec![(true, 50)]);
    }

    #[test]
    fn symmetric_rule_applies_in_both_orders() {
        // The rule is written as (infected, susceptible); the engine must also apply it
        // when the pair is presented the other way round — statistically both orders
        // occur, so a complete infection proves both work.
        let mut sim = PopSimulation::new(Epidemic, 10, 11);
        sim.run_until(100_000, |states| states.iter().all(|&s| s));
        assert!(sim.states().iter().all(|&s| s));
    }

    #[test]
    fn the_clique_world_stays_bond_free() {
        // The adapter never activates bonds: all agents remain free singleton
        // components, which is exactly what makes the uniform scheduler over node-port
        // pairs equal to the uniform scheduler over agent pairs.
        let mut sim = PopSimulation::new(Epidemic, 12, 4);
        sim.run_until(50_000, |states| states.iter().all(|&s| s));
        assert_eq!(sim.world().bond_count(), 0);
        assert_eq!(sim.world().component_count(), 12);
        assert!(sim.world().check_invariants());
    }

    /// A protocol where agents halt after their first effective interaction.
    struct OneShot;

    #[derive(Clone, PartialEq, Debug)]
    enum O {
        Fresh,
        Done,
    }

    impl PopulationProtocol for OneShot {
        type State = O;

        fn initial_state(&self, _node: usize, _n: usize) -> O {
            O::Fresh
        }

        fn interact(&self, a: &O, b: &O) -> Option<(O, O)> {
            if *a == O::Fresh && *b == O::Fresh {
                Some((O::Done, O::Done))
            } else {
                None
            }
        }

        fn is_halted(&self, state: &O) -> bool {
            *state == O::Done
        }
    }

    #[test]
    fn halted_agents_no_longer_interact() {
        let mut sim = PopSimulation::new(OneShot, 4, 5);
        let report = sim.run_until_any_halted(10_000);
        assert!(report.condition_met());
        let halted_now = sim.halted_agents().len();
        assert_eq!(halted_now, 2);
        // Remaining fresh agents can still pair up, but the halted ones never change.
        sim.run_until(10_000, |states| {
            states.iter().filter(|s| **s == O::Done).count() == 4
        });
        assert_eq!(sim.halted_agents().len(), 4);
        assert_eq!(sim.effective_steps(), 2);
    }

    #[test]
    fn reproducible_with_same_seed() {
        let mut a = PopSimulation::new(Epidemic, 20, 99);
        let mut b = PopSimulation::new(Epidemic, 20, 99);
        let ra = a.run_until(100_000, |s| s.iter().all(|&x| x));
        let rb = b.run_until(100_000, |s| s.iter().all(|&x| x));
        assert_eq!(ra, rb);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    #[should_panic(expected = "at least two agents")]
    fn tiny_population_rejected() {
        let _ = PopSimulation::new(Epidemic, 1, 0);
    }

    /// Epidemic with an explicit diversity bound (two live states: infected or not).
    struct BoundedEpidemic;

    impl PopulationProtocol for BoundedEpidemic {
        type State = bool;

        fn initial_state(&self, node: usize, _n: usize) -> bool {
            node == 0
        }

        fn interact(&self, a: &bool, b: &bool) -> Option<(bool, bool)> {
            Epidemic.interact(a, b)
        }

        fn live_state_bound(&self) -> Option<usize> {
            Some(2)
        }
    }

    /// Claims a bound far above the class cap: the pre-check must refuse it.
    struct OverCapProtocol;

    impl PopulationProtocol for OverCapProtocol {
        type State = u32;

        fn initial_state(&self, node: usize, _n: usize) -> u32 {
            node as u32
        }

        fn interact(&self, _a: &u32, _b: &u32) -> Option<(u32, u32)> {
            None
        }

        fn live_state_bound(&self) -> Option<usize> {
            Some(nc_core::MAX_LIVE_STATE_CLASSES + 1)
        }
    }

    #[test]
    fn diversity_precheck_selects_the_sampling_mode() {
        // Bounded diversity within the cap → batched; no bound (the default) or a
        // bound above the cap → adaptive.
        let bounded = PopSimulation::new(BoundedEpidemic, 8, 1);
        assert_eq!(bounded.sampling_mode(), nc_core::SamplingMode::Batched);
        let unbounded = PopSimulation::new(Epidemic, 8, 1);
        assert_eq!(unbounded.sampling_mode(), nc_core::SamplingMode::Adaptive);
        let over_cap = PopSimulation::new(OverCapProtocol, 8, 1);
        assert_eq!(over_cap.sampling_mode(), nc_core::SamplingMode::Adaptive);
    }

    #[test]
    fn batched_epidemic_matches_the_adaptive_outcome() {
        // Same protocol under both samplers: the trajectory distributions are
        // identical, so the guaranteed outcome (everyone infected, exactly n − 1
        // effective interactions) must hold under batched jumps too.
        let mut sim = PopSimulation::new(BoundedEpidemic, 50, 3);
        let report = sim.run_until(1_000_000, |states| states.iter().all(|&s| s));
        assert!(report.condition_met());
        assert_eq!(report.effective_steps, 49);
        assert!(
            sim.stats().skipped_steps > 0,
            "a 50-agent epidemic tail must skip ineffective selections in bulk"
        );
        assert!(sim.world().check_invariants());
        sim.world()
            .validate_pair_index()
            .expect("the clique pair index stays exact");
    }
}
