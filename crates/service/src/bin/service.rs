//! The `service` binary: queue + worker pool + HTTP tier in one process.
//!
//! ```text
//! service [--port P] [--workers W] [--slice S] [--seed SEED] [--smoke]
//! ```
//!
//! Default mode binds `127.0.0.1:P` (an ephemeral port when `--port 0`), prints the
//! bound address, and serves until killed. `--smoke` is the CI gate: bind an
//! ephemeral port, then act as the service's own HTTP client — submit one Square
//! job plus a crash-injected twin, poll both to completion over real sockets,
//! fetch the reports, and require the crash-recovered report to be byte-identical
//! to the uncrashed one. The gate then scrapes `GET /metrics` and fails on a
//! structurally ill-formed exposition or any missing required family
//! (`nc_service::metrics::REQUIRED_FAMILIES`). Exits 0 on success, 1 with a
//! diagnostic on any failure.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use nc_service::client;
use nc_service::http::{serve, ServiceHandle};
use nc_service::worker::{spawn_pool, WorkerConfig};
use tiny_http::Server;

struct Args {
    port: u16,
    workers: usize,
    slice: u64,
    seed: u64,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        port: 7878,
        workers: 2,
        slice: 50_000,
        seed: 0xC0FFEE,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut numeric = |what: &str| -> Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("{what} needs a value"))?
                .parse()
                .map_err(|_| format!("{what} needs a number"))
        };
        match arg.as_str() {
            "--port" => {
                args.port =
                    u16::try_from(numeric("--port")?).map_err(|_| "--port is 16-bit".to_string())?
            }
            "--workers" => {
                args.workers = usize::try_from(numeric("--workers")?).unwrap_or(1).max(1)
            }
            "--slice" => args.slice = numeric("--slice")?.max(1),
            "--seed" => args.seed = numeric("--seed")?,
            "--smoke" => args.smoke = true,
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("service: {e}");
            return ExitCode::FAILURE;
        }
    };
    let port = if args.smoke { 0 } else { args.port };
    let server = match Server::http(("127.0.0.1", port)) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("service: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = match server.server_addr() {
        Ok(addr) => addr,
        Err(e) => {
            eprintln!("service: no local address: {e}");
            return ExitCode::FAILURE;
        }
    };
    let service = ServiceHandle::new(args.seed);
    let stop = Arc::new(AtomicBool::new(false));
    let config = WorkerConfig {
        // Smoke mode forces small slices so the crash-injected job exercises
        // several checkpoint/resume boundaries even on a tiny population.
        slice: if args.smoke {
            args.slice.min(256)
        } else {
            args.slice
        },
        idle_poll: Duration::from_millis(2),
    };
    let workers = spawn_pool(&service, &stop, config, args.workers);
    println!(
        "service: listening on http://{addr} ({} workers)",
        args.workers
    );

    let outcome = if args.smoke {
        let stopper = server.stopper();
        let service_for_http = service.clone();
        let stop_for_http = Arc::clone(&stop);
        let http_thread =
            std::thread::spawn(move || serve(&server, &service_for_http, &stop_for_http));
        let result = smoke(addr);
        stop.store(true, Ordering::SeqCst);
        stopper.stop();
        let _ = http_thread.join();
        result
    } else {
        serve(&server, &service, &stop);
        stop.store(true, Ordering::SeqCst);
        Ok(())
    };
    for worker in workers {
        let _ = worker.join();
    }
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("service: smoke FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The self-contained smoke gate (see the module docs). Slices are kept small so
/// the crash-injected job genuinely exercises checkpoint/resume several times.
fn smoke(addr: SocketAddr) -> Result<(), String> {
    let submit = |body: &str| -> Result<u64, String> {
        let exchange =
            client::request(addr, "POST", "/jobs", body).map_err(|e| format!("submit: {e}"))?;
        if exchange.status != 201 {
            return Err(format!(
                "submit answered {}: {}",
                exchange.status, exchange.body
            ));
        }
        exchange
            .body
            .trim()
            .trim_start_matches("{\"id\": ")
            .trim_end_matches('}')
            .parse()
            .map_err(|_| format!("unparsable submit answer: {}", exchange.body))
    };

    let health =
        client::request(addr, "GET", "/healthz", "").map_err(|e| format!("health: {e}"))?;
    if health.status != 200 {
        return Err(format!("healthz answered {}", health.status));
    }

    let clean = submit("protocol=square&n=16&seed=11&tenant=smoke")?;
    let crashed = submit("protocol=square&n=16&seed=11&tenant=smoke&crash_after_slices=1")?;

    for id in [clean, crashed] {
        let last = client::poll_until(
            addr,
            &format!("/jobs/{id}"),
            3000,
            Duration::from_millis(5),
            |exchange| {
                exchange.body.contains("\"state\": \"done\"")
                    || exchange.body.contains("\"state\": \"failed\"")
            },
        )
        .map_err(|e| format!("poll job {id}: {e}"))?;
        if !last.body.contains("\"state\": \"done\"") {
            return Err(format!("job {id} did not finish: {}", last.body));
        }
    }

    let report = |id: u64| -> Result<String, String> {
        let exchange = client::request(addr, "GET", &format!("/jobs/{id}/report"), "")
            .map_err(|e| format!("report {id}: {e}"))?;
        if exchange.status != 200 {
            return Err(format!("report {id} answered {}", exchange.status));
        }
        Ok(exchange.body)
    };
    let clean_report = report(clean)?;
    let crashed_report = report(crashed)?;
    if clean_report != crashed_report {
        return Err(format!(
            "crash-recovered report diverged:\n  clean:   {clean_report}  crashed: {crashed_report}"
        ));
    }
    if !clean_report.contains("\"completed\": true") {
        return Err(format!(
            "report does not confirm completion: {clean_report}"
        ));
    }

    let crashed_status = client::request(addr, "GET", &format!("/jobs/{crashed}"), "")
        .map_err(|e| format!("status: {e}"))?;
    if !crashed_status.body.contains("\"crashes\": 1") {
        return Err(format!(
            "the injected crash did not register: {}",
            crashed_status.body
        ));
    }

    let rows = client::request(addr, "GET", "/stats/rows", "").map_err(|e| format!("rows: {e}"))?;
    if rows.status != 200 || !rows.body.contains("\"protocol\": \"square\"") {
        return Err(format!("rows answered {}: {}", rows.status, rows.body));
    }

    // The metrics gate: the scrape must be structurally valid Prometheus text,
    // expose every required family, and reflect the work the smoke run just did.
    let scrape =
        client::request(addr, "GET", "/metrics", "").map_err(|e| format!("metrics: {e}"))?;
    if scrape.status != 200 {
        return Err(format!("/metrics answered {}", scrape.status));
    }
    nc_obs::validate_prometheus_text(&scrape.body)
        .map_err(|e| format!("/metrics scrape is ill-formed: {e}"))?;
    for family in nc_service::metrics::REQUIRED_FAMILIES {
        if !scrape.body.contains(&format!("# TYPE {family} ")) {
            return Err(format!("/metrics scrape is missing family {family}"));
        }
    }
    for evidence in [
        "service_jobs_submitted_total 2",
        "service_jobs_done_total 2",
        "service_crashes_total 1",
        "service_retries_total 1",
    ] {
        if !scrape.body.contains(evidence) {
            return Err(format!(
                "/metrics does not reflect the smoke run (expected {evidence:?}):\n{}",
                scrape.body
            ));
        }
    }

    println!(
        "service: smoke PASSED (clean and crash-recovered reports identical; /metrics well-formed, {} families)",
        nc_service::metrics::REQUIRED_FAMILIES.len()
    );
    Ok(())
}
