//! The HTTP tier: routing service state over the vendored `tiny_http` server.
//!
//! Routing is a pure function from `(method, url, body)` to a [`Response`]
//! ([`route`]), so the whole API surface is fuzzable and unit-testable without
//! sockets; the socket loop ([`serve`]) only shuttles parsed requests in and
//! responses out. Malformed *transport* (bad framing, oversized fields) never
//! reaches this layer — the vendored server answers it 4xx itself; malformed
//! *content* (bad job specs, unknown ids) is answered here with typed JSON errors.
//!
//! Routes:
//!
//! | Method | Path                | Answer |
//! |--------|---------------------|--------|
//! | GET    | `/healthz`          | `200` `ok` |
//! | POST   | `/jobs`             | `201` `{"id": N}` (body: form-encoded [`JobSpec`](crate::job::JobSpec)) |
//! | GET    | `/jobs/<id>`        | `200` status JSON |
//! | POST   | `/jobs/<id>/cancel` | `200` status JSON |
//! | GET    | `/jobs/<id>/report` | `200` deterministic report JSON (`409` until done) |
//! | GET    | `/stats`            | `200` counter JSON |
//! | GET    | `/stats/rows`       | `200` `BENCH_scheduler.json`-style rows |
//! | GET    | `/metrics`          | `200` Prometheus text exposition (`nc_obs` registry) |
//!
//! Lock poisoning (a panicked worker holding the queue or stats lock) does not
//! degrade routing to 503: the lock is recovered via the shared policy in
//! [`crate::metrics::recover_lock`] and the event is counted in the
//! `service_lock_poison_recoveries_total` family, so a single crash stays a
//! single crash instead of an outage.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use tiny_http::{Method, Response, Server};

use crate::job::{JobId, JobSpec};
use crate::metrics::{recover_lock, ServiceMetrics};
use crate::queue::JobQueue;
use crate::stats::{escape_json, rows_json, ServiceStats};

/// Shared handles of the three components the HTTP tier fronts.
#[derive(Clone)]
pub struct ServiceHandle {
    /// The job queue (submission, status, cancel).
    pub queue: Arc<Mutex<JobQueue>>,
    /// The live counters.
    pub stats: Arc<Mutex<ServiceStats>>,
    /// The metric families behind `GET /metrics`.
    pub metrics: Arc<ServiceMetrics>,
}

impl ServiceHandle {
    /// Fresh empty service state with the given queue seed.
    #[must_use]
    pub fn new(seed: u64) -> ServiceHandle {
        ServiceHandle {
            queue: Arc::new(Mutex::new(JobQueue::new(seed))),
            stats: Arc::new(Mutex::new(ServiceStats::default())),
            metrics: Arc::new(ServiceMetrics::new()),
        }
    }
}

fn json(status: u16, body: String) -> Response {
    Response::from_string(body)
        .with_status_code(status)
        .with_content_type("application/json")
}

fn error_json(status: u16, message: &str) -> Response {
    json(
        status,
        format!("{{\"error\": \"{}\"}}\n", escape_json(message)),
    )
}

/// Routes one request. Total: every `(method, url, body)` produces a response, and
/// none panics — the HTTP fuzz suite drives this with adversarial inputs. Every
/// response is counted in `service_http_requests_total{status}` on the way out.
#[must_use]
pub fn route(service: &ServiceHandle, method: Method, url: &str, body: &[u8]) -> Response {
    let response = dispatch(service, method, url, body);
    service
        .metrics
        .http_requests
        .with(&response.status_code().to_string())
        .inc();
    response
}

fn dispatch(service: &ServiceHandle, method: Method, url: &str, body: &[u8]) -> Response {
    // A poisoned lock (panicked holder) is recovered and counted, not a 503:
    // the queue is left consistent by every critical section, and the crash
    // itself is already accounted by the worker tier.
    let mut queue = recover_lock(&service.queue, &service.metrics);
    let path = url.split('?').next().unwrap_or(url);
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (method, segments.as_slice()) {
        (Method::Get, ["healthz"]) => Response::from_string("ok\n"),
        (Method::Post, ["jobs"]) => {
            let Ok(body) = std::str::from_utf8(body) else {
                return error_json(422, "submission body is not UTF-8");
            };
            match JobSpec::parse(body) {
                Ok(spec) => {
                    let id = queue.submit(spec);
                    recover_lock(&service.stats, &service.metrics).submitted += 1;
                    service.metrics.jobs_submitted.inc();
                    json(201, format!("{{\"id\": {id}}}\n"))
                }
                Err(e) => error_json(422, &e.to_string()),
            }
        }
        (Method::Get, ["jobs", id]) => match parse_id(id) {
            Some(id) => match queue.get(id) {
                Some(record) => json(200, format!("{}\n", record.status_json())),
                None => error_json(404, "no such job"),
            },
            None => error_json(404, "job ids are decimal numbers"),
        },
        (Method::Post, ["jobs", id, "cancel"]) => match parse_id(id) {
            Some(id) => match queue.cancel(id) {
                Some(_) => {
                    let record = queue.get(id).expect("cancel implies existence");
                    json(200, format!("{}\n", record.status_json()))
                }
                None => error_json(404, "no such job"),
            },
            None => error_json(404, "job ids are decimal numbers"),
        },
        (Method::Get, ["jobs", id, "report"]) => match parse_id(id) {
            Some(id) => match queue.get(id) {
                Some(record) => match &record.report {
                    Some(report) => json(200, format!("{}\n", report.to_json())),
                    None => error_json(
                        409,
                        &format!("job is {}; no report yet", record.state.as_str()),
                    ),
                },
                None => error_json(404, "no such job"),
            },
            None => error_json(404, "job ids are decimal numbers"),
        },
        (Method::Get, ["stats"]) => json(
            200,
            format!(
                "{}\n",
                recover_lock(&service.stats, &service.metrics).to_json()
            ),
        ),
        (Method::Get, ["stats", "rows"]) => json(200, rows_json(&queue)),
        (Method::Get, ["metrics"]) => {
            service.metrics.refresh_queue(&queue);
            Response::from_string(service.metrics.render_prometheus())
                .with_content_type("text/plain; version=0.0.4")
        }
        // Known paths with the wrong method get 405, everything else 404.
        (_, ["healthz"] | ["jobs"] | ["stats"] | ["stats", "rows"] | ["metrics"])
        | (_, ["jobs", _] | ["jobs", _, "cancel"] | ["jobs", _, "report"]) => {
            error_json(405, "method not allowed")
        }
        _ => error_json(404, "no such route"),
    }
}

fn parse_id(token: &str) -> Option<JobId> {
    token.parse().ok()
}

/// The accept loop: serves routed requests until `stop` is raised (the server's own
/// stopper is raised alongside by the caller). Peer write errors are ignored — the
/// client hung up; there is nobody to answer. Each request leaves one access-log
/// line on stderr (method, path, status, response bytes) — stdout stays reserved
/// for the binary's own protocol output, so `--smoke` stdout is unaffected.
pub fn serve(server: &Server, service: &ServiceHandle, stop: &Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match server.recv() {
            Ok(Some(request)) => {
                let method = request.method();
                let url = request.url().to_string();
                let body = request.content().to_vec();
                let response = route(service, method, &url, &body);
                eprintln!(
                    "service: {method} {url} -> {} ({} bytes)",
                    response.status_code(),
                    response.data().len()
                );
                let _ = request.respond(response);
            }
            Ok(None) => break,
            Err(_) => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobState;
    use crate::worker::run_slice;

    fn body(response: &Response) -> String {
        String::from_utf8_lossy(response.data()).to_string()
    }

    #[test]
    fn submit_status_cancel_report_lifecycle() {
        let service = ServiceHandle::new(5);
        let response = route(&service, Method::Post, "/jobs", b"protocol=square&n=9");
        assert_eq!(response.status_code(), 201);
        assert_eq!(body(&response), "{\"id\": 0}\n");

        let response = route(&service, Method::Get, "/jobs/0", b"");
        assert_eq!(response.status_code(), 200);
        assert!(body(&response).contains("\"state\": \"queued\""));

        // No report before completion.
        assert_eq!(
            route(&service, Method::Get, "/jobs/0/report", b"").status_code(),
            409
        );

        // Drive the job to completion through the queue directly.
        {
            let mut queue = service.queue.lock().expect("queue");
            while queue.has_live_jobs() {
                if let Some(claim) = queue.claim_next() {
                    let (result, seconds) = run_slice(&claim, 1_000_000);
                    queue.complete_slice(claim.id, result, seconds);
                }
            }
            assert_eq!(queue.get(0).expect("record").state, JobState::Done);
        }
        let response = route(&service, Method::Get, "/jobs/0/report", b"");
        assert_eq!(response.status_code(), 200);
        assert!(body(&response).contains("\"completed\": true"));

        // Cancelling a done job is a no-op that still reports the state.
        let response = route(&service, Method::Post, "/jobs/0/cancel", b"");
        assert_eq!(response.status_code(), 200);
        assert!(body(&response).contains("\"state\": \"done\""));

        let response = route(&service, Method::Get, "/stats/rows", b"");
        assert_eq!(response.status_code(), 200);
        assert!(body(&response).contains("\"protocol\": \"square\""));
    }

    #[test]
    fn content_errors_are_typed_statuses() {
        let service = ServiceHandle::new(5);
        let cases: [(Method, &str, &[u8], u16); 8] = [
            (Method::Post, "/jobs", b"protocol=warp&n=4", 422),
            (Method::Post, "/jobs", b"\xff\xfe", 422),
            (Method::Get, "/jobs/99", b"", 404),
            (Method::Get, "/jobs/not-a-number", b"", 404),
            (Method::Post, "/jobs/99/cancel", b"", 404),
            (Method::Delete, "/jobs", b"", 405),
            (Method::Post, "/stats", b"", 405),
            (Method::Get, "/teapot", b"", 404),
        ];
        for (method, url, body_bytes, expected) in cases {
            let response = route(&service, method, url, body_bytes);
            assert_eq!(response.status_code(), expected, "{method} {url}");
        }
    }

    #[test]
    fn query_strings_are_ignored_in_routing() {
        let service = ServiceHandle::new(5);
        assert_eq!(
            route(&service, Method::Get, "/healthz?probe=1", b"").status_code(),
            200
        );
    }

    #[test]
    fn metrics_route_serves_a_well_formed_scrape() {
        let service = ServiceHandle::new(5);
        let _ = route(&service, Method::Post, "/jobs", b"protocol=square&n=9");
        let response = route(&service, Method::Get, "/metrics", b"");
        assert_eq!(response.status_code(), 200);
        let text = body(&response);
        nc_obs::validate_prometheus_text(&text).expect("well-formed scrape");
        assert!(
            text.contains("service_jobs_submitted_total 1"),
            "the submission must be counted: {text}"
        );
        assert!(
            text.contains("service_queue_depth{tenant=\"default\"} 1"),
            "the queued job must show as depth: {text}"
        );
        assert_eq!(
            route(&service, Method::Post, "/metrics", b"").status_code(),
            405
        );
    }

    #[test]
    fn poisoned_locks_recover_instead_of_answering_503() {
        let service = ServiceHandle::new(5);
        // Poison both locks the way a crashed worker would: panic while holding.
        for _ in 0..2 {
            let queue = Arc::clone(&service.queue);
            let stats = Arc::clone(&service.stats);
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                let _q = queue.lock().unwrap();
                let _s = stats.lock();
                panic!("worker crash while holding the queue lock");
            }));
        }
        assert!(service.queue.is_poisoned());
        // Routing keeps working — no 503, and the recovery is counted exactly
        // once per poisoning, not once per later request.
        let response = route(&service, Method::Post, "/jobs", b"protocol=line&n=8");
        assert_eq!(response.status_code(), 201);
        assert_eq!(
            route(&service, Method::Get, "/stats", b"").status_code(),
            200
        );
        assert_eq!(
            route(&service, Method::Get, "/jobs/0", b"").status_code(),
            200
        );
        let recoveries = service.metrics.lock_poison_recoveries.value();
        assert!(
            (1..=2).contains(&recoveries),
            "one recovery per poisoned lock, got {recoveries}"
        );
        let scrape = body(&route(&service, Method::Get, "/metrics", b""));
        assert!(
            scrape.contains(&format!(
                "service_lock_poison_recoveries_total {recoveries}"
            )),
            "{scrape}"
        );
    }
}
