//! A minimal blocking HTTP/1.1 client for the smoke gate and the test suites.
//!
//! Raw `TcpStream` request/response, one request per connection (matching the
//! server's `Connection: close` policy). Not a general client — just enough to
//! drive the service's own API from its `--smoke` mode and the integration tests
//! without any external tooling in the offline container.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One HTTP exchange: status code and body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Exchange {
    /// The response status code.
    pub status: u16,
    /// The response body.
    pub body: String,
}

/// Sends one request and reads the full response.
///
/// # Errors
/// Socket errors, or a malformed status line from the server.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<Exchange> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: service\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_response(&raw)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response"))
}

fn parse_response(raw: &str) -> Option<Exchange> {
    let status: u16 = raw.split(' ').nth(1)?.parse().ok()?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())?;
    Some(Exchange { status, body })
}

/// Polls `GET path` until `predicate` accepts the body or `tries` polls elapse
/// (`interval` apart). Returns the last exchange.
///
/// # Errors
/// Socket errors from any poll.
pub fn poll_until(
    addr: SocketAddr,
    path: &str,
    tries: usize,
    interval: Duration,
    mut predicate: impl FnMut(&Exchange) -> bool,
) -> std::io::Result<Exchange> {
    let mut last = request(addr, "GET", path, "")?;
    for _ in 0..tries {
        if predicate(&last) {
            break;
        }
        std::thread::sleep(interval);
        last = request(addr, "GET", path, "")?;
    }
    Ok(last)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_status_line_and_body() {
        let exchange =
            parse_response("HTTP/1.1 201 Created\r\nContent-Length: 10\r\n\r\n{\"id\": 0}\n")
                .expect("well-formed");
        assert_eq!(exchange.status, 201);
        assert_eq!(exchange.body, "{\"id\": 0}\n");
        assert_eq!(parse_response("garbage"), None);
    }
}
