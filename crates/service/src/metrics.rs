//! The service's metric families — the registry behind `GET /metrics`.
//!
//! Built on `nc_obs`'s integer-only registry, so the scrape text carries no
//! floats and no environment-dependent formatting. Families split into two
//! classes, declared at registration:
//!
//! * **Deterministic** — pure functions of the request/claim sequence: HTTP
//!   status counts, submission/completion/crash/retry counters, simulation step
//!   counters, queue depth per tenant and queue age measured in *picks* (the
//!   queue's own deterministic clock). Two identical seeded single-threaded
//!   runs render these byte-identically ([`ServiceMetrics::render_deterministic`],
//!   pinned by `tests/metrics.rs`).
//! * **Wall-clock** — measurements: slice latency histograms, worker busy time,
//!   idle polls. Marked via [`Registry::mark_wall_clock`] and excluded from the
//!   deterministic render; they still appear in the full Prometheus scrape.
//!
//! The module also owns the poisoned-lock recovery policy of the HTTP and
//! worker tiers ([`recover_lock`]): instead of degrading every request after a
//! worker panic to 503 forever, the lock is recovered via [`nc_core::relock`]
//! and the event is counted in `service_lock_poison_recoveries_total`.

use std::sync::{Arc, Mutex, MutexGuard};

use nc_obs::{Counter, CounterVec, Gauge, GaugeVec, Histogram, HistogramVec, Registry};

use crate::queue::{backoff_for, Claim, JobQueue, SliceResult};

/// Every family `/metrics` must expose; the smoke gate and the metrics suite
/// fail if any is missing from a scrape.
pub const REQUIRED_FAMILIES: &[&str] = &[
    "service_http_requests_total",
    "service_lock_poison_recoveries_total",
    "service_jobs_submitted_total",
    "service_jobs_done_total",
    "service_jobs_failed_total",
    "service_slices_total",
    "service_crashes_total",
    "service_retries_total",
    "service_backoff_picks_total",
    "service_sim_steps_total",
    "service_queue_depth",
    "service_queue_picks",
    "service_queue_age_picks",
    "service_slice_microseconds",
    "service_worker_busy_microseconds_total",
    "service_worker_idle_polls_total",
];

/// Typed handles to every family the service records, plus the registry that
/// renders them. One instance per [`ServiceHandle`](crate::ServiceHandle),
/// shared by the HTTP tier and all workers.
pub struct ServiceMetrics {
    registry: Registry,
    /// `service_http_requests_total{status}` — responses served, by status code.
    pub http_requests: Arc<CounterVec>,
    /// `service_lock_poison_recoveries_total` — poisoned locks recovered
    /// (see [`recover_lock`]).
    pub lock_poison_recoveries: Arc<Counter>,
    /// `service_jobs_submitted_total` — accepted submissions.
    pub jobs_submitted: Arc<Counter>,
    /// `service_jobs_done_total` — jobs finished with a report.
    pub jobs_done: Arc<Counter>,
    /// `service_jobs_failed_total` — jobs failed permanently.
    pub jobs_failed: Arc<Counter>,
    /// `service_slices_total{tenant}` — productive slices (parked or finished).
    pub slices: Arc<CounterVec>,
    /// `service_crashes_total` — worker crashes absorbed (injected or genuine).
    pub crashes: Arc<Counter>,
    /// `service_retries_total` — crashed attempts requeued (crashes that did
    /// not exhaust the retry budget).
    pub retries: Arc<Counter>,
    /// `service_backoff_picks_total` — total backoff imposed on retries, in
    /// queue picks (the queue's deterministic clock).
    pub backoff_picks: Arc<Counter>,
    /// `service_sim_steps_total` — lifetime scheduler steps executed by slices.
    pub sim_steps: Arc<Counter>,
    /// `service_queue_depth{tenant}` — queued jobs per tenant (refreshed at
    /// scrape time).
    pub queue_depth: Arc<GaugeVec>,
    /// `service_queue_picks` — the queue's pick counter (refreshed at scrape).
    pub queue_picks: Arc<Gauge>,
    /// `service_queue_age_picks` — picks a job waited before each claim.
    pub queue_age_picks: Arc<Histogram>,
    /// `service_slice_microseconds{tenant}` — wall-clock slice latency.
    pub slice_latency: Arc<HistogramVec>,
    /// `service_worker_busy_microseconds_total` — wall clock spent in slices.
    pub worker_busy_micros: Arc<Counter>,
    /// `service_worker_idle_polls_total` — empty claim polls by idle workers.
    pub worker_idle_polls: Arc<Counter>,
}

impl ServiceMetrics {
    /// Registers every family. Wall-clock families are marked so the
    /// deterministic render can exclude them.
    #[must_use]
    pub fn new() -> ServiceMetrics {
        let registry = Registry::new();
        let metrics = ServiceMetrics {
            http_requests: registry.counter_vec(
                "service_http_requests_total",
                "Responses served, by HTTP status code.",
                "status",
            ),
            lock_poison_recoveries: registry.counter(
                "service_lock_poison_recoveries_total",
                "Poisoned queue/stats locks recovered instead of answered 503.",
            ),
            jobs_submitted: registry
                .counter("service_jobs_submitted_total", "Job submissions accepted."),
            jobs_done: registry.counter(
                "service_jobs_done_total",
                "Jobs finished with a deterministic report.",
            ),
            jobs_failed: registry.counter(
                "service_jobs_failed_total",
                "Jobs failed permanently (typed errors or exhausted retries).",
            ),
            slices: registry.counter_vec(
                "service_slices_total",
                "Productive slices executed (parked or finished), per tenant.",
                "tenant",
            ),
            crashes: registry.counter(
                "service_crashes_total",
                "Worker crashes absorbed (injected or genuine).",
            ),
            retries: registry.counter(
                "service_retries_total",
                "Crashed attempts requeued for retry.",
            ),
            backoff_picks: registry.counter(
                "service_backoff_picks_total",
                "Total retry backoff imposed, in queue picks.",
            ),
            sim_steps: registry.counter(
                "service_sim_steps_total",
                "Lifetime scheduler steps executed across all slices.",
            ),
            queue_depth: registry.gauge_vec(
                "service_queue_depth",
                "Queued jobs per tenant at scrape time.",
                "tenant",
            ),
            queue_picks: registry.gauge(
                "service_queue_picks",
                "The queue's monotone pick counter at scrape time.",
            ),
            queue_age_picks: registry.histogram(
                "service_queue_age_picks",
                "Picks a job waited in the queue before each claim.",
            ),
            slice_latency: registry.histogram_vec(
                "service_slice_microseconds",
                "Wall-clock slice latency, per tenant.",
                "tenant",
            ),
            worker_busy_micros: registry.counter(
                "service_worker_busy_microseconds_total",
                "Wall clock workers spent executing slices.",
            ),
            worker_idle_polls: registry.counter(
                "service_worker_idle_polls_total",
                "Queue polls that found no eligible job.",
            ),
            registry,
        };
        // Measurements (and thread-timing artifacts like idle polls) are not
        // reproducible across runs; everything else must be.
        metrics
            .registry
            .mark_wall_clock("service_slice_microseconds");
        metrics
            .registry
            .mark_wall_clock("service_worker_busy_microseconds_total");
        metrics
            .registry
            .mark_wall_clock("service_worker_idle_polls_total");
        metrics
    }

    /// The full Prometheus text scrape (`text/plain; version=0.0.4`).
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }

    /// Only the deterministic families — the text two identical seeded
    /// single-threaded runs must reproduce byte-for-byte.
    #[must_use]
    pub fn render_deterministic(&self) -> String {
        self.registry.render_deterministic()
    }

    /// Refreshes the scrape-time gauges from the queue's current state.
    pub fn refresh_queue(&self, queue: &JobQueue) {
        self.queue_picks
            .set(i64::try_from(queue.picks()).unwrap_or(i64::MAX));
        for (tenant, depth) in queue.queued_depths() {
            self.queue_depth
                .with(&tenant)
                .set(i64::try_from(depth).unwrap_or(i64::MAX));
        }
    }

    /// Records a claim being handed to a worker (the queue-age observable).
    pub fn record_claim(&self, claim: &Claim) {
        self.queue_age_picks.observe(claim.queued_age_picks);
    }

    /// Records the state-independent outcome of one executed slice.
    pub fn record_slice(&self, claim: &Claim, result: &SliceResult, seconds: f64) {
        match result {
            SliceResult::Parked { steps, .. } | SliceResult::Done { steps, .. } => {
                self.slices.with(&claim.spec.tenant).inc();
                self.sim_steps.add(steps.saturating_sub(claim.steps));
                if matches!(result, SliceResult::Done { .. }) {
                    self.jobs_done.inc();
                }
            }
            SliceResult::Failed { .. } => self.jobs_failed.inc(),
            SliceResult::Crashed { .. } => self.crashes.inc(),
        }
        let micros = (seconds * 1e6) as u64;
        self.slice_latency.with(&claim.spec.tenant).observe(micros);
        self.worker_busy_micros.add(micros);
    }

    /// Records that a crashed attempt was requeued (call once the queue has
    /// decided retry-vs-fail; the backoff mirrors the queue's own arithmetic).
    pub fn record_retry(&self, claim: &Claim) {
        self.retries.inc();
        self.backoff_picks.add(backoff_for(claim.crashes + 1));
    }
}

impl Default for ServiceMetrics {
    fn default() -> ServiceMetrics {
        ServiceMetrics::new()
    }
}

/// Locks `mutex`, recovering (and un-poisoning) it if a previous holder
/// panicked, counting each recovery in `service_lock_poison_recoveries_total`.
///
/// Recovery is sound for the service's locks for the same reason it is for the
/// core's (see `nc_core::lock`): the queue and stats structures are left
/// consistent by every critical section — workers mutate them only through
/// total transition functions — so the poison flag carries no integrity
/// information beyond "some thread panicked", which the crash accounting
/// already records.
pub fn recover_lock<'a, T>(mutex: &'a Mutex<T>, metrics: &ServiceMetrics) -> MutexGuard<'a, T> {
    if mutex.is_poisoned() {
        mutex.clear_poison();
        metrics.lock_poison_recoveries.inc();
    }
    nc_core::relock(mutex)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_obs::validate_prometheus_text;

    #[test]
    fn every_required_family_renders_and_validates() {
        let metrics = ServiceMetrics::new();
        let text = metrics.render_prometheus();
        validate_prometheus_text(&text).expect("well-formed scrape");
        for family in REQUIRED_FAMILIES {
            assert!(
                text.contains(&format!("# TYPE {family} ")),
                "{family} missing from:\n{text}"
            );
        }
    }

    #[test]
    fn wall_clock_families_are_excluded_from_the_deterministic_render() {
        let metrics = ServiceMetrics::new();
        let det = metrics.render_deterministic();
        for wall_clock in [
            "service_slice_microseconds",
            "service_worker_busy_microseconds_total",
            "service_worker_idle_polls_total",
        ] {
            assert!(
                !det.contains(wall_clock),
                "{wall_clock} leaked into:\n{det}"
            );
        }
        assert!(det.contains("service_sim_steps_total"), "{det}");
    }

    #[test]
    fn recover_lock_counts_one_recovery_per_poisoning() {
        let metrics = ServiceMetrics::new();
        let lock = Mutex::new(7u32);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = lock.lock().expect("first lock");
            panic!("poison the lock");
        }));
        assert!(lock.is_poisoned());
        *recover_lock(&lock, &metrics) += 1;
        assert_eq!(*recover_lock(&lock, &metrics), 8);
        assert_eq!(
            metrics.lock_poison_recoveries.value(),
            1,
            "the recovery is counted once, not once per later access"
        );
    }
}
