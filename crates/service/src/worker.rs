//! Workers: claim a job, run one bounded slice, checkpoint, hand back.
//!
//! A worker never holds the queue lock while simulating: it claims under the lock,
//! executes the slice on its own, then reports the result under the lock. Each claim
//! runs **one** slice and requeues, so a heavy job cannot starve other tenants — the
//! queue's weighted draw decides what runs next after every slice.
//!
//! Crash handling: the slice body runs under `catch_unwind`. A panic — whether
//! injected by the job's `crash_after_slices` knob or a genuine bug — is recovered
//! with [`nc_core::panic_message`] (the PR 9 panic-payload fix: `&str`, `String` and
//! opaque payloads all produce a readable message instead of a second panic) and
//! reported as [`SliceResult::Crashed`]; the queue requeues with backoff. Progress
//! since the last checkpoint is lost by construction, which is exactly what the
//! byte-identical recovery guarantee needs: the retry resumes from a slice boundary
//! the uncrashed run also passed through.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::http::ServiceHandle;
use crate::job::JobState;
use crate::metrics::recover_lock;
use crate::queue::{Claim, SliceResult};
use crate::runner::{JobReport, JobRunner, SliceOutcome};

/// Tuning of a worker pool.
#[derive(Clone, Copy, Debug)]
pub struct WorkerConfig {
    /// Scheduler steps per slice. Small slices interleave tenants finely but
    /// checkpoint more often; the slice length is part of the deterministic slice
    /// arithmetic, so all workers of one service must share it.
    pub slice: u64,
    /// How long an idle worker sleeps before re-polling the queue.
    pub idle_poll: Duration,
}

impl Default for WorkerConfig {
    fn default() -> WorkerConfig {
        WorkerConfig {
            slice: 50_000,
            idle_poll: Duration::from_millis(2),
        }
    }
}

/// Executes one claimed slice: resume (or fresh start), advance, checkpoint. Pure
/// apart from wall-clock measurement; shared by the worker loop and the tests.
///
/// Returns the slice result and the wall-clock seconds spent.
#[must_use]
pub fn run_slice(claim: &Claim, slice: u64) -> (SliceResult, f64) {
    let started = Instant::now();
    let injected_crash = claim.crashes == 0
        && claim
            .spec
            .crash_after_slices
            .is_some_and(|after| claim.slices >= after);
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut runner = match &claim.snapshot {
            Some(bytes) => {
                JobRunner::resume(&claim.spec, bytes).map_err(|e| format!("resume failed: {e}"))?
            }
            None => JobRunner::start(&claim.spec),
        };
        if injected_crash {
            // The injection point sits *after* resume and *before* the slice runs:
            // the crash loses the slice's progress, which is the interesting case
            // for the recovery argument.
            panic!(
                "injected crash before slice {} of job {}",
                claim.slices, claim.id
            );
        }
        match runner.advance(slice, claim.spec.step_budget) {
            SliceOutcome::Finished { completed } => {
                let report = JobReport::from_runner(&claim.spec, &runner, completed);
                let steps = runner.stats().steps;
                Ok(SliceResult::Done { report, steps })
            }
            SliceOutcome::BudgetExhausted => Ok(SliceResult::Failed {
                error: format!(
                    "step budget of {} exhausted after {} steps",
                    claim.spec.step_budget,
                    runner.stats().steps
                ),
            }),
            SliceOutcome::Yielded => {
                let snapshot = runner
                    .checkpoint_bytes()
                    .map_err(|e| format!("checkpoint failed: {e}"))?;
                let steps = runner.stats().steps;
                Ok(SliceResult::Parked { snapshot, steps })
            }
        }
    }));
    let seconds = started.elapsed().as_secs_f64();
    let slice_result = match result {
        Ok(Ok(slice_result)) => slice_result,
        Ok(Err(error)) => SliceResult::Failed { error },
        Err(payload) => SliceResult::Crashed {
            message: nc_core::panic_message(payload.as_ref()).to_string(),
        },
    };
    (slice_result, seconds)
}

/// Claims and executes one slice: poll, run, report, with every observable
/// recorded (service counters *and* the `/metrics` families). Returns whether a
/// job was claimed. This is the single code path behind both the threaded
/// [`worker_loop`] and the deterministic single-threaded [`drain`], so the two
/// record identical metrics for identical claim sequences — the property the
/// metrics determinism suite pins.
pub fn service_step(service: &ServiceHandle, slice: u64) -> bool {
    let metrics = &service.metrics;
    let claim = recover_lock(&service.queue, metrics).claim_next();
    let Some(claim) = claim else {
        return false;
    };
    metrics.record_claim(&claim);
    let (result, seconds) = run_slice(&claim, slice);
    metrics.record_slice(&claim, &result, seconds);
    recover_lock(&service.stats, metrics).record_slice(&claim.spec.tenant, &result);
    let crashed = matches!(result, SliceResult::Crashed { .. });
    let state = recover_lock(&service.queue, metrics).complete_slice(claim.id, result, seconds);
    if crashed && state == JobState::Queued {
        metrics.record_retry(&claim);
    }
    true
}

/// Runs the queue dry on the calling thread (tests and scripted runs). Backoff
/// windows are waited out in picks: an idle poll still advances the pick clock.
pub fn drain(service: &ServiceHandle, slice: u64) {
    let mut idle = 0u64;
    while recover_lock(&service.queue, &service.metrics).has_live_jobs() {
        if service_step(service, slice) {
            idle = 0;
        } else {
            idle += 1;
            assert!(
                idle < 1_000_000,
                "live jobs but a million empty polls: the queue is wedged"
            );
        }
    }
}

/// The worker loop: [`service_step`] until `stop` is raised. Meant to run on its
/// own thread; any number of workers may share one service handle.
pub fn worker_loop(service: &ServiceHandle, stop: &Arc<AtomicBool>, config: WorkerConfig) {
    while !stop.load(Ordering::SeqCst) {
        if !service_step(service, config.slice) {
            service.metrics.worker_idle_polls.inc();
            std::thread::sleep(config.idle_poll);
        }
    }
}

/// Spawns `workers` threads running [`worker_loop`]; join the handles after raising
/// `stop` to shut the pool down.
#[must_use]
pub fn spawn_pool(
    service: &ServiceHandle,
    stop: &Arc<AtomicBool>,
    config: WorkerConfig,
    workers: usize,
) -> Vec<std::thread::JoinHandle<()>> {
    (0..workers.max(1))
        .map(|_| {
            let service = service.clone();
            let stop = Arc::clone(stop);
            std::thread::spawn(move || worker_loop(&service, &stop, config))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobSpec, ProtocolKind};

    fn submit(service: &ServiceHandle, spec: JobSpec) -> crate::job::JobId {
        recover_lock(&service.queue, &service.metrics).submit(spec)
    }

    #[test]
    fn a_job_runs_to_done_across_many_slices() {
        let service = ServiceHandle::new(3);
        let id = submit(&service, JobSpec::new(ProtocolKind::Square, 16));
        drain(&service, 256);
        let queue = service.queue.lock().expect("queue");
        let record = queue.get(id).expect("record");
        assert_eq!(record.state, JobState::Done);
        let report = record.report.as_ref().expect("report");
        assert!(report.completed);
        assert!(
            record.slices > 1,
            "slice length 256 must take several slices"
        );
        // Every productive slice and its steps landed in the metrics.
        assert_eq!(
            service.metrics.slices.with("default").value(),
            record.slices
        );
        assert_eq!(service.metrics.sim_steps.value(), record.steps);
    }

    #[test]
    fn injected_crash_recovers_to_an_identical_report() {
        // Reference: no crash.
        let service = ServiceHandle::new(3);
        let clean = submit(&service, JobSpec::new(ProtocolKind::Square, 16));
        drain(&service, 256);
        let clean_json = service
            .queue
            .lock()
            .expect("queue")
            .get(clean)
            .expect("record")
            .report
            .as_ref()
            .expect("report")
            .to_json();

        // Same spec, crash injected before slice 2 of the first attempt.
        let service = ServiceHandle::new(3);
        let mut spec = JobSpec::new(ProtocolKind::Square, 16);
        spec.crash_after_slices = Some(2);
        let crashed = submit(&service, spec);
        drain(&service, 256);
        let queue = service.queue.lock().expect("queue");
        let record = queue.get(crashed).expect("record");
        assert_eq!(record.crashes, 1, "the injection fires exactly once");
        assert!(record.attempts >= 2, "the retry is a fresh attempt");
        let crashed_json = record.report.as_ref().expect("report").to_json();
        assert_eq!(
            crashed_json, clean_json,
            "recovery from the last checkpoint must reproduce the uncrashed report byte for byte"
        );
        // The crash, the retry and its backoff all registered.
        assert_eq!(service.metrics.crashes.value(), 1);
        assert_eq!(service.metrics.retries.value(), 1);
        assert_eq!(
            service.metrics.backoff_picks.value(),
            crate::queue::backoff_for(1)
        );
    }

    #[test]
    fn budget_exhaustion_fails_the_job_with_a_typed_message() {
        let service = ServiceHandle::new(3);
        let mut spec = JobSpec::new(ProtocolKind::Line, 64);
        spec.step_budget = 100;
        let id = submit(&service, spec);
        drain(&service, 64);
        let queue = service.queue.lock().expect("queue");
        let record = queue.get(id).expect("record");
        assert_eq!(record.state, JobState::Failed);
        assert!(record
            .error
            .as_deref()
            .is_some_and(|e| e.contains("step budget")));
        assert_eq!(service.metrics.jobs_failed.value(), 1);
    }

    #[test]
    fn threaded_pool_completes_jobs_from_two_tenants() {
        let service = ServiceHandle::new(9);
        let stop = Arc::new(AtomicBool::new(false));
        let ids: Vec<_> = (0..4)
            .map(|i| {
                let mut spec = JobSpec::new(ProtocolKind::Square, 9);
                spec.seed = 100 + i;
                spec.tenant = if i % 2 == 0 {
                    "even".into()
                } else {
                    "odd".into()
                };
                submit(&service, spec)
            })
            .collect();
        let config = WorkerConfig {
            slice: 128,
            idle_poll: Duration::from_millis(1),
        };
        let handles = spawn_pool(&service, &stop, config, 3);
        let started = Instant::now();
        loop {
            if !service.queue.lock().expect("queue").has_live_jobs() {
                break;
            }
            assert!(
                started.elapsed() < Duration::from_secs(60),
                "pool must finish 4 small jobs quickly"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        stop.store(true, Ordering::SeqCst);
        for handle in handles {
            handle.join().expect("worker joins");
        }
        let q = service.queue.lock().expect("queue");
        for id in ids {
            let record = q.get(id).expect("record");
            assert_eq!(record.state, JobState::Done, "job {id}");
            assert!(record.report.as_ref().expect("report").completed);
        }
    }
}
