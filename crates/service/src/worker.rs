//! Workers: claim a job, run one bounded slice, checkpoint, hand back.
//!
//! A worker never holds the queue lock while simulating: it claims under the lock,
//! executes the slice on its own, then reports the result under the lock. Each claim
//! runs **one** slice and requeues, so a heavy job cannot starve other tenants — the
//! queue's weighted draw decides what runs next after every slice.
//!
//! Crash handling: the slice body runs under `catch_unwind`. A panic — whether
//! injected by the job's `crash_after_slices` knob or a genuine bug — is recovered
//! with [`nc_core::panic_message`] (the PR 9 panic-payload fix: `&str`, `String` and
//! opaque payloads all produce a readable message instead of a second panic) and
//! reported as [`SliceResult::Crashed`]; the queue requeues with backoff. Progress
//! since the last checkpoint is lost by construction, which is exactly what the
//! byte-identical recovery guarantee needs: the retry resumes from a slice boundary
//! the uncrashed run also passed through.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::queue::{Claim, JobQueue, SliceResult};
use crate::runner::{JobReport, JobRunner, SliceOutcome};
use crate::stats::ServiceStats;

/// Tuning of a worker pool.
#[derive(Clone, Copy, Debug)]
pub struct WorkerConfig {
    /// Scheduler steps per slice. Small slices interleave tenants finely but
    /// checkpoint more often; the slice length is part of the deterministic slice
    /// arithmetic, so all workers of one service must share it.
    pub slice: u64,
    /// How long an idle worker sleeps before re-polling the queue.
    pub idle_poll: Duration,
}

impl Default for WorkerConfig {
    fn default() -> WorkerConfig {
        WorkerConfig {
            slice: 50_000,
            idle_poll: Duration::from_millis(2),
        }
    }
}

/// Executes one claimed slice: resume (or fresh start), advance, checkpoint. Pure
/// apart from wall-clock measurement; shared by the worker loop and the tests.
///
/// Returns the slice result and the wall-clock seconds spent.
#[must_use]
pub fn run_slice(claim: &Claim, slice: u64) -> (SliceResult, f64) {
    let started = Instant::now();
    let injected_crash = claim.crashes == 0
        && claim
            .spec
            .crash_after_slices
            .is_some_and(|after| claim.slices >= after);
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut runner = match &claim.snapshot {
            Some(bytes) => {
                JobRunner::resume(&claim.spec, bytes).map_err(|e| format!("resume failed: {e}"))?
            }
            None => JobRunner::start(&claim.spec),
        };
        if injected_crash {
            // The injection point sits *after* resume and *before* the slice runs:
            // the crash loses the slice's progress, which is the interesting case
            // for the recovery argument.
            panic!(
                "injected crash before slice {} of job {}",
                claim.slices, claim.id
            );
        }
        match runner.advance(slice, claim.spec.step_budget) {
            SliceOutcome::Finished { completed } => {
                let report = JobReport::from_runner(&claim.spec, &runner, completed);
                let steps = runner.stats().steps;
                Ok(SliceResult::Done { report, steps })
            }
            SliceOutcome::BudgetExhausted => Ok(SliceResult::Failed {
                error: format!(
                    "step budget of {} exhausted after {} steps",
                    claim.spec.step_budget,
                    runner.stats().steps
                ),
            }),
            SliceOutcome::Yielded => {
                let snapshot = runner
                    .checkpoint_bytes()
                    .map_err(|e| format!("checkpoint failed: {e}"))?;
                let steps = runner.stats().steps;
                Ok(SliceResult::Parked { snapshot, steps })
            }
        }
    }));
    let seconds = started.elapsed().as_secs_f64();
    let slice_result = match result {
        Ok(Ok(slice_result)) => slice_result,
        Ok(Err(error)) => SliceResult::Failed { error },
        Err(payload) => SliceResult::Crashed {
            message: nc_core::panic_message(payload.as_ref()).to_string(),
        },
    };
    (slice_result, seconds)
}

/// The worker loop: poll, run, report, until `stop` is raised. Meant to run on its
/// own thread; any number of workers may share one queue.
pub fn worker_loop(
    queue: &Arc<Mutex<JobQueue>>,
    stats: &Arc<Mutex<ServiceStats>>,
    stop: &Arc<AtomicBool>,
    config: WorkerConfig,
) {
    while !stop.load(Ordering::SeqCst) {
        let claim = queue.lock().map(|mut q| q.claim_next()).unwrap_or(None);
        let Some(claim) = claim else {
            std::thread::sleep(config.idle_poll);
            continue;
        };
        let (result, seconds) = run_slice(&claim, config.slice);
        let tenant = claim.spec.tenant.clone();
        if let Ok(mut stats) = stats.lock() {
            stats.record_slice(&tenant, &result);
        }
        if let Ok(mut q) = queue.lock() {
            q.complete_slice(claim.id, result, seconds);
        }
    }
}

/// Spawns `workers` threads running [`worker_loop`]; join the handles after raising
/// `stop` to shut the pool down.
#[must_use]
pub fn spawn_pool(
    queue: &Arc<Mutex<JobQueue>>,
    stats: &Arc<Mutex<ServiceStats>>,
    stop: &Arc<AtomicBool>,
    config: WorkerConfig,
    workers: usize,
) -> Vec<std::thread::JoinHandle<()>> {
    (0..workers.max(1))
        .map(|_| {
            let queue = Arc::clone(queue);
            let stats = Arc::clone(stats);
            let stop = Arc::clone(stop);
            std::thread::spawn(move || worker_loop(&queue, &stats, &stop, config))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobSpec, ProtocolKind};

    fn submit(queue: &mut JobQueue, spec: JobSpec) -> crate::job::JobId {
        queue.submit(spec)
    }

    /// Drives the queue single-threadedly until no live jobs remain.
    fn drain(queue: &mut JobQueue, stats: &mut ServiceStats, slice: u64) {
        let mut guard = 0;
        while queue.has_live_jobs() {
            if let Some(claim) = queue.claim_next() {
                let (result, seconds) = run_slice(&claim, slice);
                stats.record_slice(&claim.spec.tenant, &result);
                queue.complete_slice(claim.id, result, seconds);
            }
            guard += 1;
            assert!(guard < 1_000_000, "the queue must drain");
        }
    }

    #[test]
    fn a_job_runs_to_done_across_many_slices() {
        let mut queue = JobQueue::new(3);
        let mut stats = ServiceStats::default();
        let id = submit(&mut queue, JobSpec::new(ProtocolKind::Square, 16));
        drain(&mut queue, &mut stats, 256);
        let record = queue.get(id).expect("record");
        assert_eq!(record.state, crate::job::JobState::Done);
        let report = record.report.as_ref().expect("report");
        assert!(report.completed);
        assert!(
            record.slices > 1,
            "slice length 256 must take several slices"
        );
    }

    #[test]
    fn injected_crash_recovers_to_an_identical_report() {
        // Reference: no crash.
        let mut queue = JobQueue::new(3);
        let mut stats = ServiceStats::default();
        let clean = submit(&mut queue, JobSpec::new(ProtocolKind::Square, 16));
        drain(&mut queue, &mut stats, 256);
        let clean_json = queue
            .get(clean)
            .expect("record")
            .report
            .as_ref()
            .expect("report")
            .to_json();

        // Same spec, crash injected before slice 2 of the first attempt.
        let mut queue = JobQueue::new(3);
        let mut spec = JobSpec::new(ProtocolKind::Square, 16);
        spec.crash_after_slices = Some(2);
        let crashed = submit(&mut queue, spec);
        drain(&mut queue, &mut stats, 256);
        let record = queue.get(crashed).expect("record");
        assert_eq!(record.crashes, 1, "the injection fires exactly once");
        assert!(record.attempts >= 2, "the retry is a fresh attempt");
        let crashed_json = record.report.as_ref().expect("report").to_json();
        assert_eq!(
            crashed_json, clean_json,
            "recovery from the last checkpoint must reproduce the uncrashed report byte for byte"
        );
    }

    #[test]
    fn budget_exhaustion_fails_the_job_with_a_typed_message() {
        let mut queue = JobQueue::new(3);
        let mut stats = ServiceStats::default();
        let mut spec = JobSpec::new(ProtocolKind::Line, 64);
        spec.step_budget = 100;
        let id = submit(&mut queue, spec);
        drain(&mut queue, &mut stats, 64);
        let record = queue.get(id).expect("record");
        assert_eq!(record.state, crate::job::JobState::Failed);
        assert!(record
            .error
            .as_deref()
            .is_some_and(|e| e.contains("step budget")));
    }

    #[test]
    fn threaded_pool_completes_jobs_from_two_tenants() {
        let queue = Arc::new(Mutex::new(JobQueue::new(9)));
        let stats = Arc::new(Mutex::new(ServiceStats::default()));
        let stop = Arc::new(AtomicBool::new(false));
        let ids: Vec<_> = {
            let mut q = queue.lock().expect("queue");
            (0..4)
                .map(|i| {
                    let mut spec = JobSpec::new(ProtocolKind::Square, 9);
                    spec.seed = 100 + i;
                    spec.tenant = if i % 2 == 0 {
                        "even".into()
                    } else {
                        "odd".into()
                    };
                    q.submit(spec)
                })
                .collect()
        };
        let config = WorkerConfig {
            slice: 128,
            idle_poll: Duration::from_millis(1),
        };
        let handles = spawn_pool(&queue, &stats, &stop, config, 3);
        let started = Instant::now();
        loop {
            if !queue.lock().expect("queue").has_live_jobs() {
                break;
            }
            assert!(
                started.elapsed() < Duration::from_secs(60),
                "pool must finish 4 small jobs quickly"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        stop.store(true, Ordering::SeqCst);
        for handle in handles {
            handle.join().expect("worker joins");
        }
        let q = queue.lock().expect("queue");
        for id in ids {
            let record = q.get(id).expect("record");
            assert_eq!(record.state, crate::job::JobState::Done, "job {id}");
            assert!(record.report.as_ref().expect("report").completed);
        }
    }
}
