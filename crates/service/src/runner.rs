//! Driving one job in bounded slices, with checkpoints at every slice boundary.
//!
//! A [`JobRunner`] owns a running [`Simulation`] of one of the three snapshot-capable
//! reference protocols, type-erased behind an enum so the queue and workers never
//! carry protocol type parameters. Workers call [`JobRunner::advance`] with a slice
//! allowance; between slices they checkpoint ([`JobRunner::checkpoint_bytes`]) and
//! park the job, so no single job starves the queue and a crashed worker loses at
//! most one slice of progress.
//!
//! # Determinism across crash/resume
//!
//! The slice arithmetic uses only state that survives a resume: the lifetime step
//! count carried by [`ExecutionStats`](nc_core::ExecutionStats) and the immutable
//! spec. A run that crashes and resumes from its last checkpoint therefore computes
//! the **same** per-slice allowances at the same lifetime step counts as an
//! uninterrupted run, drives the same byte-identical trajectory (the PR 5 snapshot
//! guarantee), and lands on the same [`JobReport`] — pinned by the crash-recovery
//! suite and the `--smoke` gate.

use nc_core::snapshot::Snapshot;
use nc_core::{Simulation, SimulationConfig, StopReason};
use nc_protocols::counting_line::{final_count, CountingOnALine};
use nc_protocols::line::GlobalLine;
use nc_protocols::square::Square;

use crate::job::{JobSpec, ProtocolKind};

/// What one bounded slice of execution produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SliceOutcome {
    /// The job reached its protocol's stopping condition. `completed` is whether the
    /// guaranteed outcome (spanning line, full square, halted counting leader) holds.
    Finished {
        /// Whether the protocol's guaranteed outcome was verified.
        completed: bool,
    },
    /// The lifetime step budget ran out before the stopping condition.
    BudgetExhausted,
    /// The slice allowance was spent; the job should be checkpointed and requeued.
    Yielded,
}

/// A type-erased running job.
pub enum JobRunner {
    /// A `GlobalLine` run (to stability).
    Line(Simulation<GlobalLine>),
    /// A `Square` run (to stability).
    Square(Simulation<Square>),
    /// A `CountingOnALine` run (until the leader halts).
    Counting(Simulation<CountingOnALine>),
}

impl JobRunner {
    /// Starts a fresh run from a spec.
    #[must_use]
    pub fn start(spec: &JobSpec) -> JobRunner {
        let config = SimulationConfig::new(spec.n)
            .with_seed(spec.seed)
            .with_sampling(spec.mode)
            .with_shards(spec.shards)
            .with_speculation(spec.speculation);
        match spec.protocol {
            ProtocolKind::Line => JobRunner::Line(Simulation::new(GlobalLine::new(), config)),
            ProtocolKind::Square => JobRunner::Square(Simulation::new(Square::new(), config)),
            ProtocolKind::Counting => {
                JobRunner::Counting(Simulation::new(CountingOnALine::new(2), config))
            }
        }
    }

    /// Rebuilds a run from checkpoint bytes taken by [`JobRunner::checkpoint_bytes`].
    ///
    /// # Errors
    /// The snapshot layer's typed errors (corrupt, truncated, protocol mismatch).
    pub fn resume(spec: &JobSpec, bytes: &[u8]) -> nc_core::Result<JobRunner> {
        let snapshot = Snapshot::from_bytes(bytes.to_vec())?;
        Ok(match spec.protocol {
            ProtocolKind::Line => {
                JobRunner::Line(Simulation::resume(GlobalLine::new(), &snapshot)?)
            }
            ProtocolKind::Square => {
                JobRunner::Square(Simulation::resume(Square::new(), &snapshot)?)
            }
            ProtocolKind::Counting => {
                JobRunner::Counting(Simulation::resume(CountingOnALine::new(2), &snapshot)?)
            }
        })
    }

    /// Serializes the run's full execution state (the PR 5 snapshot format).
    ///
    /// # Errors
    /// The snapshot layer's typed errors; never panics.
    pub fn checkpoint_bytes(&self) -> nc_core::Result<Vec<u8>> {
        let snapshot = match self {
            JobRunner::Line(sim) => sim.checkpoint()?,
            JobRunner::Square(sim) => sim.checkpoint()?,
            JobRunner::Counting(sim) => sim.checkpoint()?,
        };
        Ok(snapshot.into_bytes())
    }

    /// Lifetime execution statistics (survive checkpoint/resume).
    #[must_use]
    pub fn stats(&self) -> nc_core::ExecutionStats {
        match self {
            JobRunner::Line(sim) => sim.stats(),
            JobRunner::Square(sim) => sim.stats(),
            JobRunner::Counting(sim) => sim.stats(),
        }
    }

    /// Runs one slice: up to `slice` scheduler steps, clipped to whatever remains of
    /// the job's lifetime `step_budget`. The slice allowance is a function of the
    /// lifetime step count only, so crashed-and-resumed runs recompute identical
    /// slice boundaries (see the module docs).
    pub fn advance(&mut self, slice: u64, step_budget: u64) -> SliceOutcome {
        let lifetime = self.stats().steps;
        if lifetime >= step_budget {
            return SliceOutcome::BudgetExhausted;
        }
        let allowance = slice.min(step_budget - lifetime);
        let report = match self {
            JobRunner::Line(sim) => {
                sim.config_mut().max_steps = allowance;
                sim.run_until_stable()
            }
            JobRunner::Square(sim) => {
                sim.config_mut().max_steps = allowance;
                sim.run_until_stable()
            }
            JobRunner::Counting(sim) => {
                sim.config_mut().max_steps = allowance;
                sim.run_until_any_halted()
            }
        };
        match report.reason {
            StopReason::Stable | StopReason::AllHalted => SliceOutcome::Finished {
                completed: self.outcome_holds(),
            },
            // A dry scheduler (single-node population) can never progress further.
            StopReason::NoInteraction => SliceOutcome::Finished {
                completed: self.outcome_holds(),
            },
            StopReason::StepBudget => {
                if self.stats().steps >= step_budget {
                    SliceOutcome::BudgetExhausted
                } else {
                    SliceOutcome::Yielded
                }
            }
            // run_until_stable / run_until_any_halted never return Predicate.
            StopReason::Predicate => SliceOutcome::Finished {
                completed: self.outcome_holds(),
            },
        }
    }

    /// Whether the protocol's guaranteed outcome holds in the current configuration:
    /// the spanning line, the ⌊√n⌋ full square on perfect-square populations, or a
    /// halted counting leader — the same checks the `scheduler_sweep` rows assert.
    #[must_use]
    pub fn outcome_holds(&self) -> bool {
        match self {
            JobRunner::Line(sim) => {
                let n = sim.config().n;
                sim.output_shape().is_line(n)
            }
            JobRunner::Square(sim) => {
                let n = sim.config().n;
                let d = (n as f64).sqrt() as u32;
                // Non-perfect-square populations have no guaranteed shape; stability
                // itself is the outcome.
                d as usize * d as usize != n || sim.output_shape().is_full_square(d)
            }
            JobRunner::Counting(sim) => final_count(sim).is_some(),
        }
    }
}

/// The deterministic end-of-job report: every field is a pure function of the spec
/// and the executed trajectory, so a crashed-and-recovered run serializes to bytes
/// **identical** to an uncrashed run's (wall-clock metrics live in the stats tier's
/// sweep rows instead, which make no such promise).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobReport {
    /// Protocol name.
    pub protocol: String,
    /// Population size.
    pub n: usize,
    /// Scheduler seed.
    pub seed: u64,
    /// Sampling-mode label (sweep-row convention).
    pub mode: String,
    /// Shard count.
    pub shards: usize,
    /// Lifetime scheduler steps.
    pub steps: u64,
    /// Lifetime effective steps.
    pub effective_steps: u64,
    /// Lifetime bulk-credited ineffective selections.
    pub skipped_steps: u64,
    /// Whether the protocol's guaranteed outcome was verified.
    pub completed: bool,
}

impl JobReport {
    /// Builds the report from a finished runner.
    #[must_use]
    pub fn from_runner(spec: &JobSpec, runner: &JobRunner, completed: bool) -> JobReport {
        let stats = runner.stats();
        JobReport {
            protocol: spec.protocol.name().to_string(),
            n: spec.n,
            seed: spec.seed,
            mode: spec.mode_label(),
            shards: spec.shards,
            steps: stats.steps,
            effective_steps: stats.effective_steps,
            skipped_steps: stats.skipped_steps,
            completed,
        }
    }

    /// The report as one JSON object (fixed field order; deterministic bytes).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"protocol\": \"{}\", \"n\": {}, \"seed\": {}, \"mode\": \"{}\", \"shards\": {}, \"steps\": {}, \"effective_steps\": {}, \"skipped_steps\": {}, \"completed\": {}}}",
            self.protocol,
            self.n,
            self.seed,
            self.mode,
            self.shards,
            self.steps,
            self.effective_steps,
            self.skipped_steps,
            self.completed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobSpec, ProtocolKind};

    #[test]
    fn sliced_execution_matches_an_unsliced_run() {
        let spec = JobSpec::new(ProtocolKind::Square, 16);
        // Unsliced reference.
        let mut reference = JobRunner::start(&spec);
        let outcome = reference.advance(spec.step_budget, spec.step_budget);
        assert_eq!(outcome, SliceOutcome::Finished { completed: true });

        // Sliced run: tiny slices, checkpoint round-trip between every slice.
        let mut runner = JobRunner::start(&spec);
        let mut slices = 0;
        let completed = loop {
            match runner.advance(64, spec.step_budget) {
                SliceOutcome::Finished { completed } => break completed,
                SliceOutcome::Yielded => {
                    let bytes = runner.checkpoint_bytes().expect("checkpoint");
                    runner = JobRunner::resume(&spec, &bytes).expect("resume");
                    slices += 1;
                    assert!(slices < 100_000, "square(16) must converge");
                }
                SliceOutcome::BudgetExhausted => panic!("budget must suffice"),
            }
        };
        assert!(completed);
        assert_eq!(
            JobReport::from_runner(&spec, &runner, true),
            JobReport::from_runner(&spec, &reference, true),
            "slicing plus checkpoint round-trips must not change the trajectory"
        );
    }

    #[test]
    fn budget_exhaustion_is_reported_not_panicked() {
        let mut spec = JobSpec::new(ProtocolKind::Line, 64);
        spec.step_budget = 10;
        let mut runner = JobRunner::start(&spec);
        assert_eq!(
            runner.advance(64, spec.step_budget),
            SliceOutcome::BudgetExhausted
        );
        assert!(runner.stats().steps <= 10);
    }

    #[test]
    fn counting_runs_to_a_halted_leader() {
        let spec = JobSpec::new(ProtocolKind::Counting, 8);
        let mut runner = JobRunner::start(&spec);
        loop {
            match runner.advance(512, spec.step_budget) {
                SliceOutcome::Finished { completed } => {
                    assert!(completed, "the halted run must leave a halted leader");
                    break;
                }
                SliceOutcome::Yielded => {}
                SliceOutcome::BudgetExhausted => panic!("budget must suffice"),
            }
        }
    }

    #[test]
    fn report_json_is_deterministic() {
        let spec = JobSpec::new(ProtocolKind::Square, 9);
        let mut a = JobRunner::start(&spec);
        let mut b = JobRunner::start(&spec);
        while !matches!(
            a.advance(128, spec.step_budget),
            SliceOutcome::Finished { .. }
        ) {}
        while !matches!(
            b.advance(32, spec.step_budget),
            SliceOutcome::Finished { .. }
        ) {}
        assert_eq!(
            JobReport::from_runner(&spec, &a, a.outcome_holds()).to_json(),
            JobReport::from_runner(&spec, &b, b.outcome_holds()).to_json(),
            "different slice lengths must serialize identical reports"
        );
    }
}
