//! Job specifications: what a tenant submits, and how submissions are parsed.
//!
//! A job is one simulation run — protocol, population size, seed, sampling mode,
//! shard/speculation layout and a lifetime step budget — owned by a named tenant.
//! Submissions arrive as `application/x-www-form-urlencoded` bodies
//! (`protocol=square&n=16&seed=7`); every malformed field is a typed [`SpecError`]
//! that the HTTP tier answers with `422 Unprocessable Entity`, mirroring the
//! bounded, panic-free parsing discipline of the vendored HTTP server underneath.

use std::fmt;

use nc_core::scheduler::SamplingMode;

/// Identifier of a submitted job (dense, assigned in submission order).
pub type JobId = u64;

/// The protocols the service tier can run. Each maps onto one of the repository's
/// snapshot-capable reference protocols.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolKind {
    /// `GlobalLine` — the paper's spanning-line constructor, run to stability.
    Line,
    /// `Square` — the ⌊√n⌋ square constructor, run to stability.
    Square,
    /// `CountingOnALine` — the terminating counting protocol, run until the leader
    /// halts.
    Counting,
}

impl ProtocolKind {
    /// The snapshot/registry name of the protocol (matches `Protocol::name()`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Line => "global-line",
            ProtocolKind::Square => "square",
            ProtocolKind::Counting => "counting-on-a-line",
        }
    }

    fn parse(token: &str) -> Result<ProtocolKind, SpecError> {
        match token {
            "line" | "global-line" => Ok(ProtocolKind::Line),
            "square" => Ok(ProtocolKind::Square),
            "counting" | "counting-on-a-line" => Ok(ProtocolKind::Counting),
            _ => Err(SpecError::UnknownProtocol),
        }
    }
}

/// What a tenant submits: one bounded simulation run.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Which protocol to run.
    pub protocol: ProtocolKind,
    /// Population size.
    pub n: usize,
    /// Scheduler seed.
    pub seed: u64,
    /// Sampling mode of the uniform scheduler.
    pub mode: SamplingMode,
    /// Shard count of the world layout.
    pub shards: usize,
    /// Speculation window (only meaningful for speculative sampling).
    pub speculation: usize,
    /// Lifetime step budget: the job fails with `budget-exhausted` once its
    /// cumulative step count (which survives crash/resume) reaches this.
    pub step_budget: u64,
    /// Owning tenant (weighted round-robin key in the queue).
    pub tenant: String,
    /// Scheduling weight of the tenant (≥ 1; the queue's weighted round-robin
    /// draw uses the latest submitted weight per tenant).
    pub weight: u64,
    /// Crash injection: the worker deliberately panics after running this many
    /// slices of the job — once, on the first attempt only. The recovery path then
    /// resumes from the last checkpoint; the crash-recovery suite and the `--smoke`
    /// gate pin that the recovered report is byte-identical to an uncrashed run's.
    pub crash_after_slices: Option<u64>,
}

impl JobSpec {
    /// A baseline spec: adaptive sampling, one shard, a large budget, the default
    /// tenant.
    #[must_use]
    pub fn new(protocol: ProtocolKind, n: usize) -> JobSpec {
        JobSpec {
            protocol,
            n,
            seed: 0xC0FFEE,
            mode: SamplingMode::Adaptive,
            shards: 1,
            speculation: 0,
            step_budget: 2_000_000_000,
            tenant: "default".to_string(),
            weight: 1,
            crash_after_slices: None,
        }
    }

    /// The sampling-mode label this spec shows in sweep rows, following the
    /// `scheduler_sweep` labelling (`legacy`, `indexed`, `batched`, `sharded4`,
    /// `speculative8`, …).
    #[must_use]
    pub fn mode_label(&self) -> String {
        match self.mode {
            SamplingMode::Adaptive => "indexed".to_string(),
            SamplingMode::Legacy => "legacy".to_string(),
            SamplingMode::Batched => "batched".to_string(),
            SamplingMode::Sharded => format!("sharded{}", self.shards),
            SamplingMode::Speculative => format!("speculative{}", self.speculation),
        }
    }

    /// Parses an `application/x-www-form-urlencoded` submission body. Unknown keys
    /// are rejected (a typo would otherwise silently fall back to a default and run
    /// the wrong experiment); missing keys other than `protocol` and `n` take
    /// defaults.
    ///
    /// # Errors
    /// A typed [`SpecError`] naming the offending field.
    pub fn parse(body: &str) -> Result<JobSpec, SpecError> {
        let mut protocol = None;
        let mut n = None;
        let mut spec = JobSpec::new(ProtocolKind::Line, 0);
        for pair in body.split('&').filter(|p| !p.is_empty()) {
            let (key, value) = pair.split_once('=').ok_or(SpecError::MalformedPair)?;
            match key {
                "protocol" => protocol = Some(ProtocolKind::parse(value)?),
                "n" => n = Some(parse_number::<u64>("n", value)?),
                "seed" => spec.seed = parse_number("seed", value)?,
                "mode" => {
                    spec.mode = match value {
                        "adaptive" | "indexed" => SamplingMode::Adaptive,
                        "legacy" => SamplingMode::Legacy,
                        "batched" => SamplingMode::Batched,
                        "sharded" => SamplingMode::Sharded,
                        "speculative" => SamplingMode::Speculative,
                        _ => return Err(SpecError::UnknownMode),
                    }
                }
                "shards" => spec.shards = parse_number("shards", value)?,
                "speculation" => spec.speculation = parse_number("speculation", value)?,
                "step_budget" => spec.step_budget = parse_number("step_budget", value)?,
                "tenant" => {
                    if value.is_empty() || value.len() > 64 {
                        return Err(SpecError::BadTenant);
                    }
                    spec.tenant = value.to_string();
                }
                "weight" => spec.weight = parse_number("weight", value)?,
                "crash_after_slices" => {
                    spec.crash_after_slices = Some(parse_number("crash_after_slices", value)?);
                }
                _ => return Err(SpecError::UnknownKey),
            }
        }
        spec.protocol = protocol.ok_or(SpecError::MissingProtocol)?;
        spec.n = usize::try_from(n.ok_or(SpecError::MissingN)?)
            .map_err(|_| SpecError::BadNumber { key: "n" })?;
        if spec.n == 0 {
            return Err(SpecError::BadNumber { key: "n" });
        }
        if spec.shards == 0 {
            return Err(SpecError::BadNumber { key: "shards" });
        }
        if spec.weight == 0 {
            return Err(SpecError::BadNumber { key: "weight" });
        }
        if spec.step_budget == 0 {
            return Err(SpecError::BadNumber { key: "step_budget" });
        }
        Ok(spec)
    }
}

fn parse_number<T>(key: &'static str, value: &str) -> Result<T, SpecError>
where
    T: std::str::FromStr,
{
    value.parse().map_err(|_| SpecError::BadNumber { key })
}

/// Typed rejection of a malformed job submission (answered `422`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpecError {
    /// A body segment is not `key=value`.
    MalformedPair,
    /// A key this service does not define.
    UnknownKey,
    /// `protocol` names no known protocol.
    UnknownProtocol,
    /// `mode` names no known sampling mode.
    UnknownMode,
    /// A numeric field is unparsable or out of range.
    BadNumber {
        /// The offending key.
        key: &'static str,
    },
    /// The tenant name is empty or over 64 bytes.
    BadTenant,
    /// No `protocol` field.
    MissingProtocol,
    /// No `n` field.
    MissingN,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::MalformedPair => write!(f, "body segment is not key=value"),
            SpecError::UnknownKey => write!(f, "unknown submission key"),
            SpecError::UnknownProtocol => {
                write!(f, "unknown protocol (expected line, square or counting)")
            }
            SpecError::UnknownMode => write!(
                f,
                "unknown mode (expected adaptive, legacy, batched, sharded or speculative)"
            ),
            SpecError::BadNumber { key } => write!(f, "field '{key}' is not a valid number"),
            SpecError::BadTenant => write!(f, "tenant must be 1..=64 bytes"),
            SpecError::MissingProtocol => write!(f, "missing required field 'protocol'"),
            SpecError::MissingN => write!(f, "missing required field 'n'"),
        }
    }
}

impl std::error::Error for SpecError {}

/// Lifecycle state of a submitted job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// In a tenant queue, waiting for a worker slot (or for its retry backoff).
    Queued,
    /// Claimed by a worker, running one slice.
    Running,
    /// Reached its protocol's completion condition; a report is available.
    Done,
    /// Failed permanently (budget exhausted, retries exhausted, or a typed error).
    Failed,
    /// Cancelled by the tenant before completion.
    Cancelled,
}

impl JobState {
    /// The state's wire label.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_submission() {
        let spec = JobSpec::parse(
            "protocol=square&n=16&seed=7&mode=sharded&shards=4&speculation=0&step_budget=500000&tenant=alice&weight=3",
        )
        .expect("valid spec");
        assert_eq!(spec.protocol, ProtocolKind::Square);
        assert_eq!(spec.n, 16);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.mode, SamplingMode::Sharded);
        assert_eq!(spec.shards, 4);
        assert_eq!(spec.step_budget, 500_000);
        assert_eq!(spec.tenant, "alice");
        assert_eq!(spec.weight, 3);
        assert_eq!(spec.mode_label(), "sharded4");
    }

    #[test]
    fn defaults_fill_optional_fields() {
        let spec = JobSpec::parse("protocol=line&n=8").expect("minimal spec");
        assert_eq!(spec.protocol, ProtocolKind::Line);
        assert_eq!(spec.tenant, "default");
        assert_eq!(spec.mode, SamplingMode::Adaptive);
        assert_eq!(spec.mode_label(), "indexed");
        assert_eq!(spec.crash_after_slices, None);
    }

    #[test]
    fn rejections_are_typed() {
        let cases = [
            ("", SpecError::MissingProtocol),
            ("protocol=line", SpecError::MissingN),
            ("protocol=teleport&n=4", SpecError::UnknownProtocol),
            ("protocol=line&n=4&mode=psychic", SpecError::UnknownMode),
            ("protocol=line&n=zero", SpecError::BadNumber { key: "n" }),
            ("protocol=line&n=0", SpecError::BadNumber { key: "n" }),
            (
                "protocol=line&n=4&shards=0",
                SpecError::BadNumber { key: "shards" },
            ),
            (
                "protocol=line&n=4&weight=0",
                SpecError::BadNumber { key: "weight" },
            ),
            ("protocol=line&n=4&bogus=1", SpecError::UnknownKey),
            ("protocol=line&n=4&tenant=", SpecError::BadTenant),
            ("protocol&n=4", SpecError::MalformedPair),
        ];
        for (body, expected) in cases {
            assert_eq!(JobSpec::parse(body).unwrap_err(), expected, "body: {body}");
        }
    }
}
