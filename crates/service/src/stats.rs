//! The results/stats component: service-level counters and sweep-row export.
//!
//! Two views are served. `/stats` is a live counter block (submissions, slices,
//! crashes, retries, per-tenant slice shares — the observable side of the weighted
//! round-robin fairness claim). `/stats/rows` renders every **finished** job as a
//! [`SweepRow`], the exact row schema of `BENCH_scheduler.json` (`nc_bench::sweep`),
//! so the sweep binary's offline baseline and the service's online results are
//! readable by the same tooling. Wall-clock fields in those rows are measured, not
//! deterministic; the deterministic artifact is the job's [`JobReport`](crate::runner::JobReport).

use std::collections::BTreeMap;

use nc_bench::sweep::SweepRow;

use crate::job::JobState;
use crate::queue::{JobQueue, SliceResult};

/// Live counters of the service (all monotone).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServiceStats {
    /// Jobs submitted.
    pub submitted: u64,
    /// Slices executed (parked or finished; crashed slices count separately).
    pub slices: u64,
    /// Jobs finished with a report.
    pub done: u64,
    /// Jobs failed permanently.
    pub failed: u64,
    /// Worker crashes absorbed (injected or genuine).
    pub crashes: u64,
    /// Slices executed per tenant (the fairness observable).
    pub tenant_slices: BTreeMap<String, u64>,
}

impl ServiceStats {
    /// Records the outcome of one executed slice for `tenant`.
    pub fn record_slice(&mut self, tenant: &str, result: &SliceResult) {
        match result {
            SliceResult::Parked { .. } => {
                self.slices += 1;
                *self.tenant_slices.entry(tenant.to_string()).or_default() += 1;
            }
            SliceResult::Done { .. } => {
                self.slices += 1;
                self.done += 1;
                *self.tenant_slices.entry(tenant.to_string()).or_default() += 1;
            }
            SliceResult::Failed { .. } => self.failed += 1,
            SliceResult::Crashed { .. } => self.crashes += 1,
        }
    }

    /// The counter block as one JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let tenants = self
            .tenant_slices
            .iter()
            .map(|(tenant, slices)| format!("\"{}\": {}", escape_json(tenant), slices))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"submitted\": {}, \"slices\": {}, \"done\": {}, \"failed\": {}, \"crashes\": {}, \"tenant_slices\": {{{}}}}}",
            self.submitted, self.slices, self.done, self.failed, self.crashes, tenants
        )
    }
}

/// Renders every finished job of the queue as a `BENCH_scheduler.json`-style rows
/// document (the same [`SweepRow::to_json`] bytes the sweep binary emits).
#[must_use]
pub fn rows_json(queue: &JobQueue) -> String {
    let rows: Vec<String> = queue
        .records()
        .iter()
        .filter(|record| record.state == JobState::Done)
        .filter_map(|record| {
            let report = record.report.as_ref()?;
            let seconds = record.seconds.max(1e-9);
            Some(
                SweepRow {
                    protocol: report.protocol.clone(),
                    n: report.n,
                    mode: report.mode.clone(),
                    shards: report.shards,
                    seed: report.seed,
                    seconds: record.seconds,
                    steps: report.steps,
                    effective_steps: report.effective_steps,
                    skipped_steps: report.skipped_steps,
                    steps_per_sec: report.steps as f64 / seconds,
                    completed: report.completed,
                    // The service does not run the sweep's speculation probes per
                    // job; speculation counters are reported as zero here.
                    speculated: 0,
                    spec_committed: 0,
                    spec_rolled_back: 0,
                    spec_rollback_rate: 0.0,
                    snapshot_ms: 0.0,
                    resume_ms: 0.0,
                    // Per-job phase profiling is not wired through the service
                    // runner; plain rows keep the original schema.
                    profile: None,
                }
                .to_json(),
            )
        })
        .collect();
    format!("{{\n  \"rows\": [\n{}\n  ]\n}}\n", rows.join(",\n"))
}

/// Escapes a string for embedding in a JSON string literal (tenant names and error
/// messages are tenant-controlled input).
#[must_use]
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobSpec, ProtocolKind};
    use crate::queue::JobQueue;
    use crate::runner::JobReport;

    #[test]
    fn counters_track_slice_outcomes() {
        let mut stats = ServiceStats::default();
        stats.record_slice(
            "a",
            &SliceResult::Parked {
                snapshot: vec![],
                steps: 1,
            },
        );
        stats.record_slice(
            "a",
            &SliceResult::Done {
                report: JobReport {
                    protocol: "square".into(),
                    n: 4,
                    seed: 1,
                    mode: "indexed".into(),
                    shards: 1,
                    steps: 10,
                    effective_steps: 5,
                    skipped_steps: 0,
                    completed: true,
                },
                steps: 10,
            },
        );
        stats.record_slice(
            "b",
            &SliceResult::Crashed {
                message: "x".into(),
            },
        );
        assert_eq!(stats.slices, 2);
        assert_eq!(stats.done, 1);
        assert_eq!(stats.crashes, 1);
        assert_eq!(stats.tenant_slices.get("a"), Some(&2));
        assert_eq!(stats.tenant_slices.get("b"), None);
        let json = stats.to_json();
        assert!(json.contains("\"slices\": 2"), "{json}");
        assert!(json.contains("\"a\": 2"), "{json}");
    }

    #[test]
    fn rows_document_has_the_sweep_schema() {
        let mut queue = JobQueue::new(1);
        let id = queue.submit(JobSpec::new(ProtocolKind::Square, 9));
        let claim = queue.claim_next().expect("claim");
        let (result, seconds) = crate::worker::run_slice(&claim, 1_000_000);
        queue.complete_slice(id, result, seconds);
        let doc = rows_json(&queue);
        for key in [
            "\"rows\"",
            "\"protocol\": \"square\"",
            "\"steps_per_sec\"",
            "\"completed\": true",
        ] {
            assert!(doc.contains(key), "{key} missing in {doc}");
        }
    }

    #[test]
    fn json_escaping_neutralises_control_and_quote_bytes() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("x\ny"), "x\\ny");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
