//! Simulation-as-a-service: a snapshot-backed job queue, budgeted workers and an
//! HTTP results/stats tier over the shape-construction simulator.
//!
//! The crate follows the amimono-style modular-monolith layout the roadmap calls
//! for: three typed components behind one binary —
//!
//! * **queue** ([`queue`]): multi-tenant submission, weighted round-robin fairness
//!   (reusing the sharded sampler's rate-composition arithmetic for the tenant
//!   draw), cancellation, and crash retries with exponential backoff;
//! * **workers** ([`worker`]): each claim runs one bounded slice of a
//!   [`Simulation`](nc_core::Simulation) and checkpoints through the PR 5 snapshot
//!   format at every slice boundary, so a crashed worker — injected or genuine —
//!   loses at most one slice and the retry resumes **byte-identically** (pinned by
//!   `tests/crash_recovery.rs` and the `--smoke` gate);
//! * **results/stats** ([`stats`], [`http`]): deterministic per-job reports, live
//!   counters, and `BENCH_scheduler.json`-style sweep rows served over the vendored
//!   minimal HTTP/1.1 server (`vendor/tiny_http`);
//! * **metrics** ([`metrics`]): the `nc_obs`-backed registry behind `GET /metrics`
//!   — Prometheus text with integer-only values, split into deterministic families
//!   (queue depth/age in picks, crash/retry/backoff and step counters, HTTP status
//!   counts) and wall-clock families (slice latency, worker busy time), plus the
//!   poisoned-lock recovery policy shared by the HTTP and worker tiers.
//!
//! The `service` binary wires all four; `service --smoke` is the self-contained CI
//! gate (bind an ephemeral port, submit over real HTTP, poll to completion, check
//! the crash-recovered report against an uncrashed twin, and require a well-formed
//! `/metrics` scrape carrying every required family).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod job;
pub mod metrics;
pub mod queue;
pub mod runner;
pub mod stats;
pub mod worker;

pub use http::ServiceHandle;
pub use job::{JobId, JobSpec, JobState, ProtocolKind, SpecError};
pub use metrics::ServiceMetrics;
pub use queue::{JobQueue, SliceResult};
pub use runner::{JobReport, JobRunner, SliceOutcome};
pub use stats::ServiceStats;
pub use worker::WorkerConfig;
