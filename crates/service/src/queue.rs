//! The job queue: submission, per-tenant fair scheduling, cancellation, retries.
//!
//! Jobs are FIFO **within** a tenant; **across** tenants the queue draws the next
//! tenant by weighted sampling. The draw reuses the arithmetic of the sharded
//! sampler's rate composition (`nc_core::scheduler`, PR 3/4): there a shard is
//! selected with probability `Eₛ/ΣEₛ` by walking cumulative per-shard counts with one
//! uniform draw; here a tenant is selected with probability `wₜ/Σwₜ` by walking
//! cumulative weights with one uniform draw from a dedicated seeded stream
//! ([`nc_core::rng::substream`]). Same decomposition, same in-cell walk — which is
//! what makes the fairness claim quantitative: over many picks each tenant's share of
//! worker slices converges to its weight share, independent of how many jobs it
//! queues (pinned by the `weighted_share_converges_to_weights` test).
//!
//! Crashed attempts are requeued with exponential backoff measured in queue *picks*
//! (a deterministic clock under a deterministic pick sequence): after crash `k` the
//! job is ineligible for the next `2ᵏ` picks, capped at [`MAX_BACKOFF_PICKS`].
//! [`MAX_ATTEMPTS`] crashes fail the job permanently.

use std::collections::{BTreeMap, VecDeque};

use rand::rngs::StdRng;
use rand::Rng;

use crate::job::{JobId, JobSpec, JobState};
use crate::runner::JobReport;

/// Most crashes a job absorbs before it is failed permanently (successful slices do
/// not count against this; only lost attempts do).
pub const MAX_ATTEMPTS: u64 = 4;
/// Ceiling of the exponential retry backoff, in queue picks.
pub const MAX_BACKOFF_PICKS: u64 = 16;

/// The backoff (in queue picks) imposed after the `crashes`-th crash: `2ᵏ` capped
/// at [`MAX_BACKOFF_PICKS`]. Shared with the metrics tier so the
/// `service_backoff_picks_total` counter and the queue agree by construction.
#[must_use]
pub fn backoff_for(crashes: u64) -> u64 {
    2u64.saturating_pow(u32::try_from(crashes).unwrap_or(u32::MAX))
        .min(MAX_BACKOFF_PICKS)
}

/// Everything the queue tracks about one submitted job.
#[derive(Debug)]
pub struct JobRecord {
    /// The job's identifier.
    pub id: JobId,
    /// The submitted spec (immutable after submission).
    pub spec: JobSpec,
    /// Lifecycle state.
    pub state: JobState,
    /// Attempts started so far (1 on the first claim).
    pub attempts: u64,
    /// Worker crashes absorbed so far.
    pub crashes: u64,
    /// Slices executed so far (across all attempts, counting replayed slices).
    pub slices: u64,
    /// Lifetime scheduler steps at the last checkpoint.
    pub steps: u64,
    /// The last checkpoint (None until the first slice completes).
    pub snapshot: Option<Vec<u8>>,
    /// Cancellation flag, checked by workers between slices.
    pub cancel_requested: bool,
    /// The queue pick-counter value before which the job must not be claimed.
    pub not_before_pick: u64,
    /// The pick-counter value when the job last entered a tenant queue (submission
    /// or requeue) — the queue-age observable, measured in picks, not wall clock.
    pub enqueued_pick: u64,
    /// The final report, once done.
    pub report: Option<JobReport>,
    /// Wall-clock seconds of executed slices (stats only; not deterministic).
    pub seconds: f64,
    /// A human-readable error, once failed.
    pub error: Option<String>,
}

impl JobRecord {
    /// One JSON object describing the job's current status.
    #[must_use]
    pub fn status_json(&self) -> String {
        format!(
            "{{\"id\": {}, \"tenant\": \"{}\", \"protocol\": \"{}\", \"n\": {}, \"state\": \"{}\", \"attempts\": {}, \"crashes\": {}, \"slices\": {}, \"steps\": {}, \"error\": {}}}",
            self.id,
            crate::stats::escape_json(&self.spec.tenant),
            self.spec.protocol.name(),
            self.spec.n,
            self.state.as_str(),
            self.attempts,
            self.crashes,
            self.slices,
            self.steps,
            match &self.error {
                Some(e) => format!("\"{}\"", crate::stats::escape_json(e)),
                None => "null".to_string(),
            }
        )
    }
}

/// A claim handed to a worker: everything needed to run one slice without holding
/// the queue lock.
#[derive(Debug)]
pub struct Claim {
    /// The claimed job.
    pub id: JobId,
    /// The job's spec (cloned; the record keeps the original).
    pub spec: JobSpec,
    /// The last checkpoint to resume from (None → start fresh).
    pub snapshot: Option<Vec<u8>>,
    /// Slices already executed (drives crash injection).
    pub slices: u64,
    /// Crashes already absorbed (crash injection fires on the first attempt only).
    pub crashes: u64,
    /// Lifetime steps at the resume checkpoint (the sim-step delta baseline).
    pub steps: u64,
    /// How many picks the job waited in the queue before this claim.
    pub queued_age_picks: u64,
}

/// How a worker hands a slice's result back to the queue.
#[derive(Debug)]
pub enum SliceResult {
    /// The slice's allowance was spent: park the checkpoint and requeue.
    Parked {
        /// The checkpoint taken at the slice boundary.
        snapshot: Vec<u8>,
        /// Lifetime steps at the boundary.
        steps: u64,
    },
    /// The job finished.
    Done {
        /// The deterministic end-of-job report.
        report: JobReport,
        /// Lifetime steps at completion.
        steps: u64,
    },
    /// The job failed with a typed/terminal error (budget exhausted, corrupt
    /// snapshot, …). Not retried: these are deterministic failures.
    Failed {
        /// Human-readable cause.
        error: String,
    },
    /// The worker crashed mid-slice (caught panic). Progress since the last
    /// checkpoint is lost; the queue requeues with backoff or fails the job once
    /// [`MAX_ATTEMPTS`] is reached.
    Crashed {
        /// The recovered panic message.
        message: String,
    },
}

/// The multi-tenant job queue. Interior mutability is the caller's concern (the
/// service wraps it in a `Mutex`); the queue itself is plain sequential state, which
/// keeps every transition unit-testable.
pub struct JobQueue {
    jobs: Vec<JobRecord>,
    /// FIFO of queued job ids per tenant.
    tenants: BTreeMap<String, VecDeque<JobId>>,
    /// Latest submitted weight per tenant.
    weights: BTreeMap<String, u64>,
    /// Dedicated RNG stream for tenant draws.
    rng: StdRng,
    /// Monotone pick counter (the backoff clock).
    picks: u64,
}

impl JobQueue {
    /// An empty queue whose tenant draws come from substream 0xFA1 of `seed`.
    #[must_use]
    pub fn new(seed: u64) -> JobQueue {
        JobQueue {
            jobs: Vec::new(),
            tenants: BTreeMap::new(),
            weights: BTreeMap::new(),
            rng: nc_core::rng::substream(seed, 0xFA1),
            picks: 0,
        }
    }

    /// Submits a job; returns its id.
    pub fn submit(&mut self, spec: JobSpec) -> JobId {
        let id = self.jobs.len() as JobId;
        self.weights.insert(spec.tenant.clone(), spec.weight.max(1));
        self.tenants
            .entry(spec.tenant.clone())
            .or_default()
            .push_back(id);
        self.jobs.push(JobRecord {
            id,
            spec,
            state: JobState::Queued,
            attempts: 0,
            crashes: 0,
            slices: 0,
            steps: 0,
            snapshot: None,
            cancel_requested: false,
            not_before_pick: 0,
            enqueued_pick: self.picks,
            report: None,
            seconds: 0.0,
            error: None,
        });
        id
    }

    /// The record of a job, if it exists.
    #[must_use]
    pub fn get(&self, id: JobId) -> Option<&JobRecord> {
        self.jobs.get(usize::try_from(id).ok()?)
    }

    /// All records (for the stats tier).
    #[must_use]
    pub fn records(&self) -> &[JobRecord] {
        &self.jobs
    }

    /// Requests cancellation. Queued jobs cancel immediately; running jobs cancel at
    /// their next slice boundary. Returns the resulting state, or `None` for an
    /// unknown id.
    pub fn cancel(&mut self, id: JobId) -> Option<JobState> {
        let record = self.jobs.get_mut(usize::try_from(id).ok()?)?;
        match record.state {
            JobState::Queued => {
                record.state = JobState::Cancelled;
                record.cancel_requested = true;
                let tenant = record.spec.tenant.clone();
                if let Some(queue) = self.tenants.get_mut(&tenant) {
                    queue.retain(|&queued| queued != id);
                }
            }
            JobState::Running => record.cancel_requested = true,
            JobState::Done | JobState::Failed | JobState::Cancelled => {}
        }
        Some(record.state)
    }

    /// Claims the next eligible job for a worker, drawing the tenant by weight (see
    /// the module docs) and skipping jobs still in backoff. Returns `None` when no
    /// job is eligible right now.
    pub fn claim_next(&mut self) -> Option<Claim> {
        self.picks += 1;
        let pick = self.picks;
        // Tenants with at least one eligible job, in deterministic (BTreeMap) order.
        let eligible: Vec<(String, u64)> = self
            .tenants
            .iter()
            .filter(|(_, queue)| {
                queue.iter().any(|&id| {
                    let record = &self.jobs[id as usize];
                    record.state == JobState::Queued && record.not_before_pick <= pick
                })
            })
            .map(|(tenant, _)| {
                let weight = self.weights.get(tenant).copied().unwrap_or(1);
                (tenant.clone(), weight)
            })
            .collect();
        if eligible.is_empty() {
            return None;
        }
        // Weighted draw: one uniform sample walked through the cumulative weights —
        // the sharded sampler's composition arithmetic with weights in place of
        // per-shard effective counts.
        let total: u64 = eligible.iter().map(|(_, w)| w).sum();
        let mut ticket = self.rng.gen_range(0..total);
        let tenant = eligible
            .iter()
            .find(|(_, weight)| {
                if ticket < *weight {
                    true
                } else {
                    ticket -= weight;
                    false
                }
            })
            .map(|(tenant, _)| tenant.clone())
            .expect("cumulative walk lands inside the total");
        let queue = self.tenants.get_mut(&tenant).expect("eligible tenant");
        let position = queue.iter().position(|&id| {
            let record = &self.jobs[id as usize];
            record.state == JobState::Queued && record.not_before_pick <= pick
        })?;
        let id = queue.remove(position).expect("position is in range");
        let record = &mut self.jobs[id as usize];
        record.state = JobState::Running;
        record.attempts += 1;
        Some(Claim {
            id,
            spec: record.spec.clone(),
            snapshot: record.snapshot.clone(),
            slices: record.slices,
            crashes: record.crashes,
            steps: record.steps,
            queued_age_picks: pick.saturating_sub(record.enqueued_pick),
        })
    }

    /// Applies a worker's slice result. `seconds` is the slice's wall clock (stats
    /// only). Returns the job's new state.
    pub fn complete_slice(&mut self, id: JobId, result: SliceResult, seconds: f64) -> JobState {
        let pick = self.picks;
        let record = &mut self.jobs[id as usize];
        record.seconds += seconds;
        match result {
            _ if record.cancel_requested => {
                // Cancellation wins over whatever the slice produced: the tenant
                // asked for the job to stop, and the slice boundary is the
                // serialization point where that takes effect.
                record.state = JobState::Cancelled;
            }
            SliceResult::Parked { snapshot, steps } => {
                record.slices += 1;
                record.steps = steps;
                record.snapshot = Some(snapshot);
                record.state = JobState::Queued;
                record.enqueued_pick = pick;
                self.tenants
                    .entry(record.spec.tenant.clone())
                    .or_default()
                    .push_back(id);
            }
            SliceResult::Done { report, steps } => {
                record.slices += 1;
                record.steps = steps;
                record.report = Some(report);
                record.state = JobState::Done;
            }
            SliceResult::Failed { error } => {
                record.error = Some(error);
                record.state = JobState::Failed;
            }
            SliceResult::Crashed { message } => {
                record.crashes += 1;
                // `attempts` counts every claim (successful slices included), so the
                // retry cap compares crashes: a long job that crashes once late must
                // not be failed for having run many slices.
                if record.crashes >= MAX_ATTEMPTS {
                    record.error = Some(format!(
                        "crashed {} times (last: {message}); retries exhausted",
                        record.crashes
                    ));
                    record.state = JobState::Failed;
                } else {
                    // Exponential backoff in queue picks: 2, 4, 8, … capped.
                    record.not_before_pick = pick + backoff_for(record.crashes);
                    record.error =
                        Some(format!("crashed (attempt {}): {message}", record.attempts));
                    record.state = JobState::Queued;
                    record.enqueued_pick = pick;
                    self.tenants
                        .entry(record.spec.tenant.clone())
                        .or_default()
                        .push_back(id);
                }
            }
        }
        record.state
    }

    /// The monotone pick counter (the backoff/age clock, exposed for metrics).
    #[must_use]
    pub fn picks(&self) -> u64 {
        self.picks
    }

    /// Queued-job count per tenant, every tenant ever seen included — a drained
    /// tenant reports 0 rather than vanishing, so gauge series stay continuous.
    #[must_use]
    pub fn queued_depths(&self) -> Vec<(String, u64)> {
        self.tenants
            .iter()
            .map(|(tenant, queue)| {
                let depth = queue
                    .iter()
                    .filter(|&&id| self.jobs[id as usize].state == JobState::Queued)
                    .count() as u64;
                (tenant.clone(), depth)
            })
            .collect()
    }

    /// Whether any job is still queued or running.
    #[must_use]
    pub fn has_live_jobs(&self) -> bool {
        self.jobs
            .iter()
            .any(|r| matches!(r.state, JobState::Queued | JobState::Running))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobSpec, ProtocolKind};

    fn spec(tenant: &str, weight: u64) -> JobSpec {
        let mut spec = JobSpec::new(ProtocolKind::Line, 8);
        spec.tenant = tenant.to_string();
        spec.weight = weight;
        spec
    }

    #[test]
    fn fifo_within_a_tenant() {
        let mut queue = JobQueue::new(1);
        let a = queue.submit(spec("t", 1));
        let b = queue.submit(spec("t", 1));
        assert_eq!(queue.claim_next().expect("claim").id, a);
        assert_eq!(queue.claim_next().expect("claim").id, b);
        assert!(queue.claim_next().is_none());
    }

    #[test]
    fn weighted_share_converges_to_weights() {
        let mut queue = JobQueue::new(42);
        // Tenant "heavy" has weight 3, "light" weight 1: over many claims the pick
        // share must converge to 3:1 regardless of how many jobs each queues.
        let mut heavy = 0;
        let mut light = 0;
        for _ in 0..400 {
            let h = queue.submit(spec("heavy", 3));
            let l = queue.submit(spec("light", 1));
            let first = queue.claim_next().expect("two queued jobs");
            if first.spec.tenant == "heavy" {
                heavy += 1;
            } else {
                light += 1;
            }
            // Drain the round so each iteration offers exactly one heavy and one
            // light job to the draw.
            let _ = queue.claim_next().expect("second job");
            for id in [h, l] {
                queue.complete_slice(
                    id,
                    SliceResult::Failed {
                        error: "test drain".to_string(),
                    },
                    0.0,
                );
            }
        }
        let share = f64::from(heavy) / f64::from(heavy + light);
        assert!(
            (share - 0.75).abs() < 0.08,
            "heavy tenant share {share} must approach its 3/4 weight share"
        );
    }

    #[test]
    fn cancel_queued_and_running() {
        let mut queue = JobQueue::new(1);
        let a = queue.submit(spec("t", 1));
        let b = queue.submit(spec("t", 1));
        // Queued → cancelled immediately, and never claimed.
        assert_eq!(queue.cancel(a), Some(JobState::Cancelled));
        let claim = queue.claim_next().expect("b is claimable");
        assert_eq!(claim.id, b);
        // Running → cancel takes effect at the slice boundary, whatever the result.
        assert_eq!(queue.cancel(b), Some(JobState::Running));
        let state = queue.complete_slice(
            b,
            SliceResult::Parked {
                snapshot: vec![1],
                steps: 10,
            },
            0.0,
        );
        assert_eq!(state, JobState::Cancelled);
        assert!(queue.claim_next().is_none());
        assert_eq!(queue.cancel(999), None);
    }

    #[test]
    fn crashes_requeue_with_backoff_then_fail() {
        let mut queue = JobQueue::new(1);
        let id = queue.submit(spec("t", 1));
        for attempt in 1..=MAX_ATTEMPTS {
            // Respect the backoff clock: claims before not_before_pick return None.
            let claim = loop {
                match queue.claim_next() {
                    Some(claim) => break claim,
                    None => continue,
                }
            };
            assert_eq!(claim.id, id);
            assert_eq!(claim.crashes, attempt - 1);
            let state = queue.complete_slice(
                id,
                SliceResult::Crashed {
                    message: "injected".to_string(),
                },
                0.0,
            );
            if attempt < MAX_ATTEMPTS {
                assert_eq!(state, JobState::Queued, "attempt {attempt} requeues");
            } else {
                assert_eq!(state, JobState::Failed, "retries exhaust at {MAX_ATTEMPTS}");
            }
        }
        let record = queue.get(id).expect("record");
        assert_eq!(record.crashes, MAX_ATTEMPTS);
        assert!(record
            .error
            .as_deref()
            .is_some_and(|e| e.contains("retries exhausted")));
    }

    #[test]
    fn backoff_defers_but_does_not_starve() {
        let mut queue = JobQueue::new(1);
        let id = queue.submit(spec("t", 1));
        let _ = queue.claim_next().expect("claim");
        queue.complete_slice(
            id,
            SliceResult::Crashed {
                message: "injected".to_string(),
            },
            0.0,
        );
        // Immediately after the crash the job is in backoff…
        assert!(queue.claim_next().is_none());
        // …but a bounded number of further picks makes it eligible again.
        let mut reclaimed = false;
        for _ in 0..MAX_BACKOFF_PICKS + 2 {
            if queue.claim_next().is_some() {
                reclaimed = true;
                break;
            }
        }
        assert!(reclaimed, "backoff must expire within the cap");
    }

    #[test]
    fn parked_snapshot_rides_the_requeue() {
        let mut queue = JobQueue::new(1);
        let id = queue.submit(spec("t", 1));
        let first = queue.claim_next().expect("claim");
        assert_eq!(first.snapshot, None);
        queue.complete_slice(
            id,
            SliceResult::Parked {
                snapshot: vec![7, 7, 7],
                steps: 42,
            },
            0.0,
        );
        let second = queue.claim_next().expect("reclaim");
        assert_eq!(second.snapshot.as_deref(), Some(&[7u8, 7, 7][..]));
        assert_eq!(second.slices, 1);
        assert_eq!(queue.get(id).expect("record").steps, 42);
    }
}
