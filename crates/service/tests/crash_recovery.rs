//! Crash-injection integration suite: kill a worker mid-job, require byte-identical
//! completion after resume.
//!
//! These tests run the real worker pool on real threads with the crash injected
//! through the job spec's `crash_after_slices` knob (the worker panics inside its
//! slice; `catch_unwind` + `nc_core::panic_message` recover it). The recovery
//! argument, end to end:
//!
//! 1. workers checkpoint through the PR 5 snapshot format at every slice boundary,
//!    and slice boundaries are a pure function of lifetime step counts (which the
//!    snapshot carries), so crashed and uncrashed runs share their boundaries;
//! 2. `Simulation::resume` restores a trajectory byte-identical to the
//!    uninterrupted run's (the PR 5 guarantee, pinned by `tests/crash_resume.rs`);
//! 3. therefore the deterministic `JobReport` of a crashed-and-recovered job must
//!    equal the uncrashed twin's **byte for byte** — which is what these tests
//!    assert, across protocols and sampling modes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use nc_core::scheduler::SamplingMode;
use nc_service::http::ServiceHandle;
use nc_service::job::{JobId, JobSpec, JobState, ProtocolKind};
use nc_service::queue::JobQueue;
use nc_service::stats::ServiceStats;
use nc_service::worker::{spawn_pool, WorkerConfig};
use std::sync::Arc;

/// Runs `specs` to quiescence on a threaded pool; returns the queue afterwards.
fn run_pool(specs: Vec<JobSpec>, workers: usize, slice: u64) -> (JobQueue, ServiceStats) {
    let service = ServiceHandle::new(0xD15C);
    {
        let mut q = service.queue.lock().expect("queue");
        for spec in specs {
            q.submit(spec);
        }
    }
    let stop = Arc::new(AtomicBool::new(false));
    let config = WorkerConfig {
        slice,
        idle_poll: Duration::from_millis(1),
    };
    let handles = spawn_pool(&service, &stop, config, workers);
    let started = Instant::now();
    loop {
        if !service.queue.lock().expect("queue").has_live_jobs() {
            break;
        }
        assert!(
            started.elapsed() < Duration::from_secs(120),
            "the pool must drain"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    stop.store(true, Ordering::SeqCst);
    for handle in handles {
        handle.join().expect("worker joins");
    }
    let ServiceHandle { queue, stats, .. } = service;
    let queue = Arc::try_unwrap(queue)
        .unwrap_or_else(|_| panic!("pool joined"))
        .into_inner()
        .expect("unpoisoned");
    let stats = Arc::try_unwrap(stats)
        .unwrap_or_else(|_| panic!("pool joined"))
        .into_inner()
        .expect("unpoisoned");
    (queue, stats)
}

fn report_json(queue: &JobQueue, id: JobId) -> String {
    let record = queue.get(id).expect("record");
    assert_eq!(record.state, JobState::Done, "job {id}: {:?}", record.error);
    record.report.as_ref().expect("report").to_json()
}

#[test]
fn killed_worker_resumes_to_byte_identical_reports_across_protocols_and_modes() {
    // Clean twin and crash-injected twin for every (protocol, mode) cell; the
    // crash point varies so early and late kills are both exercised.
    let cells: [(ProtocolKind, SamplingMode, usize, u64); 4] = [
        (ProtocolKind::Line, SamplingMode::Adaptive, 1, 1),
        (ProtocolKind::Square, SamplingMode::Sharded, 4, 2),
        (ProtocolKind::Square, SamplingMode::Batched, 1, 3),
        (ProtocolKind::Counting, SamplingMode::Adaptive, 1, 1),
    ];
    let mut specs = Vec::new();
    for (protocol, mode, shards, crash_after) in cells {
        let n = if protocol == ProtocolKind::Counting {
            8
        } else {
            16
        };
        let mut clean = JobSpec::new(protocol, n);
        clean.seed = 2026;
        clean.mode = mode;
        clean.shards = shards;
        clean.tenant = "clean".to_string();
        let mut crashed = clean.clone();
        crashed.tenant = "crashed".to_string();
        crashed.crash_after_slices = Some(crash_after);
        specs.push(clean);
        specs.push(crashed);
    }
    let (queue, stats) = run_pool(specs, 3, 96);
    for cell in 0..4 {
        let clean = report_json(&queue, (cell * 2) as JobId);
        let crashed_id = (cell * 2 + 1) as JobId;
        let crashed = report_json(&queue, crashed_id);
        assert_eq!(
            crashed, clean,
            "cell {cell}: crash-recovered report must match the uncrashed twin byte for byte"
        );
        let record = queue.get(crashed_id).expect("record");
        assert_eq!(
            record.crashes, 1,
            "cell {cell}: the injection fires exactly once"
        );
    }
    assert_eq!(stats.crashes, 4, "one absorbed crash per injected cell");
    assert_eq!(stats.done, 8);
}

#[test]
fn a_crash_on_the_very_first_slice_restarts_from_scratch() {
    // No checkpoint exists yet when the worker dies: the retry must start fresh and
    // still match the uncrashed twin.
    let mut clean = JobSpec::new(ProtocolKind::Square, 9);
    clean.seed = 7;
    let mut crashed = clean.clone();
    crashed.crash_after_slices = Some(0);
    let (queue, _) = run_pool(vec![clean, crashed], 2, 128);
    assert_eq!(report_json(&queue, 0), report_json(&queue, 1));
    let record = queue.get(1).expect("record");
    assert_eq!(record.crashes, 1);
    assert!(
        record
            .error
            .as_deref()
            .is_some_and(|e| e.contains("injected crash")),
        "the recovered panic message is kept for diagnosis: {:?}",
        record.error
    );
}

#[test]
fn retry_accounting_survives_alongside_successful_tenants() {
    // A crashing job shares the pool with healthy jobs from another tenant; the
    // healthy tenant must be unaffected and the crasher must still recover.
    let mut crasher = JobSpec::new(ProtocolKind::Square, 16);
    crasher.seed = 99;
    crasher.tenant = "flaky".to_string();
    crasher.crash_after_slices = Some(1);
    let mut specs = vec![crasher];
    for i in 0..3 {
        let mut healthy = JobSpec::new(ProtocolKind::Square, 9);
        healthy.seed = 200 + i;
        healthy.tenant = "steady".to_string();
        specs.push(healthy);
    }
    let (queue, stats) = run_pool(specs, 2, 96);
    for id in 0..4 {
        let record = queue.get(id).expect("record");
        assert_eq!(record.state, JobState::Done, "job {id}: {:?}", record.error);
        assert!(
            record.report.as_ref().expect("report").completed,
            "job {id}"
        );
    }
    let flaky = queue.get(0).expect("record");
    assert_eq!(flaky.crashes, 1);
    assert!(
        flaky.attempts > flaky.slices,
        "the lost attempt is accounted"
    );
    assert_eq!(stats.crashes, 1);
    assert!(stats.tenant_slices.get("steady").copied().unwrap_or(0) > 0);
}
