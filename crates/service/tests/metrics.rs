//! The `/metrics` tier's contracts: required families, structural validity under
//! concurrent multi-tenant scraping, counter monotonicity, and byte-identical
//! deterministic families across identical seeded runs.
//!
//! The determinism claim is scoped deliberately: families marked wall-clock at
//! registration (slice latency, worker busy time, idle polls) are measurements
//! and are *excluded*; everything else — HTTP status counts, submission and
//! completion counters, crash/retry/backoff accounting, simulation step counts,
//! queue depth and queue age measured in picks — is a pure function of the
//! request/claim sequence, so two identical seeded single-threaded runs must
//! render it byte-for-byte (`ServiceMetrics::render_deterministic`). The
//! `tests/README.md` section "What is observable vs what is deterministic"
//! documents the same split prose-side.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use nc_obs::validate_prometheus_text;
use nc_service::http::{route, ServiceHandle};
use nc_service::metrics::REQUIRED_FAMILIES;
use nc_service::worker::{drain, spawn_pool, WorkerConfig};
use tiny_http::Method;

/// Routes one request and returns `(status, body)`.
fn call(service: &ServiceHandle, method: Method, url: &str, body: &[u8]) -> (u16, String) {
    let response = route(service, method, url, body);
    let status = response.status_code();
    (status, String::from_utf8_lossy(response.data()).to_string())
}

/// Scrapes `/metrics` through the router and validates the exposition format.
fn scrape(service: &ServiceHandle) -> String {
    let (status, body) = call(service, Method::Get, "/metrics", b"");
    assert_eq!(status, 200);
    validate_prometheus_text(&body).expect("every scrape must be well-formed");
    body
}

/// The value of an exactly-named sample line (no labels).
fn sample(text: &str, series: &str) -> u64 {
    text.lines()
        .find_map(|line| line.strip_prefix(&format!("{series} ")))
        .unwrap_or_else(|| panic!("sample {series} missing from:\n{text}"))
        .trim()
        .parse()
        .expect("integer sample value")
}

/// A fixed scripted run: submissions from two tenants (one crash-injected),
/// scrape, single-threaded drain, scrape. Every step is deterministic under the
/// seed, including the crash, its retry and its backoff.
fn scripted_run(seed: u64) -> ServiceHandle {
    let service = ServiceHandle::new(seed);
    for body in [
        "protocol=square&n=16&seed=11&tenant=alpha".to_string(),
        "protocol=square&n=9&seed=12&tenant=beta&weight=2".to_string(),
        "protocol=square&n=16&seed=11&tenant=beta&crash_after_slices=1".to_string(),
        "protocol=line&n=8&seed=13&tenant=alpha".to_string(),
    ] {
        let (status, _) = call(&service, Method::Post, "/jobs", body.as_bytes());
        assert_eq!(status, 201);
    }
    let _ = scrape(&service);
    drain(&service, 256);
    let _ = scrape(&service);
    service
}

#[test]
fn every_required_family_is_present_after_a_real_run() {
    let service = scripted_run(0xABCD);
    let text = scrape(&service);
    for family in REQUIRED_FAMILIES {
        assert!(
            text.contains(&format!("# TYPE {family} ")),
            "{family} missing from:\n{text}"
        );
    }
    // The run's shape is reflected, not just declared: 4 submissions, 3 done
    // (one crash absorbed and retried), per-tenant slice counters and depths.
    assert_eq!(sample(&text, "service_jobs_submitted_total"), 4);
    assert_eq!(sample(&text, "service_jobs_done_total"), 4);
    assert_eq!(sample(&text, "service_crashes_total"), 1);
    assert_eq!(sample(&text, "service_retries_total"), 1);
    assert!(sample(&text, "service_sim_steps_total") > 0);
    for tenant_series in [
        "service_queue_depth{tenant=\"alpha\"} 0",
        "service_queue_depth{tenant=\"beta\"} 0",
    ] {
        assert!(
            text.contains(tenant_series),
            "{tenant_series}: drained tenants report depth 0:\n{text}"
        );
    }
    assert!(
        text.contains("service_slices_total{tenant=\"alpha\"}"),
        "{text}"
    );
    assert!(
        text.contains("service_slices_total{tenant=\"beta\"}"),
        "{text}"
    );
}

#[test]
fn counters_are_monotone_across_scrapes() {
    let service = ServiceHandle::new(0xBEEF);
    let monotone = [
        "service_http_requests_total{status=\"200\"}",
        "service_jobs_submitted_total",
        "service_jobs_done_total",
        "service_sim_steps_total",
        "service_queue_age_picks_count",
    ];
    let mut last = vec![0u64; monotone.len()];
    // route() counts a request *after* rendering its response, so a scrape never
    // sees itself; this throwaway scrape seeds the status="200" series.
    let _ = scrape(&service);
    for round in 0..4 {
        let body = format!(
            "protocol=square&n=9&seed={}&tenant=t{}",
            40 + round,
            round % 2
        );
        let (status, _) = call(&service, Method::Post, "/jobs", body.as_bytes());
        assert_eq!(status, 201);
        drain(&service, 256);
        let text = scrape(&service);
        for (i, series) in monotone.iter().enumerate() {
            let value = sample(&text, series);
            assert!(
                value >= last[i],
                "round {round}: {series} went backwards ({} -> {value})",
                last[i]
            );
            last[i] = value;
        }
    }
    assert_eq!(last[1], 4, "four submissions were counted");
    assert_eq!(last[2], 4, "four completions were counted");
}

#[test]
fn identical_seeded_runs_render_identical_deterministic_metrics() {
    let a = scripted_run(0x5EED);
    let b = scripted_run(0x5EED);
    let det_a = a.metrics.render_deterministic();
    let det_b = b.metrics.render_deterministic();
    assert_eq!(
        det_a, det_b,
        "non-wall-clock families must reproduce byte-for-byte under a fixed seed"
    );
    // The deterministic render is the full scrape minus the marked families —
    // never empty, and never carrying the wall-clock ones.
    assert!(det_a.contains("service_queue_age_picks"));
    assert!(det_a.contains("service_backoff_picks_total"));
    assert!(!det_a.contains("service_slice_microseconds"));
    assert!(!det_a.contains("service_worker_busy_microseconds_total"));
    // A different seed changes the queue's tenant draws, which the deterministic
    // families are allowed (not required) to reflect — but the *full* scrape of
    // run A validates either way; self-check the negative control is meaningful.
    validate_prometheus_text(&det_a).expect("the deterministic subset is itself well-formed");
}

#[test]
fn concurrent_multi_tenant_scrapes_stay_well_formed() {
    let service = ServiceHandle::new(0xC0C0);
    {
        let mut queue = service.queue.lock().expect("queue");
        for i in 0..6u64 {
            let body = format!(
                "protocol=square&n=9&seed={}&tenant={}",
                60 + i,
                if i % 2 == 0 { "even" } else { "odd" }
            );
            let spec = nc_service::job::JobSpec::parse(&body).expect("valid spec");
            queue.submit(spec);
        }
    }
    let stop = Arc::new(AtomicBool::new(false));
    let config = WorkerConfig {
        slice: 128,
        idle_poll: Duration::from_millis(1),
    };
    let workers = spawn_pool(&service, &stop, config, 2);

    // Four scrapers hammer /metrics while the pool drains the queue; every
    // scrape must be structurally valid despite concurrent counter updates.
    let scrapers: Vec<_> = (0..4)
        .map(|_| {
            let service = service.clone();
            std::thread::spawn(move || {
                for _ in 0..25 {
                    let _ = scrape(&service);
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
        })
        .collect();

    let started = Instant::now();
    while service.queue.lock().expect("queue").has_live_jobs() {
        assert!(
            started.elapsed() < Duration::from_secs(60),
            "six small jobs must drain quickly"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    for scraper in scrapers {
        scraper.join().expect("scraper joins");
    }
    stop.store(true, Ordering::SeqCst);
    for worker in workers {
        worker.join().expect("worker joins");
    }

    let text = scrape(&service);
    assert_eq!(sample(&text, "service_jobs_done_total"), 6);
    for tenant in ["even", "odd"] {
        assert!(
            text.contains(&format!("service_slices_total{{tenant=\"{tenant}\"}}")),
            "tenant {tenant} missing from:\n{text}"
        );
    }
}
