//! HTTP framing fuzz: truncated, oversized and bit-flipped requests must produce
//! typed 4xx/5xx rejections — never a panic, never an unbounded allocation.
//!
//! Three layers are driven: the pure parser (`tiny_http::parse_request_bytes`), the
//! pure router (`nc_service::http::route`), and the real socket path of a running
//! server. All randomness comes from the repository's seeded RNG
//! (`nc_core::rng::substream`), so every failure is reproducible from the seed.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use nc_service::http::{route, ServiceHandle};
use nc_service::worker::run_slice;
use rand::Rng;
use tiny_http::{parse_request_bytes, HttpError, Limits, Method, Server};

const VALID: &[u8] =
    b"POST /jobs HTTP/1.1\r\nHost: f\r\nContent-Length: 18\r\n\r\nprotocol=line&n=8x";

fn assert_typed(result: Result<tiny_http::ParsedRequest, HttpError>, context: &str) {
    if let Err(error) = result {
        let status = error.status();
        assert!(
            (400..=599).contains(&status),
            "{context}: {error:?} must map into 4xx/5xx, got {status}"
        );
    }
}

#[test]
fn every_truncation_of_a_valid_request_is_typed() {
    let limits = Limits::default();
    for cut in 0..VALID.len() {
        let result = parse_request_bytes(&VALID[..cut], &limits);
        assert!(
            result.is_err(),
            "a strict prefix of {cut} bytes cannot parse"
        );
        assert_typed(result, &format!("truncation at {cut}"));
    }
    assert!(parse_request_bytes(VALID, &limits).is_ok());
}

#[test]
fn bit_flips_never_panic_and_errors_stay_typed() {
    let limits = Limits::default();
    let mut rng = nc_core::rng::substream(0xF022, 1);
    for trial in 0..2000 {
        let mut mutated = VALID.to_vec();
        let flips = rng.gen_range(1usize..4);
        for _ in 0..flips {
            let at = rng.gen_range(0..mutated.len());
            let bit = rng.gen_range(0u64..8) as u8;
            mutated[at] ^= 1 << bit;
        }
        // Valid-after-mutation is possible (a flip inside the body); anything else
        // must be a typed rejection.
        assert_typed(
            parse_request_bytes(&mutated, &limits),
            &format!("trial {trial}"),
        );
    }
}

#[test]
fn random_byte_soup_never_panics() {
    let limits = Limits::default();
    let mut rng = nc_core::rng::substream(0xF022, 2);
    for trial in 0..2000 {
        let len = rng.gen_range(0usize..512);
        let soup: Vec<u8> = (0..len).map(|_| rng.gen_range(0u64..256) as u8).collect();
        assert_typed(
            parse_request_bytes(&soup, &limits),
            &format!("soup {trial}"),
        );
    }
}

#[test]
fn oversized_requests_are_rejected_before_allocation() {
    let limits = Limits::default();
    // A Content-Length claiming petabytes must be rejected from the header alone.
    let claim = b"POST /jobs HTTP/1.1\r\nContent-Length: 1125899906842624\r\n\r\n";
    match parse_request_bytes(claim, &limits) {
        Err(HttpError::BodyTooLarge { declared, .. }) => {
            assert_eq!(declared, 1_125_899_906_842_624);
        }
        other => panic!("expected BodyTooLarge, got {other:?}"),
    }
    // An endless header section must hit the header caps, not buffer forever.
    let mut endless = b"GET / HTTP/1.1\r\n".to_vec();
    for i in 0..100_000 {
        endless.extend_from_slice(format!("x{i}: y\r\n").as_bytes());
    }
    let result = parse_request_bytes(&endless, &limits);
    assert!(
        matches!(
            result,
            Err(HttpError::TooManyHeaders | HttpError::HeaderLineTooLong)
        ),
        "got {result:?}"
    );
}

#[test]
fn the_router_is_total_over_adversarial_urls_and_bodies() {
    let service = ServiceHandle::new(77);
    let mut rng = nc_core::rng::substream(0xF022, 3);
    let methods = [
        Method::Get,
        Method::Post,
        Method::Put,
        Method::Delete,
        Method::Head,
    ];
    let fragments = [
        "/",
        "/jobs",
        "/jobs/",
        "/jobs/0",
        "/jobs/0/report",
        "/jobs/0/cancel",
        "/stats",
        "/stats/rows",
        "/healthz",
        "/jobs/18446744073709551616",
        "/jobs/-1",
        "/jobs/../../etc",
        "//jobs//0//",
        "/jobs/0/report/extra",
        "/%00",
        "/jobs/0?x=1&y=2",
    ];
    for trial in 0..1000 {
        let method = methods[rng.gen_range(0..methods.len() as u64) as usize];
        let url = fragments[rng.gen_range(0..fragments.len() as u64) as usize];
        let len = rng.gen_range(0usize..64);
        let body: Vec<u8> = (0..len).map(|_| rng.gen_range(0u64..256) as u8).collect();
        let response = route(&service, method, url, &body);
        let status = response.status_code();
        assert!(
            (200..=599).contains(&status),
            "trial {trial}: {method} {url} answered {status}"
        );
    }
}

#[test]
fn malformed_submissions_cannot_wedge_a_live_service() {
    // End-to-end over real sockets: a barrage of malformed frames and bodies, then a
    // well-formed job must still submit, run and report.
    let server = Server::http("127.0.0.1:0").expect("bind");
    let addr = server.server_addr().expect("addr");
    let stopper = server.stopper();
    let service = ServiceHandle::new(5);
    let service_for_http = service.clone();
    let stop = Arc::new(AtomicBool::new(false));
    let stop_for_http = Arc::clone(&stop);
    let http = std::thread::spawn(move || {
        nc_service::http::serve(&server, &service_for_http, &stop_for_http);
    });

    let attacks: [&[u8]; 6] = [
        b"GARBAGE\r\n\r\n",
        b"POST /jobs HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n",
        b"GET \x00\xff HTTP/1.1\r\n\r\n",
        b"POST /jobs HTTP/1.1\r\nContent-Length: 5\r\n\r\nab", // truncated body
        b"BREW /jobs HTTP/1.1\r\n\r\n",
        b"POST /jobs HTTP/1.1\r\nContent-Length: 7\r\n\r\nn=bogus",
    ];
    for (i, attack) in attacks.iter().enumerate() {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(attack).expect("write");
        // Half-close so truncated frames read EOF server-side instead of timing out.
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("shutdown");
        let mut reply = String::new();
        let _ = stream.read_to_string(&mut reply);
        if !reply.is_empty() {
            let status: u16 = reply
                .split(' ')
                .nth(1)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("attack {i}: unparsable reply {reply}"));
            assert!(
                (400..=599).contains(&status),
                "attack {i} answered {status}"
            );
        }
    }

    // The service still works.
    let submit = nc_service::client::request(addr, "POST", "/jobs", "protocol=square&n=9")
        .expect("submit after attacks");
    assert_eq!(submit.status, 201, "{}", submit.body);
    {
        let mut queue = service.queue.lock().expect("queue");
        while queue.has_live_jobs() {
            if let Some(claim) = queue.claim_next() {
                let (result, seconds) = run_slice(&claim, 1_000_000);
                queue.complete_slice(claim.id, result, seconds);
            }
        }
    }
    let report = nc_service::client::request(addr, "GET", "/jobs/0/report", "").expect("report");
    assert_eq!(report.status, 200);
    assert!(
        report.body.contains("\"completed\": true"),
        "{}",
        report.body
    );

    stop.store(true, Ordering::SeqCst);
    stopper.stop();
    http.join().expect("http thread");
}
