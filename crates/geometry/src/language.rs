//! Shape languages.
//!
//! A *shape language* `L = (S_1, S_2, S_3, …)` provides, for every `d ≥ 1`, a single
//! {0,1}-labeled `d × d` square whose on pixels form a connected shape `G_d` with
//! `max dim_{G_d} = d`. This is the object the paper's universal constructors realise in
//! the solution (Theorem 4).

use crate::{GeometryError, LabeledSquare, Result};

/// A shape language: one labeled `d × d` square per side length `d`.
pub trait ShapeLanguage {
    /// Human-readable name of the language (used in experiment reports).
    fn name(&self) -> &str;

    /// The labeled square `S_d`.
    ///
    /// Implementations must return a square of side exactly `d` whose on pixels form a
    /// connected shape of maximum dimension `d` (use [`validate_language`] in tests).
    fn square(&self, d: u32) -> LabeledSquare;
}

/// A shape language defined by an `(x, y, d) → on/off` predicate.
///
/// ```
/// use nc_geometry::{PredicateLanguage, ShapeLanguage};
/// let border = PredicateLanguage::new("border", |x, y, d| {
///     x == 0 || y == 0 || x == d - 1 || y == d - 1
/// });
/// assert_eq!(border.square(4).on_count(), 12);
/// ```
pub struct PredicateLanguage<F> {
    name: String,
    predicate: F,
}

impl<F: Fn(u32, u32, u32) -> bool> PredicateLanguage<F> {
    /// Creates a predicate-based language.
    pub fn new(name: impl Into<String>, predicate: F) -> Self {
        PredicateLanguage {
            name: name.into(),
            predicate,
        }
    }
}

impl<F: Fn(u32, u32, u32) -> bool> ShapeLanguage for PredicateLanguage<F> {
    fn name(&self) -> &str {
        &self.name
    }

    fn square(&self, d: u32) -> LabeledSquare {
        LabeledSquare::from_xy_fn(d, |x, y| (self.predicate)(x, y, d))
    }
}

impl<L: ShapeLanguage + ?Sized> ShapeLanguage for &L {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn square(&self, d: u32) -> LabeledSquare {
        (**self).square(d)
    }
}

impl<L: ShapeLanguage + ?Sized> ShapeLanguage for Box<L> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn square(&self, d: u32) -> LabeledSquare {
        (**self).square(d)
    }
}

/// Checks that a language is well formed for every side length in `1..=max_side`:
/// non-empty, connected and of maximum dimension exactly `d`.
///
/// # Errors
/// Returns [`GeometryError::InvalidLanguage`] naming the first side length that fails.
pub fn validate_language<L: ShapeLanguage + ?Sized>(lang: &L, max_side: u32) -> Result<()> {
    for d in 1..=max_side {
        let sq = lang.square(d);
        if sq.side() != d {
            return Err(GeometryError::InvalidLanguage {
                side: d,
                reason: format!("square has side {} instead of {d}", sq.side()),
            });
        }
        let shape = sq.shape();
        if shape.is_empty() {
            return Err(GeometryError::InvalidLanguage {
                side: d,
                reason: "shape is empty".into(),
            });
        }
        if !shape.is_connected() {
            return Err(GeometryError::InvalidLanguage {
                side: d,
                reason: "shape is disconnected".into(),
            });
        }
        if shape.max_dim() != d {
            return Err(GeometryError::InvalidLanguage {
                side: d,
                reason: format!("max dimension is {} instead of {d}", shape.max_dim()),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_language_roundtrip() {
        let lang = PredicateLanguage::new("left-column", |x, _, _| x == 0);
        assert_eq!(lang.name(), "left-column");
        assert_eq!(lang.square(5).on_count(), 5);
        assert!(validate_language(&lang, 8).is_ok());
    }

    #[test]
    fn validation_catches_disconnected() {
        let diag = PredicateLanguage::new("diag", |x, y, _| x == y);
        let err = validate_language(&diag, 4).unwrap_err();
        assert!(matches!(
            err,
            GeometryError::InvalidLanguage { side: 2, .. }
        ));
    }

    #[test]
    fn validation_catches_wrong_dimension() {
        let dot = PredicateLanguage::new("dot", |x, y, _| x == 0 && y == 0);
        let err = validate_language(&dot, 3).unwrap_err();
        assert!(matches!(
            err,
            GeometryError::InvalidLanguage { side: 2, .. }
        ));
    }

    #[test]
    fn blanket_impls() {
        let lang = PredicateLanguage::new("full", |_, _, _| true);
        let by_ref: &dyn ShapeLanguage = &lang;
        assert_eq!(by_ref.square(3).on_count(), 9);
        let boxed: Box<dyn ShapeLanguage> =
            Box::new(PredicateLanguage::new("full", |_, _, _| true));
        assert_eq!(boxed.name(), "full");
        assert!(validate_language(boxed.as_ref(), 3).is_ok());
    }
}
