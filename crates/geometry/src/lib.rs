//! Grid geometry for geometric network constructors.
//!
//! This crate implements the geometric vocabulary of Michail's model of a *solution of
//! automata* (Section 3 of the paper): nodes living on the 2D or 3D unit grid, the four
//! (resp. six) perpendicular ports of a node, rigid rotations of the grid, *shapes*
//! (connected subnetworks of the grid), the minimum enclosing rectangle `R_G` and
//! enclosing square `S_G` of a shape, the zig-zag pixel indexing of a `d × d` square and
//! shape languages defined by {0,1}-labeled squares.
//!
//! # Quick example
//!
//! ```
//! use nc_geometry::{Shape, Coord, library};
//!
//! // A 3×3 square shape has max dimension 3 and is connected.
//! let square = library::square_shape(3);
//! assert_eq!(square.len(), 9);
//! assert!(square.is_connected());
//! assert_eq!(square.max_dim(), 3);
//!
//! // Shapes compare up to translation and rotation.
//! let line_a = library::line_shape(4);
//! let line_b = line_a.translated(Coord::new2(7, -2)).rotated_cw();
//! assert!(line_a.congruent(&line_b));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coord;
mod direction;
mod error;
mod labeled;
mod language;
pub mod library;
mod pixel;
mod render;
mod rotation;
mod shape;

pub use coord::Coord;
pub use direction::{Dim, Dir};
pub use error::GeometryError;
pub use labeled::{LabeledGrid, LabeledSquare};
pub use language::{validate_language, PredicateLanguage, ShapeLanguage};
pub use pixel::{zigzag_coord, zigzag_index, ZigZagPixels};
pub use render::{render_labeled_square, render_shape};
pub use rotation::Rotation;
pub use shape::{direction_between, Shape};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GeometryError>;
