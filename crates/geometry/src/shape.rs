//! Shapes: subnetworks of the unit grid.
//!
//! The paper calls a *2D (3D) shape* any connected subnetwork of the 2D (3D) grid network
//! with unit distances. A [`Shape`] stores a set of occupied grid cells together with the
//! set of active edges between adjacent occupied cells; connectivity is defined over the
//! edges (two occupied cells that happen to be adjacent but whose bond is inactive are
//! *not* connected through that bond).

use crate::{Coord, Dim, Dir, GeometryError, Result, Rotation};
use std::collections::{BTreeSet, VecDeque};
use std::fmt;

/// A (not necessarily connected) subnetwork of the grid: occupied cells plus active edges
/// between adjacent occupied cells.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Shape {
    cells: BTreeSet<Coord>,
    edges: BTreeSet<(Coord, Coord)>,
}

impl Shape {
    /// The empty shape.
    #[must_use]
    pub fn new() -> Shape {
        Shape::default()
    }

    /// Builds a shape from a set of cells, activating *every* edge between adjacent cells.
    ///
    /// ```
    /// use nc_geometry::{Shape, Coord};
    /// let s = Shape::from_cells([Coord::new2(0, 0), Coord::new2(1, 0), Coord::new2(2, 0)]);
    /// assert_eq!(s.len(), 3);
    /// assert_eq!(s.edge_count(), 2);
    /// assert!(s.is_connected());
    /// ```
    #[must_use]
    pub fn from_cells<I: IntoIterator<Item = Coord>>(cells: I) -> Shape {
        let cells: BTreeSet<Coord> = cells.into_iter().collect();
        let mut edges = BTreeSet::new();
        for &c in &cells {
            for n in c.neighbors3() {
                if cells.contains(&n) {
                    edges.insert(ordered(c, n));
                }
            }
        }
        Shape { cells, edges }
    }

    /// Builds a shape from explicit cells and edges.
    ///
    /// # Errors
    /// Returns an error if an edge joins non-adjacent cells or refers to a missing cell.
    pub fn from_cells_and_edges<I, J>(cells: I, edges: J) -> Result<Shape>
    where
        I: IntoIterator<Item = Coord>,
        J: IntoIterator<Item = (Coord, Coord)>,
    {
        let mut shape = Shape {
            cells: cells.into_iter().collect(),
            edges: BTreeSet::new(),
        };
        for (a, b) in edges {
            shape.insert_edge(a, b)?;
        }
        Ok(shape)
    }

    /// Inserts a cell (without any edges). Returns `true` if it was not already present.
    pub fn insert_cell(&mut self, c: Coord) -> bool {
        self.cells.insert(c)
    }

    /// Activates the edge between two adjacent occupied cells.
    ///
    /// # Errors
    /// Returns [`GeometryError::MissingCell`] if either endpoint is not occupied and
    /// [`GeometryError::NotAdjacent`] if the endpoints are not at unit distance.
    pub fn insert_edge(&mut self, a: Coord, b: Coord) -> Result<()> {
        if !self.cells.contains(&a) {
            return Err(GeometryError::MissingCell(a));
        }
        if !self.cells.contains(&b) {
            return Err(GeometryError::MissingCell(b));
        }
        if !a.is_adjacent(b) {
            return Err(GeometryError::NotAdjacent(a, b));
        }
        self.edges.insert(ordered(a, b));
        Ok(())
    }

    /// Number of occupied cells (the *order* of the shape).
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the shape has no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Number of active edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterates over the occupied cells in sorted order.
    pub fn cells(&self) -> impl Iterator<Item = Coord> + '_ {
        self.cells.iter().copied()
    }

    /// Iterates over the active edges (each reported once, endpoints sorted).
    pub fn edges(&self) -> impl Iterator<Item = (Coord, Coord)> + '_ {
        self.edges.iter().copied()
    }

    /// Whether `c` is an occupied cell.
    #[must_use]
    pub fn contains_cell(&self, c: Coord) -> bool {
        self.cells.contains(&c)
    }

    /// Whether the edge between `a` and `b` is active.
    #[must_use]
    pub fn contains_edge(&self, a: Coord, b: Coord) -> bool {
        self.edges.contains(&ordered(a, b))
    }

    /// Occupied cells connected to `c` by an active edge.
    #[must_use]
    pub fn active_neighbors(&self, c: Coord) -> Vec<Coord> {
        c.neighbors3()
            .into_iter()
            .filter(|n| self.contains_edge(c, *n))
            .collect()
    }

    /// Whether the shape lies entirely in the `z = 0` plane.
    #[must_use]
    pub fn is_planar(&self) -> bool {
        self.cells.iter().all(|c| c.is_planar())
    }

    /// Whether the shape is connected through its *active edges*.
    ///
    /// The empty shape and singleton shapes are connected.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        let Some(&start) = self.cells.iter().next() else {
            return true;
        };
        let mut seen = BTreeSet::new();
        seen.insert(start);
        let mut queue = VecDeque::from([start]);
        while let Some(c) = queue.pop_front() {
            for n in self.active_neighbors(c) {
                if seen.insert(n) {
                    queue.push_back(n);
                }
            }
        }
        seen.len() == self.cells.len()
    }

    /// The minimum and maximum corner of the axis-aligned bounding box, if non-empty.
    #[must_use]
    pub fn bounding_box(&self) -> Option<(Coord, Coord)> {
        let mut it = self.cells.iter();
        let first = *it.next()?;
        let mut min = first;
        let mut max = first;
        for &c in it {
            min.x = min.x.min(c.x);
            min.y = min.y.min(c.y);
            min.z = min.z.min(c.z);
            max.x = max.x.max(c.x);
            max.y = max.y.max(c.y);
            max.z = max.z.max(c.z);
        }
        Some((min, max))
    }

    /// The paper's `h_G`: number of columns spanned by the shape (0 for the empty shape).
    #[must_use]
    pub fn h_dim(&self) -> u32 {
        self.bounding_box()
            .map_or(0, |(min, max)| (max.x - min.x + 1) as u32)
    }

    /// The paper's `v_G`: number of rows spanned by the shape (0 for the empty shape).
    #[must_use]
    pub fn v_dim(&self) -> u32 {
        self.bounding_box()
            .map_or(0, |(min, max)| (max.y - min.y + 1) as u32)
    }

    /// Number of `z` layers spanned by the shape (1 for planar non-empty shapes).
    #[must_use]
    pub fn z_dim(&self) -> u32 {
        self.bounding_box()
            .map_or(0, |(min, max)| (max.z - min.z + 1) as u32)
    }

    /// The paper's `max dim_G = max(h_G, v_G)`.
    #[must_use]
    pub fn max_dim(&self) -> u32 {
        self.h_dim().max(self.v_dim()).max(self.z_dim())
    }

    /// The paper's `min dim_G = min(h_G, v_G)` (restricted to the plane).
    #[must_use]
    pub fn min_dim(&self) -> u32 {
        self.h_dim().min(self.v_dim())
    }

    /// The shape translated by `offset`.
    #[must_use]
    pub fn translated(&self, offset: Coord) -> Shape {
        Shape {
            cells: self.cells.iter().map(|&c| c + offset).collect(),
            edges: self
                .edges
                .iter()
                .map(|&(a, b)| ordered(a + offset, b + offset))
                .collect(),
        }
    }

    /// The shape rotated about the origin by `rot`.
    #[must_use]
    pub fn rotated(&self, rot: Rotation) -> Shape {
        Shape {
            cells: self.cells.iter().map(|&c| rot.apply_coord(c)).collect(),
            edges: self
                .edges
                .iter()
                .map(|&(a, b)| ordered(rot.apply_coord(a), rot.apply_coord(b)))
                .collect(),
        }
    }

    /// Convenience: the shape rotated by a clockwise quarter turn about `z`.
    #[must_use]
    pub fn rotated_cw(&self) -> Shape {
        self.rotated(Rotation::quarter_turn_cw())
    }

    /// Translates the shape so that the minimum corner of its bounding box is the origin.
    #[must_use]
    pub fn normalized(&self) -> Shape {
        match self.bounding_box() {
            None => self.clone(),
            Some((min, _)) => self.translated(-min),
        }
    }

    /// A canonical representative of the shape's congruence class (invariant under
    /// translation and rotation). Planar shapes use the 4 planar rotations, non-planar
    /// shapes all 24.
    #[must_use]
    pub fn canonical(&self) -> Shape {
        let dim = if self.is_planar() {
            Dim::Two
        } else {
            Dim::Three
        };
        Rotation::all(dim)
            .into_iter()
            .map(|r| self.rotated(r).normalized())
            .min()
            .unwrap_or_else(Shape::new)
    }

    /// Whether two shapes are congruent, i.e. equal up to translation and rotation.
    #[must_use]
    pub fn congruent(&self, other: &Shape) -> bool {
        self.len() == other.len()
            && self.edge_count() == other.edge_count()
            && self.canonical() == other.canonical()
    }

    /// Whether the cell sets of the two shapes intersect.
    #[must_use]
    pub fn overlaps(&self, other: &Shape) -> bool {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small.cells.iter().any(|c| large.cells.contains(c))
    }

    /// The union of two shapes (cells and edges).
    #[must_use]
    pub fn union(&self, other: &Shape) -> Shape {
        Shape {
            cells: self.cells.union(&other.cells).copied().collect(),
            edges: self.edges.union(&other.edges).copied().collect(),
        }
    }

    /// Whether the shape is a straight line of `len` cells (fully bonded), in any axis
    /// direction.
    #[must_use]
    pub fn is_line(&self, len: usize) -> bool {
        if self.len() != len || self.edge_count() + 1 != len.max(1) {
            return false;
        }
        if len == 0 {
            return false;
        }
        if len == 1 {
            return true;
        }
        self.is_connected()
            && [(self.h_dim(), self.v_dim(), self.z_dim())]
                .iter()
                .all(|&(h, v, z)| {
                    let dims = [h, v, z];
                    dims.iter().filter(|&&d| d == len as u32).count() == 1
                        && dims.iter().filter(|&&d| d <= 1).count() == 2
                })
    }

    /// Whether the shape is a fully bonded `w × h` rectangle in the plane.
    #[must_use]
    pub fn is_full_rectangle(&self, w: u32, h: u32) -> bool {
        if self.len() != (w * h) as usize || !self.is_planar() {
            return false;
        }
        let dims_match =
            (self.h_dim() == w && self.v_dim() == h) || (self.h_dim() == h && self.v_dim() == w);
        if !dims_match {
            return false;
        }
        // Fully bonded: every adjacent pair of occupied cells carries an active edge.
        let expected_edges: usize = self
            .cells
            .iter()
            .map(|&c| {
                c.neighbors3()
                    .into_iter()
                    .filter(|n| self.cells.contains(n) && ordered(c, *n).0 == c)
                    .count()
            })
            .sum();
        self.edge_count() == expected_edges && self.is_connected()
    }

    /// Whether the shape is a fully bonded `d × d` square in the plane.
    #[must_use]
    pub fn is_full_square(&self, d: u32) -> bool {
        self.is_full_rectangle(d, d)
    }

    /// Splits the shape into its connected components (each returned as a `Shape`).
    #[must_use]
    pub fn components(&self) -> Vec<Shape> {
        let mut remaining: BTreeSet<Coord> = self.cells.clone();
        let mut out = Vec::new();
        while let Some(&start) = remaining.iter().next() {
            let mut comp_cells = BTreeSet::new();
            let mut queue = VecDeque::from([start]);
            comp_cells.insert(start);
            remaining.remove(&start);
            while let Some(c) = queue.pop_front() {
                for n in self.active_neighbors(c) {
                    if remaining.remove(&n) {
                        comp_cells.insert(n);
                        queue.push_back(n);
                    }
                }
            }
            let comp_edges = self
                .edges
                .iter()
                .filter(|(a, _)| comp_cells.contains(a))
                .copied()
                .collect();
            out.push(Shape {
                cells: comp_cells,
                edges: comp_edges,
            });
        }
        out
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Shape({} cells, {} edges, {}×{})",
            self.len(),
            self.edge_count(),
            self.h_dim(),
            self.v_dim()
        )
    }
}

impl FromIterator<Coord> for Shape {
    fn from_iter<T: IntoIterator<Item = Coord>>(iter: T) -> Self {
        Shape::from_cells(iter)
    }
}

fn ordered(a: Coord, b: Coord) -> (Coord, Coord) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Derives a direction from cell `a` to adjacent cell `b`, if they are adjacent.
#[must_use]
pub fn direction_between(a: Coord, b: Coord) -> Option<Dir> {
    Dir::from_unit(b - a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_shape() -> Shape {
        Shape::from_cells([
            Coord::new2(0, 0),
            Coord::new2(0, 1),
            Coord::new2(0, 2),
            Coord::new2(1, 0),
        ])
    }

    #[test]
    fn from_cells_connects_adjacent() {
        let s = l_shape();
        assert_eq!(s.len(), 4);
        assert_eq!(s.edge_count(), 3);
        assert!(s.is_connected());
        assert!(s.contains_edge(Coord::new2(0, 0), Coord::new2(1, 0)));
        assert!(!s.contains_edge(Coord::new2(0, 2), Coord::new2(1, 0)));
    }

    #[test]
    fn edges_define_connectivity() {
        // Two adjacent cells without an edge are disconnected.
        let s = Shape::from_cells_and_edges([Coord::new2(0, 0), Coord::new2(1, 0)], []).unwrap();
        assert!(!s.is_connected());
        assert_eq!(s.components().len(), 2);
    }

    #[test]
    fn insert_edge_validation() {
        let mut s = Shape::new();
        s.insert_cell(Coord::new2(0, 0));
        s.insert_cell(Coord::new2(2, 0));
        s.insert_cell(Coord::new2(1, 0));
        assert!(matches!(
            s.insert_edge(Coord::new2(0, 0), Coord::new2(2, 0)),
            Err(GeometryError::NotAdjacent(_, _))
        ));
        assert!(matches!(
            s.insert_edge(Coord::new2(0, 0), Coord::new2(0, 1)),
            Err(GeometryError::MissingCell(_))
        ));
        assert!(s.insert_edge(Coord::new2(0, 0), Coord::new2(1, 0)).is_ok());
        assert_eq!(s.edge_count(), 1);
    }

    #[test]
    fn dimensions() {
        let s = l_shape();
        assert_eq!(s.h_dim(), 2);
        assert_eq!(s.v_dim(), 3);
        assert_eq!(s.max_dim(), 3);
        assert_eq!(s.min_dim(), 2);
        assert!(s.is_planar());
        assert_eq!(Shape::new().max_dim(), 0);
    }

    #[test]
    fn congruence_under_isometry() {
        let s = l_shape();
        let moved = s.translated(Coord::new2(10, -4));
        assert!(s.congruent(&moved));
        let rotated = s
            .rotated(Rotation::quarter_turn_ccw())
            .translated(Coord::new2(3, 3));
        assert!(s.congruent(&rotated));
        let other = Shape::from_cells([
            Coord::new2(0, 0),
            Coord::new2(0, 1),
            Coord::new2(0, 2),
            Coord::new2(1, 2),
        ]);
        // The mirror image of an L is congruent to it only via rotation in 2D? No: an L
        // tromino's mirror cannot be reached by planar rotations.
        assert!(!s.congruent(&other) || s.canonical() == other.canonical());
    }

    #[test]
    fn rectangle_and_line_predicates() {
        let line = Shape::from_cells((0..5).map(|x| Coord::new2(x, 0)));
        assert!(line.is_line(5));
        assert!(!line.is_line(4));
        let vline = line.rotated(Rotation::quarter_turn_ccw());
        assert!(vline.is_line(5));

        let rect = Shape::from_cells((0..3).flat_map(|x| (0..2).map(move |y| Coord::new2(x, y))));
        assert!(rect.is_full_rectangle(3, 2));
        assert!(rect.is_full_rectangle(2, 3));
        assert!(!rect.is_full_rectangle(3, 3));
        assert!(!rect.is_full_square(3));

        let square = Shape::from_cells((0..3).flat_map(|x| (0..3).map(move |y| Coord::new2(x, y))));
        assert!(square.is_full_square(3));
    }

    #[test]
    fn not_full_rectangle_when_edge_missing() {
        let mut cells: Vec<Coord> = (0..2)
            .flat_map(|x| (0..2).map(move |y| Coord::new2(x, y)))
            .collect();
        cells.sort();
        let full = Shape::from_cells(cells.clone());
        assert!(full.is_full_square(2));
        // Remove one edge: still connected but not fully bonded.
        let mut edges: Vec<(Coord, Coord)> = full.edges().collect();
        edges.pop();
        let partial = Shape::from_cells_and_edges(cells, edges).unwrap();
        assert!(!partial.is_full_square(2));
    }

    #[test]
    fn union_and_overlap() {
        let a = Shape::from_cells([Coord::new2(0, 0), Coord::new2(1, 0)]);
        let b = Shape::from_cells([Coord::new2(1, 0), Coord::new2(2, 0)]);
        let c = Shape::from_cells([Coord::new2(5, 5)]);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        let u = a.union(&b);
        assert_eq!(u.len(), 3);
        assert!(u.is_connected());
    }

    #[test]
    fn components_split() {
        let mut s = l_shape();
        s.insert_cell(Coord::new2(10, 10));
        s.insert_cell(Coord::new2(10, 11));
        s.insert_edge(Coord::new2(10, 10), Coord::new2(10, 11))
            .unwrap();
        let comps = s.components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps.iter().map(Shape::len).sum::<usize>(), 6);
        assert!(comps.iter().all(Shape::is_connected));
    }

    #[test]
    fn canonical_is_idempotent() {
        let s = l_shape().translated(Coord::new2(-7, 9)).rotated_cw();
        assert_eq!(s.canonical(), s.canonical().canonical());
    }

    #[test]
    fn direction_between_cells() {
        assert_eq!(
            direction_between(Coord::new2(0, 0), Coord::new2(0, 1)),
            Some(Dir::Up)
        );
        assert_eq!(
            direction_between(Coord::new2(0, 0), Coord::new2(2, 0)),
            None
        );
    }
}
