//! ASCII rendering of shapes and labeled squares, used by the examples and for debugging
//! protocol executions.

use crate::{Coord, LabeledSquare, Shape};

/// Renders a planar shape as ASCII art.
///
/// Occupied cells are drawn as `#`, active horizontal bonds as `-` and vertical bonds as
/// `|`; unoccupied positions are blanks. The topmost row of the output corresponds to the
/// highest `y`. Non-planar shapes are rendered layer by layer (lowest `z` first).
///
/// ```
/// use nc_geometry::{library, render_shape};
/// let art = render_shape(&library::l_shape(3, 3));
/// assert!(art.contains('#'));
/// ```
#[must_use]
pub fn render_shape(shape: &Shape) -> String {
    let Some((min, max)) = shape.bounding_box() else {
        return String::from("(empty shape)\n");
    };
    let mut out = String::new();
    for z in min.z..=max.z {
        if min.z != max.z {
            out.push_str(&format!("layer z = {z}:\n"));
        }
        // Each cell occupies a 2×2 character block so that bonds can be drawn between
        // cells: columns 2*(x-min.x) hold cells / vertical bonds, odd columns hold
        // horizontal bonds.
        for y in (min.y..=max.y).rev() {
            let mut cell_row = String::new();
            let mut bond_row = String::new();
            for x in min.x..=max.x {
                let c = Coord::new(x, y, z);
                cell_row.push(if shape.contains_cell(c) { '#' } else { ' ' });
                let right = Coord::new(x + 1, y, z);
                cell_row.push(if shape.contains_edge(c, right) {
                    '-'
                } else {
                    ' '
                });
                let below = Coord::new(x, y - 1, z);
                bond_row.push(if shape.contains_edge(c, below) {
                    '|'
                } else {
                    ' '
                });
                bond_row.push(' ');
            }
            out.push_str(cell_row.trim_end());
            out.push('\n');
            if y > min.y {
                let trimmed = bond_row.trim_end();
                out.push_str(trimmed);
                out.push('\n');
            }
        }
        if z < max.z {
            out.push('\n');
        }
    }
    out
}

/// Renders a labeled square: on pixels as `#`, off pixels as `·`.
///
/// The topmost output row is the square's highest row, matching [`render_shape`].
#[must_use]
pub fn render_labeled_square(square: &LabeledSquare) -> String {
    let d = square.side();
    let mut out = String::new();
    for y in (0..d).rev() {
        for x in 0..d {
            out.push(if square.get(x, y) { '#' } else { '·' });
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{library, ShapeLanguage};

    #[test]
    fn empty_shape_renders_placeholder() {
        assert_eq!(render_shape(&Shape::new()), "(empty shape)\n");
    }

    #[test]
    fn line_renders_with_bonds() {
        let art = render_shape(&library::line_shape(3));
        assert_eq!(art.trim_end(), "#-#-#");
    }

    #[test]
    fn vertical_bonds_appear() {
        let art = render_shape(&library::rectangle_shape(2, 2));
        assert!(art.contains("#-#"));
        assert!(art.contains('|'));
        // Two cell rows plus one bond row.
        assert_eq!(art.trim_end().lines().count(), 3);
    }

    #[test]
    fn labeled_square_rendering() {
        let sq = library::border_language().square(3);
        let art = render_labeled_square(&sq);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines, vec!["###", "#·#", "###"]);
    }

    #[test]
    fn multi_layer_shapes_mention_layers() {
        let shape = Shape::from_cells([Coord::new(0, 0, 0), Coord::new(0, 0, 1)]);
        let art = render_shape(&shape);
        assert!(art.contains("layer z = 0"));
        assert!(art.contains("layer z = 1"));
    }
}
