//! Rigid rotations of the grid.
//!
//! A free node of the solution "may be arbitrarily rotated so that, for example, its `x`
//! local coordinate is aligned with the `y` real coordinate of the system". A rotation
//! maps local directions/coordinates of a node (or of a whole rigid component) to global
//! ones. In 2D the rotation group has 4 elements (quarter turns about `z`); in 3D it has
//! the 24 orientation-preserving symmetries of the cube.

use crate::{Coord, Dim, Dir};
use std::fmt;

/// An orientation-preserving rotation of the grid, represented by the images of the three
/// positive axes.
///
/// `apply_dir(Dir::Right)`, `apply_dir(Dir::Up)` and `apply_dir(Dir::ZPlus)` are exactly
/// the stored images; everything else follows by linearity.
///
/// ```
/// use nc_geometry::{Rotation, Dir, Coord};
/// let r = Rotation::quarter_turn_ccw();
/// assert_eq!(r.apply_dir(Dir::Right), Dir::Up);
/// assert_eq!(r.apply_coord(Coord::new2(1, 0)), Coord::new2(0, 1));
/// assert_eq!(r.compose(r).compose(r).compose(r), Rotation::IDENTITY);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rotation {
    /// Image of the `+x` axis.
    x_to: Dir,
    /// Image of the `+y` axis.
    y_to: Dir,
    /// Image of the `+z` axis.
    z_to: Dir,
}

impl Rotation {
    /// The identity rotation.
    pub const IDENTITY: Rotation = Rotation {
        x_to: Dir::Right,
        y_to: Dir::Up,
        z_to: Dir::ZPlus,
    };

    /// Builds a rotation from the images of the positive axes.
    ///
    /// Returns `None` if the three images are not mutually perpendicular or the mapping
    /// is orientation-reversing (a reflection), which rigid bodies cannot undergo.
    #[must_use]
    pub fn from_axis_images(x_to: Dir, y_to: Dir, z_to: Dir) -> Option<Rotation> {
        if !x_to.is_perpendicular(y_to)
            || !y_to.is_perpendicular(z_to)
            || !x_to.is_perpendicular(z_to)
        {
            return None;
        }
        // Orientation check: x_image × y_image must equal z_image.
        let cross = cross_product(x_to.unit(), y_to.unit());
        if cross != z_to.unit() {
            return None;
        }
        Some(Rotation { x_to, y_to, z_to })
    }

    /// The counter-clockwise quarter turn about the `z` axis (`+x → +y`).
    #[must_use]
    pub fn quarter_turn_ccw() -> Rotation {
        Rotation::from_axis_images(Dir::Up, Dir::Left, Dir::ZPlus).expect("valid rotation")
    }

    /// The clockwise quarter turn about the `z` axis (`+x → −y`).
    #[must_use]
    pub fn quarter_turn_cw() -> Rotation {
        Rotation::from_axis_images(Dir::Down, Dir::Right, Dir::ZPlus).expect("valid rotation")
    }

    /// The half turn about the `z` axis.
    #[must_use]
    pub fn half_turn() -> Rotation {
        Rotation::quarter_turn_ccw().compose(Rotation::quarter_turn_ccw())
    }

    /// All rotations of the given dimension: 4 planar rotations in 2D, 24 in 3D.
    ///
    /// The identity is always the first element.
    #[must_use]
    pub fn all(dim: Dim) -> Vec<Rotation> {
        match dim {
            Dim::Two => {
                let q = Rotation::quarter_turn_ccw();
                vec![Rotation::IDENTITY, q, q.compose(q), q.compose(q).compose(q)]
            }
            Dim::Three => {
                let mut out = vec![Rotation::IDENTITY];
                for x_to in crate::direction::DIRS_3D {
                    for y_to in crate::direction::DIRS_3D {
                        let z = cross_product(x_to.unit(), y_to.unit());
                        if let Some(z_to) = Dir::from_unit(z) {
                            if let Some(r) = Rotation::from_axis_images(x_to, y_to, z_to) {
                                if r != Rotation::IDENTITY {
                                    out.push(r);
                                }
                            }
                        }
                    }
                }
                out
            }
        }
    }

    /// Applies the rotation to a direction.
    #[must_use]
    pub fn apply_dir(self, d: Dir) -> Dir {
        match d {
            Dir::Right => self.x_to,
            Dir::Left => self.x_to.opposite(),
            Dir::Up => self.y_to,
            Dir::Down => self.y_to.opposite(),
            Dir::ZPlus => self.z_to,
            Dir::ZMinus => self.z_to.opposite(),
        }
    }

    /// Applies the rotation to a coordinate (about the origin).
    #[must_use]
    pub fn apply_coord(self, c: Coord) -> Coord {
        let x = self.x_to.unit();
        let y = self.y_to.unit();
        let z = self.z_to.unit();
        Coord::new(
            c.x * x.x + c.y * y.x + c.z * z.x,
            c.x * x.y + c.y * y.y + c.z * z.y,
            c.x * x.z + c.y * y.z + c.z * z.z,
        )
    }

    /// Composition `self ∘ other`: first apply `other`, then `self`.
    #[must_use]
    pub fn compose(self, other: Rotation) -> Rotation {
        Rotation {
            x_to: self.apply_dir(other.x_to),
            y_to: self.apply_dir(other.y_to),
            z_to: self.apply_dir(other.z_to),
        }
    }

    /// The inverse rotation.
    #[must_use]
    pub fn inverse(self) -> Rotation {
        let mut inv = Rotation::IDENTITY;
        for d in [Dir::Right, Dir::Up, Dir::ZPlus] {
            let image = self.apply_dir(d);
            match image {
                Dir::Right => inv.x_to = d,
                Dir::Left => inv.x_to = d.opposite(),
                Dir::Up => inv.y_to = d,
                Dir::Down => inv.y_to = d.opposite(),
                Dir::ZPlus => inv.z_to = d,
                Dir::ZMinus => inv.z_to = d.opposite(),
            }
        }
        inv
    }

    /// Whether the rotation keeps the `z = 0` plane fixed point-wise in direction (i.e. is
    /// one of the four planar rotations used by the 2D model).
    #[must_use]
    pub fn is_planar(self) -> bool {
        self.z_to == Dir::ZPlus
    }

    /// All rotations `r` of dimension `dim` with `r(from) = to`.
    ///
    /// This is the geometric constraint used when bonding two nodes: if node `v`'s port
    /// `p2` must face the global direction `to`, then `v`'s orientation must map `p2` to
    /// `to`. In 2D (with planar ports) the rotation is unique; in 3D there are four.
    #[must_use]
    pub fn mapping(dim: Dim, from: Dir, to: Dir) -> Vec<Rotation> {
        Rotation::all(dim)
            .into_iter()
            .filter(|r| r.apply_dir(from) == to)
            .collect()
    }
}

impl Default for Rotation {
    fn default() -> Self {
        Rotation::IDENTITY
    }
}

impl fmt::Debug for Rotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rot(x→{}, y→{}, z→{})", self.x_to, self.y_to, self.z_to)
    }
}

fn cross_product(a: Coord, b: Coord) -> Coord {
    Coord::new(
        a.y * b.z - a.z * b.y,
        a.z * b.x - a.x * b.z,
        a.x * b.y - a.y * b.x,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_sizes() {
        assert_eq!(Rotation::all(Dim::Two).len(), 4);
        assert_eq!(Rotation::all(Dim::Three).len(), 24);
        // No duplicates.
        let all = Rotation::all(Dim::Three);
        for (i, a) in all.iter().enumerate() {
            for b in all.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn planar_rotations_fix_z() {
        for r in Rotation::all(Dim::Two) {
            assert!(r.is_planar());
            assert_eq!(r.apply_dir(Dir::ZPlus), Dir::ZPlus);
            assert_eq!(r.apply_dir(Dir::ZMinus), Dir::ZMinus);
        }
    }

    #[test]
    fn compose_and_inverse() {
        for a in Rotation::all(Dim::Three) {
            assert_eq!(a.compose(a.inverse()), Rotation::IDENTITY);
            assert_eq!(a.inverse().compose(a), Rotation::IDENTITY);
            for b in Rotation::all(Dim::Three) {
                // Composition agrees on directions.
                for d in crate::direction::DIRS_3D {
                    assert_eq!(a.compose(b).apply_dir(d), a.apply_dir(b.apply_dir(d)));
                }
            }
        }
    }

    #[test]
    fn coord_and_dir_agree() {
        for r in Rotation::all(Dim::Three) {
            for d in crate::direction::DIRS_3D {
                assert_eq!(r.apply_coord(d.unit()), r.apply_dir(d).unit());
            }
            // Linearity on an arbitrary vector.
            let v = Coord::new(2, -3, 5);
            let rv = r.apply_coord(v);
            let sum = Coord::new(2, 0, 0) + Coord::new(0, -3, 0) + Coord::new(0, 0, 5);
            assert_eq!(v, sum);
            assert_eq!(
                rv,
                Coord::new(
                    2 * r.apply_coord(Coord::new(1, 0, 0)).x
                        - 3 * r.apply_coord(Coord::new(0, 1, 0)).x
                        + 5 * r.apply_coord(Coord::new(0, 0, 1)).x,
                    2 * r.apply_coord(Coord::new(1, 0, 0)).y
                        - 3 * r.apply_coord(Coord::new(0, 1, 0)).y
                        + 5 * r.apply_coord(Coord::new(0, 0, 1)).y,
                    2 * r.apply_coord(Coord::new(1, 0, 0)).z
                        - 3 * r.apply_coord(Coord::new(0, 1, 0)).z
                        + 5 * r.apply_coord(Coord::new(0, 0, 1)).z,
                )
            );
        }
    }

    #[test]
    fn quarter_turns() {
        let ccw = Rotation::quarter_turn_ccw();
        assert_eq!(ccw.apply_dir(Dir::Right), Dir::Up);
        assert_eq!(ccw.apply_dir(Dir::Up), Dir::Left);
        let cw = Rotation::quarter_turn_cw();
        assert_eq!(ccw.compose(cw), Rotation::IDENTITY);
        assert_eq!(Rotation::half_turn().apply_dir(Dir::Right), Dir::Left);
    }

    #[test]
    fn reflections_rejected() {
        // x→Right, y→Down, z→ZPlus is a reflection, not a rotation.
        assert!(Rotation::from_axis_images(Dir::Right, Dir::Down, Dir::ZPlus).is_none());
        assert!(Rotation::from_axis_images(Dir::Right, Dir::Right, Dir::ZPlus).is_none());
    }

    #[test]
    fn mapping_counts() {
        // In 2D the rotation sending one planar direction onto another is unique.
        for from in crate::direction::DIRS_2D {
            for to in crate::direction::DIRS_2D {
                assert_eq!(Rotation::mapping(Dim::Two, from, to).len(), 1);
            }
        }
        // In 3D there are four (free spin about the image axis).
        assert_eq!(Rotation::mapping(Dim::Three, Dir::Up, Dir::Right).len(), 4);
    }
}
