//! A library of concrete shapes and shape languages.
//!
//! The shapes here are used throughout the examples, tests and experiments: simple
//! polyominoes for the self-replication experiments of Section 7 and connected shape
//! languages (full square, border, left columns, staircase, cross, star, serpentine,
//! comb, H) for the universal constructors of Section 6.

use crate::{Coord, LabeledSquare, PredicateLanguage, Shape, ShapeLanguage};

// ---------------------------------------------------------------------------------------
// Shape builders
// ---------------------------------------------------------------------------------------

/// A horizontal line of `len` cells starting at the origin.
///
/// # Panics
/// Panics if `len == 0`.
#[must_use]
pub fn line_shape(len: u32) -> Shape {
    assert!(len > 0, "a line must have at least one cell");
    Shape::from_cells((0..len as i32).map(|x| Coord::new2(x, 0)))
}

/// A fully bonded `w × h` rectangle anchored at the origin.
///
/// # Panics
/// Panics if either dimension is zero.
#[must_use]
pub fn rectangle_shape(w: u32, h: u32) -> Shape {
    assert!(w > 0 && h > 0, "rectangle dimensions must be positive");
    Shape::from_cells((0..w as i32).flat_map(|x| (0..h as i32).map(move |y| Coord::new2(x, y))))
}

/// A fully bonded `d × d` square anchored at the origin.
///
/// # Panics
/// Panics if `d == 0`.
#[must_use]
pub fn square_shape(d: u32) -> Shape {
    rectangle_shape(d, d)
}

/// An L-shaped polyomino: a vertical arm of `height` cells and a horizontal arm of
/// `width` cells sharing the corner at the origin.
///
/// # Panics
/// Panics if either arm length is zero.
#[must_use]
pub fn l_shape(width: u32, height: u32) -> Shape {
    assert!(width > 0 && height > 0, "arm lengths must be positive");
    let mut cells: Vec<Coord> = (0..width as i32).map(|x| Coord::new2(x, 0)).collect();
    cells.extend((1..height as i32).map(|y| Coord::new2(0, y)));
    Shape::from_cells(cells)
}

/// A T-shaped polyomino: a horizontal bar of `width` cells with a vertical stem of
/// `stem` cells descending from its middle.
///
/// # Panics
/// Panics if `width == 0` or `stem == 0`.
#[must_use]
pub fn t_shape(width: u32, stem: u32) -> Shape {
    assert!(width > 0 && stem > 0, "dimensions must be positive");
    let mid = (width / 2) as i32;
    let mut cells: Vec<Coord> = (0..width as i32).map(|x| Coord::new2(x, 0)).collect();
    cells.extend((1..=stem as i32).map(|y| Coord::new2(mid, -y)));
    Shape::from_cells(cells)
}

/// A plus/cross-shaped polyomino with arms of `arm` cells around a centre cell.
#[must_use]
pub fn plus_shape(arm: u32) -> Shape {
    let arm = arm as i32;
    let mut cells = vec![Coord::ORIGIN];
    for k in 1..=arm {
        cells.push(Coord::new2(k, 0));
        cells.push(Coord::new2(-k, 0));
        cells.push(Coord::new2(0, k));
        cells.push(Coord::new2(0, -k));
    }
    Shape::from_cells(cells)
}

/// A staircase of `steps` steps, each step one cell wide and one cell tall.
///
/// # Panics
/// Panics if `steps == 0`.
#[must_use]
pub fn staircase_shape(steps: u32) -> Shape {
    assert!(steps > 0, "a staircase needs at least one step");
    let mut cells = Vec::new();
    for k in 0..steps as i32 {
        cells.push(Coord::new2(k, k));
        cells.push(Coord::new2(k + 1, k));
    }
    cells.pop();
    Shape::from_cells(cells)
}

/// A U-shaped polyomino of outer width `w` and height `h` (walls one cell thick).
///
/// # Panics
/// Panics if `w < 3` or `h < 2`.
#[must_use]
pub fn u_shape(w: u32, h: u32) -> Shape {
    assert!(w >= 3 && h >= 2, "a U needs width ≥ 3 and height ≥ 2");
    let mut cells = Vec::new();
    for x in 0..w as i32 {
        cells.push(Coord::new2(x, 0));
    }
    for y in 1..h as i32 {
        cells.push(Coord::new2(0, y));
        cells.push(Coord::new2(w as i32 - 1, y));
    }
    Shape::from_cells(cells)
}

// ---------------------------------------------------------------------------------------
// Shape languages
// ---------------------------------------------------------------------------------------

/// The language of full `d × d` squares.
#[must_use]
pub fn full_square_language() -> impl ShapeLanguage {
    PredicateLanguage::new("full-square", |_, _, _| true)
}

/// The language of square borders (frames).
#[must_use]
pub fn border_language() -> impl ShapeLanguage {
    PredicateLanguage::new("border", |x, y, d| {
        x == 0 || y == 0 || x == d - 1 || y == d - 1
    })
}

/// The footnote-1 example: only the leftmost column of the square is on (pixels
/// `i = 2k√n − 1` and `i = 2k√n` in zig-zag indexing).
#[must_use]
pub fn left_column_language() -> impl ShapeLanguage {
    PredicateLanguage::new("left-column", |x, _, _| x == 0)
}

/// A thick staircase running along the main diagonal.
#[must_use]
pub fn staircase_language() -> impl ShapeLanguage {
    PredicateLanguage::new("staircase", |x, y, _| x == y || x == y + 1)
}

/// A plus/cross through the middle row and column.
#[must_use]
pub fn cross_language() -> impl ShapeLanguage {
    PredicateLanguage::new("cross", |x, y, d| x == d / 2 || y == d / 2)
}

/// A star-like pattern (cross plus thick diagonals), in the spirit of Figure 7(c).
#[must_use]
pub fn star_language() -> impl ShapeLanguage {
    PredicateLanguage::new("star", |x, y, d| {
        x == d / 2 || y == d / 2 || x == y || x == y + 1 || x + y == d - 1 || x + y == d
    })
}

/// A serpentine (boustrophedon snake) filling the square with a connected path.
#[must_use]
pub fn serpentine_language() -> impl ShapeLanguage {
    PredicateLanguage::new("serpentine", |x, y, d| {
        if y % 2 == 0 {
            true
        } else if y % 4 == 1 {
            x == d - 1
        } else {
            x == 0
        }
    })
}

/// A comb: full bottom row with teeth on the even columns.
#[must_use]
pub fn comb_language() -> impl ShapeLanguage {
    PredicateLanguage::new("comb", |x, y, _| y == 0 || x % 2 == 0)
}

/// An H pattern: both outer columns plus the middle row.
#[must_use]
pub fn h_language() -> impl ShapeLanguage {
    PredicateLanguage::new("h", |x, y, d| x == 0 || x == d - 1 || y == d / 2)
}

/// All library languages, boxed, for sweeping experiments.
#[must_use]
pub fn all_languages() -> Vec<Box<dyn ShapeLanguage>> {
    fn boxed(
        name: &'static str,
        f: impl Fn(u32, u32, u32) -> bool + 'static,
    ) -> Box<dyn ShapeLanguage> {
        Box::new(PredicateLanguage::new(name, f))
    }
    vec![
        boxed("full-square", |_, _, _| true),
        boxed("border", |x, y, d| {
            x == 0 || y == 0 || x == d - 1 || y == d - 1
        }),
        boxed("left-column", |x, _, _| x == 0),
        boxed("staircase", |x, y, _| x == y || x == y + 1),
        boxed("cross", |x, y, d| x == d / 2 || y == d / 2),
        boxed("star", |x, y, d| {
            x == d / 2 || y == d / 2 || x == y || x == y + 1 || x + y == d - 1 || x + y == d
        }),
        boxed("serpentine", |x, y, d| {
            if y % 2 == 0 {
                true
            } else if y % 4 == 1 {
                x == d - 1
            } else {
                x == 0
            }
        }),
        boxed("comb", |x, y, _| y == 0 || x % 2 == 0),
        boxed("h", |x, y, d| x == 0 || x == d - 1 || y == d / 2),
    ]
}

/// The labeled square of the `star` language at side `d` — used in examples as the
/// Figure 7(c)-style demonstration shape.
#[must_use]
pub fn star_square(d: u32) -> LabeledSquare {
    star_language().square(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_language;

    #[test]
    fn builders_are_connected() {
        assert!(line_shape(7).is_connected());
        assert!(rectangle_shape(4, 3).is_connected());
        assert!(square_shape(5).is_full_square(5));
        assert!(l_shape(3, 4).is_connected());
        assert!(t_shape(5, 3).is_connected());
        assert!(plus_shape(2).is_connected());
        assert!(staircase_shape(4).is_connected());
        assert!(u_shape(4, 3).is_connected());
    }

    #[test]
    fn builder_sizes() {
        assert_eq!(line_shape(7).len(), 7);
        assert_eq!(rectangle_shape(4, 3).len(), 12);
        assert_eq!(l_shape(3, 4).len(), 6);
        assert_eq!(t_shape(5, 3).len(), 8);
        assert_eq!(plus_shape(2).len(), 9);
        assert_eq!(staircase_shape(4).len(), 7);
        assert_eq!(u_shape(4, 3).len(), 8);
        assert_eq!(plus_shape(0).len(), 1);
    }

    #[test]
    fn line_dims() {
        let line = line_shape(6);
        assert_eq!(line.h_dim(), 6);
        assert_eq!(line.v_dim(), 1);
        assert_eq!(line.max_dim(), 6);
        assert!(line.is_line(6));
    }

    #[test]
    fn all_languages_are_valid_up_to_side_12() {
        for lang in all_languages() {
            validate_language(lang.as_ref(), 12)
                .unwrap_or_else(|e| panic!("language {} invalid: {e}", lang.name()));
        }
    }

    #[test]
    fn named_language_constructors_match_all_languages() {
        let names: Vec<String> = all_languages()
            .iter()
            .map(|l| l.name().to_string())
            .collect();
        for expected in [
            "full-square",
            "border",
            "left-column",
            "staircase",
            "cross",
            "star",
            "serpentine",
            "comb",
            "h",
        ] {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
        assert_eq!(full_square_language().square(3).on_count(), 9);
        assert_eq!(border_language().square(4).on_count(), 12);
        assert_eq!(left_column_language().square(5).on_count(), 5);
        assert_eq!(cross_language().square(5).on_count(), 9);
        assert!(star_square(7).is_valid_language_square());
        assert!(serpentine_language().square(6).is_valid_language_square());
        assert!(comb_language().square(6).is_valid_language_square());
        assert!(h_language().square(6).is_valid_language_square());
        assert!(staircase_language().square(6).is_valid_language_square());
    }

    #[test]
    fn star_contains_cross_and_diagonals() {
        let sq = star_square(9);
        for k in 0..9 {
            assert!(sq.get(k, 4), "middle row");
            assert!(sq.get(4, k), "middle column");
            assert!(sq.get(k, k), "diagonal");
        }
    }
}
