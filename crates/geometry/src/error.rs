//! Error type of the geometry crate.

use crate::Coord;
use std::error::Error;
use std::fmt;

/// Errors produced when constructing or manipulating shapes and labeled squares.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GeometryError {
    /// An edge endpoint refers to a cell that is not part of the shape.
    MissingCell(Coord),
    /// An edge was declared between two cells that are not at unit distance.
    NotAdjacent(Coord, Coord),
    /// A labeled square was built from a bit vector of the wrong length.
    BadSquareLength {
        /// The declared side length.
        side: u32,
        /// The number of bits supplied.
        bits: usize,
    },
    /// A pixel index is outside the `d × d` square.
    PixelOutOfRange {
        /// The offending index.
        index: u64,
        /// The side length of the square.
        side: u32,
    },
    /// The shape is empty where a non-empty shape is required.
    EmptyShape,
    /// A shape language produced a disconnected or wrongly sized shape for some `d`.
    InvalidLanguage {
        /// The side length at which validation failed.
        side: u32,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::MissingCell(c) => write!(f, "cell {c} is not part of the shape"),
            GeometryError::NotAdjacent(a, b) => {
                write!(f, "cells {a} and {b} are not at unit distance")
            }
            GeometryError::BadSquareLength { side, bits } => write!(
                f,
                "labeled square of side {side} needs {} bits, got {bits}",
                (*side as u64) * (*side as u64)
            ),
            GeometryError::PixelOutOfRange { index, side } => {
                write!(f, "pixel index {index} outside a {side}×{side} square")
            }
            GeometryError::EmptyShape => write!(f, "the shape is empty"),
            GeometryError::InvalidLanguage { side, reason } => {
                write!(f, "invalid shape language at side {side}: {reason}")
            }
        }
    }
}

impl Error for GeometryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors = [
            GeometryError::MissingCell(Coord::ORIGIN),
            GeometryError::NotAdjacent(Coord::ORIGIN, Coord::new2(2, 0)),
            GeometryError::BadSquareLength { side: 3, bits: 4 },
            GeometryError::PixelOutOfRange { index: 10, side: 3 },
            GeometryError::EmptyShape,
            GeometryError::InvalidLanguage {
                side: 2,
                reason: "disconnected".into(),
            },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
        }
    }
}
