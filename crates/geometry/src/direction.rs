//! Directions / ports and the dimension of the model.

use crate::Coord;
use std::fmt;

/// The dimensionality of the model: 2D nodes have four ports, 3D nodes have six.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Dim {
    /// Two dimensions: ports `u`, `r`, `d`, `l` (the paper's `py`, `px`, `p−y`, `p−x`).
    #[default]
    Two,
    /// Three dimensions: the 2D ports plus `pz` and `p−z`.
    Three,
}

impl Dim {
    /// The directions (equivalently: ports) available in this dimension, in canonical
    /// order `Up, Right, Down, Left[, ZPlus, ZMinus]`.
    #[must_use]
    pub fn dirs(self) -> &'static [Dir] {
        match self {
            Dim::Two => &DIRS_2D,
            Dim::Three => &DIRS_3D,
        }
    }

    /// Number of ports of a node in this dimension (4 or 6).
    #[must_use]
    pub fn port_count(self) -> usize {
        self.dirs().len()
    }

    /// Returns `true` if `dir` is a legal port in this dimension.
    #[must_use]
    pub fn contains(self, dir: Dir) -> bool {
        self != Dim::Two || dir.is_planar()
    }
}

/// A direction of the grid, doubling as a *port* label of a node.
///
/// In the paper a node's ports are `py, px, p−y, p−x` (2D), written `u, r, d, l`
/// for readability, plus `pz, p−z` in 3D. Ports are expressed in the node's *local*
/// frame: a free node may be arbitrarily rotated, so its local `Up` need not point
/// towards the global `+y` axis.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Dir {
    /// `u` — the `py` port (local `+y`).
    Up,
    /// `r` — the `px` port (local `+x`).
    Right,
    /// `d` — the `p−y` port (local `−y`).
    Down,
    /// `l` — the `p−x` port (local `−x`).
    Left,
    /// The `pz` port (local `+z`, 3D only).
    ZPlus,
    /// The `p−z` port (local `−z`, 3D only).
    ZMinus,
}

/// The four 2D directions in canonical order.
pub const DIRS_2D: [Dir; 4] = [Dir::Up, Dir::Right, Dir::Down, Dir::Left];
/// The six 3D directions in canonical order.
pub const DIRS_3D: [Dir; 6] = [
    Dir::Up,
    Dir::Right,
    Dir::Down,
    Dir::Left,
    Dir::ZPlus,
    Dir::ZMinus,
];

impl Dir {
    /// The opposite direction (the paper's `j̄`).
    ///
    /// ```
    /// use nc_geometry::Dir;
    /// assert_eq!(Dir::Up.opposite(), Dir::Down);
    /// assert_eq!(Dir::Left.opposite(), Dir::Right);
    /// ```
    #[must_use]
    pub fn opposite(self) -> Dir {
        match self {
            Dir::Up => Dir::Down,
            Dir::Down => Dir::Up,
            Dir::Right => Dir::Left,
            Dir::Left => Dir::Right,
            Dir::ZPlus => Dir::ZMinus,
            Dir::ZMinus => Dir::ZPlus,
        }
    }

    /// The unit vector of this direction.
    #[must_use]
    pub fn unit(self) -> Coord {
        match self {
            Dir::Up => Coord::new(0, 1, 0),
            Dir::Right => Coord::new(1, 0, 0),
            Dir::Down => Coord::new(0, -1, 0),
            Dir::Left => Coord::new(-1, 0, 0),
            Dir::ZPlus => Coord::new(0, 0, 1),
            Dir::ZMinus => Coord::new(0, 0, -1),
        }
    }

    /// The direction of a unit vector, if `v` is one.
    #[must_use]
    pub fn from_unit(v: Coord) -> Option<Dir> {
        DIRS_3D.into_iter().find(|d| d.unit() == v)
    }

    /// Small stable index (0..6) following the canonical order, useful for dense tables.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Dir::Up => 0,
            Dir::Right => 1,
            Dir::Down => 2,
            Dir::Left => 3,
            Dir::ZPlus => 4,
            Dir::ZMinus => 5,
        }
    }

    /// Inverse of [`Dir::index`]; panics if `i >= 6`.
    ///
    /// # Panics
    /// Panics when `i` is not a valid direction index.
    #[must_use]
    pub fn from_index(i: usize) -> Dir {
        DIRS_3D[i]
    }

    /// Whether the direction lies in the `z = 0` plane (i.e. is a 2D port).
    #[must_use]
    pub fn is_planar(self) -> bool {
        !matches!(self, Dir::ZPlus | Dir::ZMinus)
    }

    /// Whether this direction is perpendicular to `other` (neighbouring ports of a node
    /// are perpendicular by definition in the model).
    #[must_use]
    pub fn is_perpendicular(self, other: Dir) -> bool {
        self != other && self != other.opposite()
    }

    /// Clockwise quarter-turn within the plane: `Up → Right → Down → Left → Up`.
    /// Z directions are left unchanged.
    #[must_use]
    pub fn clockwise(self) -> Dir {
        match self {
            Dir::Up => Dir::Right,
            Dir::Right => Dir::Down,
            Dir::Down => Dir::Left,
            Dir::Left => Dir::Up,
            other => other,
        }
    }

    /// Counter-clockwise quarter-turn within the plane.
    #[must_use]
    pub fn counter_clockwise(self) -> Dir {
        self.clockwise()
            .opposite()
            .clockwise()
            .opposite()
            .clockwise()
    }

    /// Short, paper-style name: `u`, `r`, `d`, `l`, `z+`, `z-`.
    #[must_use]
    pub fn short_name(self) -> &'static str {
        match self {
            Dir::Up => "u",
            Dir::Right => "r",
            Dir::Down => "d",
            Dir::Left => "l",
            Dir::ZPlus => "z+",
            Dir::ZMinus => "z-",
        }
    }
}

impl fmt::Debug for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_is_involution() {
        for d in DIRS_3D {
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
        }
    }

    #[test]
    fn unit_vectors_are_distinct_units() {
        for d in DIRS_3D {
            assert_eq!(d.unit().manhattan(Coord::ORIGIN), 1);
            assert_eq!(Dir::from_unit(d.unit()), Some(d));
            assert_eq!(d.opposite().unit(), -d.unit());
        }
        assert_eq!(Dir::from_unit(Coord::new(1, 1, 0)), None);
    }

    #[test]
    fn index_roundtrip() {
        for (i, d) in DIRS_3D.into_iter().enumerate() {
            assert_eq!(d.index(), i);
            assert_eq!(Dir::from_index(i), d);
        }
    }

    #[test]
    fn clockwise_cycles() {
        assert_eq!(Dir::Up.clockwise(), Dir::Right);
        let mut d = Dir::Up;
        for _ in 0..4 {
            d = d.clockwise();
        }
        assert_eq!(d, Dir::Up);
        for d in DIRS_2D {
            assert_eq!(d.clockwise().counter_clockwise(), d);
            assert_eq!(d.counter_clockwise(), d.clockwise().opposite());
        }
    }

    #[test]
    fn perpendicularity_matches_paper() {
        // py ⊥ px, px ⊥ p−y, p−y ⊥ p−x, p−x ⊥ py.
        assert!(Dir::Up.is_perpendicular(Dir::Right));
        assert!(Dir::Right.is_perpendicular(Dir::Down));
        assert!(Dir::Down.is_perpendicular(Dir::Left));
        assert!(Dir::Left.is_perpendicular(Dir::Up));
        assert!(!Dir::Up.is_perpendicular(Dir::Down));
        assert!(!Dir::Up.is_perpendicular(Dir::Up));
        assert!(Dir::ZPlus.is_perpendicular(Dir::Up));
    }

    #[test]
    fn dims() {
        assert_eq!(Dim::Two.port_count(), 4);
        assert_eq!(Dim::Three.port_count(), 6);
        assert!(Dim::Two.contains(Dir::Left));
        assert!(!Dim::Two.contains(Dir::ZPlus));
        assert!(Dim::Three.contains(Dir::ZMinus));
        assert!(Dim::Two.dirs().iter().all(|d| d.is_planar()));
    }
}
