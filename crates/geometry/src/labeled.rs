//! {0,1}-labeled rectangles and squares.
//!
//! Every 2D shape `G` has a unique minimum enclosing rectangle `R_G` whose nodes are
//! labeled 1 if they belong to `G` and 0 otherwise, and (non-unique) enclosing squares
//! `S_G` of side `max dim_G`. Shape languages are defined in the paper by giving, for
//! every `d ≥ 1`, a single labeled `d × d` square `S_d`, equivalently a `d²`-bit pixel
//! sequence in zig-zag order.

use crate::{zigzag_coord, zigzag_index, Coord, GeometryError, Result, Shape};
use std::fmt;

/// A `w × h` grid of on/off pixels (the labeled rectangle `R_G` of the paper).
///
/// Pixels are addressed by `(x, y)` with `(0, 0)` at the bottom-left corner.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct LabeledGrid {
    width: u32,
    height: u32,
    bits: Vec<bool>,
}

impl LabeledGrid {
    /// Creates an all-off grid.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(width: u32, height: u32) -> LabeledGrid {
        assert!(width > 0 && height > 0, "grid dimensions must be positive");
        LabeledGrid {
            width,
            height,
            bits: vec![false; (width as usize) * (height as usize)],
        }
    }

    /// Width (number of columns).
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Height (number of rows).
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }

    fn offset(&self, x: u32, y: u32) -> usize {
        assert!(x < self.width && y < self.height, "pixel out of range");
        (y as usize) * (self.width as usize) + (x as usize)
    }

    /// Reads the pixel at `(x, y)`.
    ///
    /// # Panics
    /// Panics if the coordinates are out of range.
    #[must_use]
    pub fn get(&self, x: u32, y: u32) -> bool {
        self.bits[self.offset(x, y)]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    /// Panics if the coordinates are out of range.
    pub fn set(&mut self, x: u32, y: u32, on: bool) {
        let o = self.offset(x, y);
        self.bits[o] = on;
    }

    /// Number of pixels that are on.
    #[must_use]
    pub fn on_count(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// The shape induced by the on pixels, with every grid edge between adjacent on
    /// pixels active, anchored at the origin.
    #[must_use]
    pub fn shape(&self) -> Shape {
        Shape::from_cells(self.on_cells())
    }

    /// Iterates over the coordinates of the on pixels.
    pub fn on_cells(&self) -> impl Iterator<Item = Coord> + '_ {
        (0..self.height).flat_map(move |y| {
            (0..self.width).filter_map(move |x| {
                if self.get(x, y) {
                    Some(Coord::new2(x as i32, y as i32))
                } else {
                    None
                }
            })
        })
    }

    /// Builds the labeled minimum enclosing rectangle `R_G` of a non-empty planar shape.
    ///
    /// # Errors
    /// Returns [`GeometryError::EmptyShape`] for the empty shape and
    /// [`GeometryError::InvalidLanguage`] for non-planar shapes.
    pub fn enclosing_rectangle(shape: &Shape) -> Result<LabeledGrid> {
        if shape.is_empty() {
            return Err(GeometryError::EmptyShape);
        }
        if !shape.is_planar() {
            return Err(GeometryError::InvalidLanguage {
                side: 0,
                reason: "enclosing rectangles are defined for planar shapes".into(),
            });
        }
        let (min, max) = shape.bounding_box().expect("non-empty shape");
        let mut grid = LabeledGrid::new((max.x - min.x + 1) as u32, (max.y - min.y + 1) as u32);
        for c in shape.cells() {
            grid.set((c.x - min.x) as u32, (c.y - min.y) as u32, true);
        }
        Ok(grid)
    }
}

impl fmt::Debug for LabeledGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LabeledGrid({}×{}, {} on)",
            self.width,
            self.height,
            self.on_count()
        )
    }
}

/// A `d × d` labeled square, i.e. the `S_d` of a shape language, with zig-zag pixel
/// access.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct LabeledSquare {
    grid: LabeledGrid,
}

impl LabeledSquare {
    /// Creates an all-off `d × d` square.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    #[must_use]
    pub fn new(d: u32) -> LabeledSquare {
        LabeledSquare {
            grid: LabeledGrid::new(d, d),
        }
    }

    /// Builds a square from a pixel predicate in `(x, y)` coordinates.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    #[must_use]
    pub fn from_xy_fn(d: u32, f: impl Fn(u32, u32) -> bool) -> LabeledSquare {
        let mut sq = LabeledSquare::new(d);
        for y in 0..d {
            for x in 0..d {
                sq.grid.set(x, y, f(x, y));
            }
        }
        sq
    }

    /// Builds a square from a pixel predicate in zig-zag index space (the interface of
    /// the paper's shape-constructing TMs: pixel `i` of a `d × d` square).
    ///
    /// # Panics
    /// Panics if `d == 0`.
    #[must_use]
    pub fn from_pixel_fn(d: u32, f: impl Fn(u64) -> bool) -> LabeledSquare {
        LabeledSquare::from_xy_fn(d, |x, y| f(zigzag_index(x, y, d)))
    }

    /// Builds a square from its zig-zag bit sequence `S_d = (s_0, …, s_{d²−1})`.
    ///
    /// # Errors
    /// Returns [`GeometryError::BadSquareLength`] when `bits.len() != d²`.
    pub fn from_bits(d: u32, bits: &[bool]) -> Result<LabeledSquare> {
        if bits.len() != (d as usize) * (d as usize) {
            return Err(GeometryError::BadSquareLength {
                side: d,
                bits: bits.len(),
            });
        }
        Ok(LabeledSquare::from_pixel_fn(d, |i| bits[i as usize]))
    }

    /// The side length `d`.
    #[must_use]
    pub fn side(&self) -> u32 {
        self.grid.width()
    }

    /// Reads the pixel with zig-zag index `i`.
    ///
    /// # Panics
    /// Panics if `i ≥ d²`.
    #[must_use]
    pub fn pixel(&self, i: u64) -> bool {
        let (x, y) = zigzag_coord(i, self.side());
        self.grid.get(x, y)
    }

    /// Reads the pixel at `(x, y)`.
    ///
    /// # Panics
    /// Panics if the coordinates are out of range.
    #[must_use]
    pub fn get(&self, x: u32, y: u32) -> bool {
        self.grid.get(x, y)
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    /// Panics if the coordinates are out of range.
    pub fn set(&mut self, x: u32, y: u32, on: bool) {
        self.grid.set(x, y, on);
    }

    /// Sets the pixel with zig-zag index `i`.
    ///
    /// # Panics
    /// Panics if `i ≥ d²`.
    pub fn set_pixel(&mut self, i: u64, on: bool) {
        let (x, y) = zigzag_coord(i, self.side());
        self.grid.set(x, y, on);
    }

    /// The zig-zag bit sequence of the square.
    #[must_use]
    pub fn bits(&self) -> Vec<bool> {
        (0..u64::from(self.side()) * u64::from(self.side()))
            .map(|i| self.pixel(i))
            .collect()
    }

    /// Number of on pixels.
    #[must_use]
    pub fn on_count(&self) -> usize {
        self.grid.on_count()
    }

    /// The shape `G_d` induced by the on pixels (with all grid edges between on pixels).
    #[must_use]
    pub fn shape(&self) -> Shape {
        self.grid.shape()
    }

    /// Access to the underlying grid.
    #[must_use]
    pub fn grid(&self) -> &LabeledGrid {
        &self.grid
    }

    /// Whether the on pixels form a connected, non-empty shape whose maximum dimension is
    /// exactly `d` — the well-formedness condition the paper imposes on `S_d`.
    #[must_use]
    pub fn is_valid_language_square(&self) -> bool {
        let shape = self.shape();
        !shape.is_empty() && shape.is_connected() && shape.max_dim() == self.side()
    }

    /// Builds an enclosing square `S_G` of a non-empty planar shape `G`: the minimum
    /// enclosing rectangle padded with off rows or columns (towards the top/right) up to
    /// side `max dim_G`. Returns the square together with the offset that maps the
    /// original shape's cells into square coordinates.
    ///
    /// # Errors
    /// Propagates the errors of [`LabeledGrid::enclosing_rectangle`].
    pub fn enclosing_square(shape: &Shape) -> Result<(LabeledSquare, Coord)> {
        let rect = LabeledGrid::enclosing_rectangle(shape)?;
        let d = rect.width().max(rect.height());
        let mut sq = LabeledSquare::new(d);
        for y in 0..rect.height() {
            for x in 0..rect.width() {
                if rect.get(x, y) {
                    sq.set(x, y, true);
                }
            }
        }
        let (min, _) = shape.bounding_box().expect("non-empty shape");
        Ok((sq, -min))
    }
}

impl fmt::Debug for LabeledSquare {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LabeledSquare({0}×{0}, {1} on)",
            self.side(),
            self.on_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    #[test]
    fn grid_set_get() {
        let mut g = LabeledGrid::new(3, 2);
        assert_eq!(g.on_count(), 0);
        g.set(2, 1, true);
        g.set(0, 0, true);
        assert!(g.get(2, 1));
        assert!(!g.get(1, 1));
        assert_eq!(g.on_count(), 2);
        assert_eq!(g.shape().len(), 2);
    }

    #[test]
    fn enclosing_rectangle_matches_bounding_box() {
        let shape = Shape::from_cells([
            Coord::new2(5, 5),
            Coord::new2(6, 5),
            Coord::new2(6, 6),
            Coord::new2(6, 7),
        ]);
        let rect = LabeledGrid::enclosing_rectangle(&shape).unwrap();
        assert_eq!(rect.width(), 2);
        assert_eq!(rect.height(), 3);
        assert_eq!(rect.on_count(), 4);
        // R_G's on pixels are congruent to G.
        assert!(rect.shape().congruent(&shape));
        assert!(LabeledGrid::enclosing_rectangle(&Shape::new()).is_err());
    }

    #[test]
    fn enclosing_square_pads_to_max_dim() {
        // A horizontal line of length d is already R_G and extends to a d × d square.
        let line = library::line_shape(4);
        let (sq, offset) = LabeledSquare::enclosing_square(&line).unwrap();
        assert_eq!(sq.side(), 4);
        assert_eq!(sq.on_count(), 4);
        assert_eq!(offset, Coord::ORIGIN);
        assert!(sq.is_valid_language_square());
    }

    #[test]
    fn zigzag_pixel_access() {
        let mut sq = LabeledSquare::new(3);
        sq.set_pixel(3, true); // second row, rightmost column
        assert!(sq.get(2, 1));
        assert!(sq.pixel(3));
        assert_eq!(sq.bits().iter().filter(|&&b| b).count(), 1);
        let copy = LabeledSquare::from_bits(3, &sq.bits()).unwrap();
        assert_eq!(copy, sq);
        assert!(LabeledSquare::from_bits(3, &[true]).is_err());
    }

    #[test]
    fn from_fns_agree() {
        let d = 5;
        let by_xy = LabeledSquare::from_xy_fn(d, |x, y| x == y);
        let by_pixel = LabeledSquare::from_pixel_fn(d, |i| {
            let (x, y) = zigzag_coord(i, d);
            x == y
        });
        assert_eq!(by_xy, by_pixel);
        assert_eq!(by_xy.on_count(), d as usize);
    }

    #[test]
    fn validity_of_language_square() {
        // A diagonal is disconnected, hence not a valid S_d.
        let diag = LabeledSquare::from_xy_fn(4, |x, y| x == y);
        assert!(!diag.is_valid_language_square());
        // A full square is valid.
        let full = LabeledSquare::from_xy_fn(4, |_, _| true);
        assert!(full.is_valid_language_square());
        // A single on pixel has max dim 1 ≠ 4, hence invalid.
        let dot = LabeledSquare::from_xy_fn(4, |x, y| x == 0 && y == 0);
        assert!(!dot.is_valid_language_square());
    }
}
