//! Zig-zag pixel indexing of a `d × d` square.
//!
//! The paper indexes the `d²` pixels of a square "in a zig-zag fashion, beginning from the
//! bottom left corner, moving to the right until the bottom right corner is encountered,
//! then one step up, then to the left until the node above the bottom left corner is
//! encountered, then one step up again, then right, and so on" (see Figure 7(b)).
//! Row `y` therefore runs left-to-right when `y` is even and right-to-left when `y` is odd.

/// Converts a zig-zag pixel index into `(x, y)` coordinates within a `d × d` square.
///
/// `(0, 0)` is the bottom-left corner.
///
/// # Panics
/// Panics if `d == 0` or `i >= d²`.
///
/// ```
/// use nc_geometry::zigzag_coord;
/// assert_eq!(zigzag_coord(0, 3), (0, 0));
/// assert_eq!(zigzag_coord(2, 3), (2, 0));
/// assert_eq!(zigzag_coord(3, 3), (2, 1)); // second row runs right-to-left
/// assert_eq!(zigzag_coord(5, 3), (0, 1));
/// assert_eq!(zigzag_coord(6, 3), (0, 2));
/// ```
#[must_use]
pub fn zigzag_coord(i: u64, d: u32) -> (u32, u32) {
    assert!(d > 0, "square side must be positive");
    assert!(i < u64::from(d) * u64::from(d), "pixel index out of range");
    let d64 = u64::from(d);
    let row = (i / d64) as u32;
    let col = (i % d64) as u32;
    let x = if row.is_multiple_of(2) {
        col
    } else {
        d - 1 - col
    };
    (x, row)
}

/// Converts `(x, y)` coordinates within a `d × d` square into the zig-zag pixel index.
///
/// Inverse of [`zigzag_coord`].
///
/// # Panics
/// Panics if `d == 0`, `x >= d` or `y >= d`.
#[must_use]
pub fn zigzag_index(x: u32, y: u32, d: u32) -> u64 {
    assert!(d > 0, "square side must be positive");
    assert!(x < d && y < d, "coordinates out of range");
    let col = if y.is_multiple_of(2) { x } else { d - 1 - x };
    u64::from(y) * u64::from(d) + u64::from(col)
}

/// Iterator over the pixels of a `d × d` square in zig-zag order, yielding
/// `(index, x, y)` triples.
#[derive(Debug, Clone)]
pub struct ZigZagPixels {
    d: u32,
    next: u64,
}

impl ZigZagPixels {
    /// Creates the iterator for a `d × d` square.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    #[must_use]
    pub fn new(d: u32) -> ZigZagPixels {
        assert!(d > 0, "square side must be positive");
        ZigZagPixels { d, next: 0 }
    }
}

impl Iterator for ZigZagPixels {
    type Item = (u64, u32, u32);

    fn next(&mut self) -> Option<Self::Item> {
        let total = u64::from(self.d) * u64::from(self.d);
        if self.next >= total {
            return None;
        }
        let i = self.next;
        self.next += 1;
        let (x, y) = zigzag_coord(i, self.d);
        Some((i, x, y))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let total = u64::from(self.d) * u64::from(self.d);
        let rem = (total - self.next) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for ZigZagPixels {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_small_squares() {
        for d in 1..=9u32 {
            for i in 0..u64::from(d) * u64::from(d) {
                let (x, y) = zigzag_coord(i, d);
                assert!(x < d && y < d);
                assert_eq!(zigzag_index(x, y, d), i);
            }
        }
    }

    #[test]
    fn consecutive_pixels_are_adjacent() {
        // The zig-zag order is a Hamiltonian path on the square: consecutive pixels are
        // grid-adjacent (this is what lets the leader walk the square as a tape).
        for d in 1..=8u32 {
            let pixels: Vec<_> = ZigZagPixels::new(d).collect();
            assert_eq!(pixels.len(), (d * d) as usize);
            for w in pixels.windows(2) {
                let (_, x0, y0) = w[0];
                let (_, x1, y1) = w[1];
                let dist = x0.abs_diff(x1) + y0.abs_diff(y1);
                assert_eq!(dist, 1, "pixels {:?} and {:?} not adjacent", w[0], w[1]);
            }
        }
    }

    #[test]
    fn footnote_leftmost_column_indices() {
        // Footnote 1 of the paper: the leftmost pixels of the square are exactly those
        // with index 2k√n − 1 (k ≥ 1) or 2k√n (k ≥ 0).
        let d = 6u32;
        for i in 0..u64::from(d * d) {
            let (x, _) = zigzag_coord(i, d);
            let is_leftmost = x == 0;
            let k_form = (i % (2 * u64::from(d)) == 0) || ((i + 1) % (2 * u64::from(d)) == 0);
            assert_eq!(is_leftmost, k_form, "index {i}");
        }
    }

    #[test]
    fn iterator_len() {
        let it = ZigZagPixels::new(5);
        assert_eq!(it.len(), 25);
        assert_eq!(it.last(), Some((24, 4, 4)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let _ = zigzag_coord(9, 3);
    }
}
