//! Integer grid coordinates.

use std::fmt;
use std::ops::{Add, Neg, Sub};

/// A point of the 2D or 3D unit grid.
///
/// The model places every node of a connected component on a distinct grid point; two
/// nodes can only be bonded when they sit at unit (Manhattan) distance. 2D shapes simply
/// keep `z = 0`.
///
/// ```
/// use nc_geometry::Coord;
/// let a = Coord::new2(1, 2);
/// let b = Coord::new2(1, 3);
/// assert_eq!(a.manhattan(b), 1);
/// assert_eq!(a + Coord::new2(0, 1), b);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Coord {
    /// The x (paper: `px`/`p−x` axis) coordinate.
    pub x: i32,
    /// The y (paper: `py`/`p−y` axis) coordinate.
    pub y: i32,
    /// The z (paper: `pz`/`p−z` axis) coordinate; zero for 2D shapes.
    pub z: i32,
}

impl Coord {
    /// The origin `(0, 0, 0)`.
    pub const ORIGIN: Coord = Coord { x: 0, y: 0, z: 0 };

    /// Creates a 3D coordinate.
    #[must_use]
    pub const fn new(x: i32, y: i32, z: i32) -> Self {
        Coord { x, y, z }
    }

    /// Creates a 2D coordinate (with `z = 0`).
    #[must_use]
    pub const fn new2(x: i32, y: i32) -> Self {
        Coord { x, y, z: 0 }
    }

    /// Manhattan (L1) distance to `other`.
    ///
    /// ```
    /// use nc_geometry::Coord;
    /// assert_eq!(Coord::new(0, 0, 0).manhattan(Coord::new(1, -2, 3)), 6);
    /// ```
    #[must_use]
    pub fn manhattan(self, other: Coord) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y) + self.z.abs_diff(other.z)
    }

    /// Returns `true` if the two coordinates are at unit distance, i.e. grid-adjacent.
    #[must_use]
    pub fn is_adjacent(self, other: Coord) -> bool {
        self.manhattan(other) == 1
    }

    /// Returns `true` if the coordinate lies in the `z = 0` plane.
    #[must_use]
    pub fn is_planar(self) -> bool {
        self.z == 0
    }

    /// The six axis-aligned unit neighbours (3D); the first four lie in the plane.
    #[must_use]
    pub fn neighbors3(self) -> [Coord; 6] {
        [
            self + Coord::new(0, 1, 0),
            self + Coord::new(1, 0, 0),
            self + Coord::new(0, -1, 0),
            self + Coord::new(-1, 0, 0),
            self + Coord::new(0, 0, 1),
            self + Coord::new(0, 0, -1),
        ]
    }

    /// The four in-plane unit neighbours (2D).
    #[must_use]
    pub fn neighbors2(self) -> [Coord; 4] {
        [
            self + Coord::new(0, 1, 0),
            self + Coord::new(1, 0, 0),
            self + Coord::new(0, -1, 0),
            self + Coord::new(-1, 0, 0),
        ]
    }
}

impl Add for Coord {
    type Output = Coord;

    fn add(self, rhs: Coord) -> Coord {
        Coord::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl Sub for Coord {
    type Output = Coord;

    fn sub(self, rhs: Coord) -> Coord {
        Coord::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Neg for Coord {
    type Output = Coord;

    fn neg(self) -> Coord {
        Coord::new(-self.x, -self.y, -self.z)
    }
}

impl fmt::Debug for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.z == 0 {
            write!(f, "({}, {})", self.x, self.y)
        } else {
            write!(f, "({}, {}, {})", self.x, self.y, self.z)
        }
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<(i32, i32)> for Coord {
    fn from((x, y): (i32, i32)) -> Self {
        Coord::new2(x, y)
    }
}

impl From<(i32, i32, i32)> for Coord {
    fn from((x, y, z): (i32, i32, i32)) -> Self {
        Coord::new(x, y, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let a = Coord::new(3, -1, 2);
        let b = Coord::new(-5, 4, 0);
        assert_eq!(a + b - b, a);
        assert_eq!(-(-a), a);
        assert_eq!(a - a, Coord::ORIGIN);
    }

    #[test]
    fn manhattan_symmetric() {
        let a = Coord::new(1, 2, 3);
        let b = Coord::new(-4, 0, 7);
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn adjacency() {
        let a = Coord::new2(0, 0);
        assert!(a.is_adjacent(Coord::new2(0, 1)));
        assert!(a.is_adjacent(Coord::new(0, 0, -1)));
        assert!(!a.is_adjacent(Coord::new2(1, 1)));
        assert!(!a.is_adjacent(a));
    }

    #[test]
    fn neighbors_are_adjacent_and_distinct() {
        let c = Coord::new(5, -3, 2);
        let n3 = c.neighbors3();
        for (i, a) in n3.iter().enumerate() {
            assert!(c.is_adjacent(*a));
            for b in n3.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
        let n2 = c.neighbors2();
        assert!(n2.iter().all(|p| p.z == c.z));
    }

    #[test]
    fn conversions() {
        assert_eq!(Coord::from((1, 2)), Coord::new2(1, 2));
        assert_eq!(Coord::from((1, 2, 3)), Coord::new(1, 2, 3));
        assert!(Coord::new2(4, 4).is_planar());
        assert!(!Coord::new(0, 0, 1).is_planar());
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", Coord::new2(1, -2)), "(1, -2)");
        assert_eq!(format!("{}", Coord::new(1, 2, 3)), "(1, 2, 3)");
    }
}
