//! The spanning-square protocol (Section 4.2, Protocol 1 "Square").
//!
//! A unique leader starts in state `L_u`; the other nodes are free `q0`s. The leader grows
//! the square perimetrically and clockwise: through rules 1–4 it attaches a free node on
//! its waiting side and hands the leadership to it (rotating the waiting side
//! `u → r → d → l → u`), and through rules 5–8, when the cell on its waiting side is
//! already occupied by a settled `q1`, it bonds to it and turns instead. On a population
//! whose size is a perfect square `k²` the stable output is the fully bonded `k × k`
//! square; for other sizes the outermost shell remains partial (the protocol is
//! stabilizing, not terminating — termination is added in Section 6).

use nc_core::{NodeId, Protocol, Transition};
use nc_geometry::Dir;

/// States of [`Square`] (Protocol 1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SquareState {
    /// The leader, waiting to grow through the recorded side.
    Leader(Dir),
    /// A settled square node.
    Q1,
    /// A free node.
    Q0,
}

/// Protocol 1: the perimetric spanning-square constructor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Square;

impl Square {
    /// Creates the protocol.
    #[must_use]
    pub fn new() -> Square {
        Square
    }

    /// The clockwise successor of a side used by rules 1–4: after attaching through `u`
    /// the new leader waits on `r`, then `d`, then `l`, then `u` again.
    fn next_side(side: Dir) -> Dir {
        side.clockwise()
    }

    /// The side the leader turns to in rules 5–8 when its waiting side is blocked by a
    /// settled node: `u → l → d → r → u` (counter-clockwise).
    fn turn_side(side: Dir) -> Dir {
        side.counter_clockwise()
    }
}

impl Protocol for Square {
    type State = SquareState;

    fn initial_state(&self, node: NodeId, _n: usize) -> SquareState {
        if node.index() == 0 {
            SquareState::Leader(Dir::Up)
        } else {
            SquareState::Q0
        }
    }

    fn transition(
        &self,
        a: &SquareState,
        pa: Dir,
        b: &SquareState,
        pb: Dir,
        bonded: bool,
    ) -> Option<Transition<SquareState>> {
        if bonded {
            return None;
        }
        match (a, b) {
            // Rules 1–4: (L_i, i), (q0, ī), 0 → (q1, L_{next(i)}, 1).
            (SquareState::Leader(side), SquareState::Q0)
                if pa == *side && pb == side.opposite() =>
            {
                Some(Transition {
                    a: SquareState::Q1,
                    b: SquareState::Leader(Square::next_side(*side)),
                    bond: true,
                })
            }
            // Rules 5–8: (L_i, i), (q1, ī), 0 → (L_{turn(i)}, q1, 1).
            (SquareState::Leader(side), SquareState::Q1)
                if pa == *side && pb == side.opposite() =>
            {
                Some(Transition {
                    a: SquareState::Leader(Square::turn_side(*side)),
                    b: SquareState::Q1,
                    bond: true,
                })
            }
            _ => None,
        }
    }

    fn name(&self) -> &str {
        "square"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_core::{Simulation, SimulationConfig};
    use nc_geometry::Shape;

    #[test]
    fn rule_table_matches_the_paper() {
        let p = Square::new();
        // (Lu, u), (q0, d), 0 → (q1, Lr, 1)
        let t = p
            .transition(
                &SquareState::Leader(Dir::Up),
                Dir::Up,
                &SquareState::Q0,
                Dir::Down,
                false,
            )
            .unwrap();
        assert_eq!(t.a, SquareState::Q1);
        assert_eq!(t.b, SquareState::Leader(Dir::Right));
        assert!(t.bond);
        // (Lr, r), (q0, l), 0 → (q1, Ld, 1)
        let t = p
            .transition(
                &SquareState::Leader(Dir::Right),
                Dir::Right,
                &SquareState::Q0,
                Dir::Left,
                false,
            )
            .unwrap();
        assert_eq!(t.b, SquareState::Leader(Dir::Down));
        // (Ll, l), (q0, r), 0 → (q1, Lu, 1)
        let t = p
            .transition(
                &SquareState::Leader(Dir::Left),
                Dir::Left,
                &SquareState::Q0,
                Dir::Right,
                false,
            )
            .unwrap();
        assert_eq!(t.b, SquareState::Leader(Dir::Up));
        // (Lu, u), (q1, d), 0 → (Ll, q1, 1)
        let t = p
            .transition(
                &SquareState::Leader(Dir::Up),
                Dir::Up,
                &SquareState::Q1,
                Dir::Down,
                false,
            )
            .unwrap();
        assert_eq!(t.a, SquareState::Leader(Dir::Left));
        assert_eq!(t.b, SquareState::Q1);
        // (Ld, d), (q1, u), 0 → (Lr, q1, 1)
        let t = p
            .transition(
                &SquareState::Leader(Dir::Down),
                Dir::Down,
                &SquareState::Q1,
                Dir::Up,
                false,
            )
            .unwrap();
        assert_eq!(t.a, SquareState::Leader(Dir::Right));
        // Wrong ports are ineffective.
        assert!(p
            .transition(
                &SquareState::Leader(Dir::Up),
                Dir::Right,
                &SquareState::Q0,
                Dir::Left,
                false
            )
            .is_none());
        // Bonded pairs are ineffective.
        assert!(p
            .transition(
                &SquareState::Leader(Dir::Up),
                Dir::Up,
                &SquareState::Q0,
                Dir::Down,
                true
            )
            .is_none());
    }

    #[test]
    fn perfect_square_populations_stabilize_to_full_squares() {
        for d in [2u32, 3, 4] {
            let n = (d * d) as usize;
            let mut sim = Simulation::new(
                Square::new(),
                SimulationConfig::new(n).with_seed(17 + u64::from(d)),
            );
            let report = sim.run_until_stable();
            assert!(report.stabilized, "d = {d}");
            let shape: Shape = sim.output_shape();
            assert!(shape.is_full_square(d), "d = {d}: got {shape:?}");
        }
    }

    #[test]
    fn non_square_population_fills_a_partial_shell() {
        // n = 12: a full 3×3 shell plus 3 extra nodes of the next shell.
        let mut sim = Simulation::new(Square::new(), SimulationConfig::new(12).with_seed(4));
        let report = sim.run_until_stable();
        assert!(report.stabilized);
        let shape = sim.output_shape();
        assert_eq!(shape.len(), 12);
        assert!(shape.is_connected());
        // The 3×3 core is present: the shape's bounding box is at least 3×3 and at most 4×4.
        assert!(shape.max_dim() >= 3 && shape.max_dim() <= 4);
    }

    #[test]
    fn single_node_is_trivially_stable() {
        let mut sim = Simulation::new(Square::new(), SimulationConfig::new(1));
        let report = sim.run_until_stable();
        assert!(report.stabilized);
        assert_eq!(sim.output_shape().len(), 1);
    }
}
